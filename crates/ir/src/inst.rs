//! Instruction set of the IR.
//!
//! Every instruction produces at most one typed result value. The result is
//! what the fault model perturbs ("inject single-bit flips into a random
//! instruction's return value", paper §III-A3), what the duplication
//! transform re-computes, and what carries a per-instruction SDC probability
//! in the cost/benefit profile.

use crate::module::{BlockId, FuncId};
use crate::types::Ty;

/// Index of an instruction inside its function's instruction arena.
/// The result value of instruction `i` is referenced as `Operand::Value(i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl InstId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An operand: either the result of another instruction or an immediate.
///
/// Immediates mirror LLVM constant operands — they are not instructions,
/// so they are not fault-injection targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Result of another instruction in the same function.
    Value(InstId),
    /// Integer immediate.
    ConstI(i64),
    /// Floating-point immediate.
    ConstF(f64),
    /// Boolean immediate.
    ConstB(bool),
}

impl From<InstId> for Operand {
    fn from(v: InstId) -> Self {
        Operand::Value(v)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::ConstI(v)
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::ConstF(v)
    }
}

impl From<bool> for Operand {
    fn from(v: bool) -> Self {
        Operand::ConstB(v)
    }
}

/// Binary arithmetic / bitwise operations. The operand type (recorded on
/// the instruction) selects integer or floating-point semantics; the
/// verifier restricts bitwise/shift ops to `i64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Min,
    Max,
}

impl BinOp {
    /// True if the op is integer-only (bitwise and shifts).
    pub fn int_only(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        )
    }
}

/// Unary operations, including the math intrinsics the HPC workloads need
/// (FFT: sin/cos; Kmeans/kNN: sqrt; Backprop: exp; XSBench: log).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    /// Logical not (Bool) / bitwise not (I64).
    Not,
    Sqrt,
    Sin,
    Cos,
    Exp,
    Log,
    Abs,
    Floor,
}

impl UnOp {
    /// True for the ops that only make sense on `f64`.
    pub fn float_only(self) -> bool {
        matches!(
            self,
            UnOp::Sqrt | UnOp::Sin | UnOp::Cos | UnOp::Exp | UnOp::Log | UnOp::Floor
        )
    }
}

/// Comparison predicates; the result type is always `Bool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// The instruction kinds.
///
/// Program I/O goes through intrinsics rather than a libc model:
/// * scalar command-line arguments: `ArgI`/`ArgF`/`NArgs`;
/// * bulk input data (matrices, graphs, point sets) lives in numbered
///   read-only *streams*: `DataLen`/`DataI`/`DataF`;
/// * program output (the artifact compared bit-wise to detect SDCs, as
///   LLFI compares output files) is emitted with `OutI`/`OutF`.
///
/// `Check` is only created by the SID transform: it raises a `Detected`
/// event when its operands differ, modelling the comparison between an
/// instruction and its duplicate.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// `n`-th parameter of the enclosing function.
    Param {
        n: u32,
    },
    Bin {
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    Un {
        op: UnOp,
        arg: Operand,
    },
    Cmp {
        op: CmpOp,
        lhs: Operand,
        rhs: Operand,
    },
    Select {
        cond: Operand,
        then_v: Operand,
        else_v: Operand,
    },
    /// Convert between `i64` and `f64` (and `bool`→`i64`).
    Cast {
        to: Ty,
        arg: Operand,
    },
    /// Allocate `count` elements in linear memory; result is the base `Ptr`.
    Alloc {
        count: Operand,
    },
    /// Allocate `count` elements on the call stack, freed when the
    /// enclosing function returns (LLVM `alloca`). Used by the front end
    /// for function locals.
    Salloc {
        count: Operand,
    },
    Load {
        ptr: Operand,
        idx: Operand,
        ty: Ty,
    },
    Store {
        ptr: Operand,
        idx: Operand,
        value: Operand,
    },
    Call {
        func: FuncId,
        args: Vec<Operand>,
    },

    // ---- program I/O intrinsics ----
    NArgs,
    ArgI {
        n: Operand,
    },
    ArgF {
        n: Operand,
    },
    DataLen {
        stream: u32,
    },
    DataI {
        stream: u32,
        idx: Operand,
    },
    DataF {
        stream: u32,
        idx: Operand,
    },
    OutI {
        v: Operand,
    },
    OutF {
        v: Operand,
    },

    /// Duplication check inserted by SID; raises `Detected` on mismatch.
    Check {
        a: Operand,
        b: Operand,
    },

    // ---- terminators ----
    Br {
        target: BlockId,
    },
    CondBr {
        cond: Operand,
        then_b: BlockId,
        else_b: BlockId,
    },
    Ret {
        v: Option<Operand>,
    },
}

impl InstKind {
    /// True if the instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Br { .. } | InstKind::CondBr { .. } | InstKind::Ret { .. }
        )
    }

    /// Collect the value operands (ignoring immediates) into `out`.
    pub fn value_operands(&self, out: &mut Vec<InstId>) {
        let mut push = |o: &Operand| {
            if let Operand::Value(v) = o {
                out.push(*v);
            }
        };
        match self {
            InstKind::Param { .. } | InstKind::NArgs | InstKind::DataLen { .. } => {}
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                push(lhs);
                push(rhs);
            }
            InstKind::Un { arg, .. } | InstKind::Cast { arg, .. } => push(arg),
            InstKind::Select {
                cond,
                then_v,
                else_v,
            } => {
                push(cond);
                push(then_v);
                push(else_v);
            }
            InstKind::Alloc { count } | InstKind::Salloc { count } => push(count),
            InstKind::Load { ptr, idx, .. } => {
                push(ptr);
                push(idx);
            }
            InstKind::Store { ptr, idx, value } => {
                push(ptr);
                push(idx);
                push(value);
            }
            InstKind::Call { args, .. } => {
                for a in args {
                    push(a);
                }
            }
            InstKind::ArgI { n } | InstKind::ArgF { n } => push(n),
            InstKind::DataI { idx, .. } | InstKind::DataF { idx, .. } => push(idx),
            InstKind::OutI { v } | InstKind::OutF { v } => push(v),
            InstKind::Check { a, b } => {
                push(a);
                push(b);
            }
            InstKind::Br { .. } => {}
            InstKind::CondBr { cond, .. } => push(cond),
            InstKind::Ret { v } => {
                if let Some(v) = v {
                    push(v);
                }
            }
        }
    }

    /// Mutable access to all operands, used by transforms that rewrite
    /// value references (e.g. the duplication pass renumbering).
    pub fn operands_mut(&mut self) -> Vec<&mut Operand> {
        match self {
            InstKind::Param { .. } | InstKind::NArgs | InstKind::DataLen { .. } => vec![],
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => vec![lhs, rhs],
            InstKind::Un { arg, .. } | InstKind::Cast { arg, .. } => vec![arg],
            InstKind::Select {
                cond,
                then_v,
                else_v,
            } => vec![cond, then_v, else_v],
            InstKind::Alloc { count } | InstKind::Salloc { count } => vec![count],
            InstKind::Load { ptr, idx, .. } => vec![ptr, idx],
            InstKind::Store { ptr, idx, value } => vec![ptr, idx, value],
            InstKind::Call { args, .. } => args.iter_mut().collect(),
            InstKind::ArgI { n } | InstKind::ArgF { n } => vec![n],
            InstKind::DataI { idx, .. } | InstKind::DataF { idx, .. } => vec![idx],
            InstKind::OutI { v } | InstKind::OutF { v } => vec![v],
            InstKind::Check { a, b } => vec![a, b],
            InstKind::Br { .. } => vec![],
            InstKind::CondBr { cond, .. } => vec![cond],
            InstKind::Ret { v } => v.iter_mut().collect(),
        }
    }

    /// Short mnemonic used by the printer and reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            InstKind::Param { .. } => "param",
            InstKind::Bin { op, .. } => match op {
                BinOp::Add => "add",
                BinOp::Sub => "sub",
                BinOp::Mul => "mul",
                BinOp::Div => "div",
                BinOp::Rem => "rem",
                BinOp::And => "and",
                BinOp::Or => "or",
                BinOp::Xor => "xor",
                BinOp::Shl => "shl",
                BinOp::Shr => "shr",
                BinOp::Min => "min",
                BinOp::Max => "max",
            },
            InstKind::Un { op, .. } => match op {
                UnOp::Neg => "neg",
                UnOp::Not => "not",
                UnOp::Sqrt => "sqrt",
                UnOp::Sin => "sin",
                UnOp::Cos => "cos",
                UnOp::Exp => "exp",
                UnOp::Log => "log",
                UnOp::Abs => "abs",
                UnOp::Floor => "floor",
            },
            InstKind::Cmp { .. } => "icmp",
            InstKind::Select { .. } => "select",
            InstKind::Cast { .. } => "cast",
            InstKind::Alloc { .. } => "alloc",
            InstKind::Salloc { .. } => "salloc",
            InstKind::Load { .. } => "load",
            InstKind::Store { .. } => "store",
            InstKind::Call { .. } => "call",
            InstKind::NArgs => "nargs",
            InstKind::ArgI { .. } => "arg_i",
            InstKind::ArgF { .. } => "arg_f",
            InstKind::DataLen { .. } => "data_len",
            InstKind::DataI { .. } => "data_i",
            InstKind::DataF { .. } => "data_f",
            InstKind::OutI { .. } => "out_i",
            InstKind::OutF { .. } => "out_f",
            InstKind::Check { .. } => "check",
            InstKind::Br { .. } => "br",
            InstKind::CondBr { .. } => "condbr",
            InstKind::Ret { .. } => "ret",
        }
    }
}

/// An instruction: a kind plus its (optional) result type and an optional
/// source-level name kept for diagnostics (LLVM IR keeps variable names for
/// the same reason — fine-grained source mapping, paper §II-B).
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    pub kind: InstKind,
    /// Result type; `None` for void instructions (stores, output, branches…).
    pub ty: Option<Ty>,
    /// Optional source-level name for diagnostics.
    pub name: Option<String>,
}

impl Inst {
    pub fn new(kind: InstKind, ty: Option<Ty>) -> Self {
        Inst {
            kind,
            ty,
            name: None,
        }
    }

    /// Whether this instruction is a fault-injection target.
    ///
    /// Per the paper's fault model (§II-A + §III-A3) faults are single-bit
    /// flips in a *computational* instruction's return value. We therefore
    /// include every value-producing instruction except:
    /// * `Param` — its value is produced by the caller's `Call`, already an
    ///   injection site in the caller;
    /// * `Check` — protection control logic, excluded like other control
    ///   logic in the fault model.
    pub fn injectable(&self) -> bool {
        if self.ty.is_none() {
            return false;
        }
        !matches!(self.kind, InstKind::Param { .. } | InstKind::Check { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> Operand {
        Operand::Value(InstId(n))
    }

    #[test]
    fn terminators_are_classified() {
        assert!(InstKind::Br { target: BlockId(0) }.is_terminator());
        assert!(InstKind::Ret { v: None }.is_terminator());
        assert!(InstKind::CondBr {
            cond: v(0),
            then_b: BlockId(1),
            else_b: BlockId(2)
        }
        .is_terminator());
        assert!(!InstKind::NArgs.is_terminator());
    }

    #[test]
    fn value_operands_skip_immediates() {
        let k = InstKind::Bin {
            op: BinOp::Add,
            lhs: v(3),
            rhs: Operand::ConstI(7),
        };
        let mut out = vec![];
        k.value_operands(&mut out);
        assert_eq!(out, vec![InstId(3)]);
    }

    #[test]
    fn store_has_three_value_operands() {
        let k = InstKind::Store {
            ptr: v(0),
            idx: v(1),
            value: v(2),
        };
        let mut out = vec![];
        k.value_operands(&mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn call_operands_are_all_args() {
        let mut k = InstKind::Call {
            func: FuncId(0),
            args: vec![v(0), Operand::ConstF(1.5), v(2)],
        };
        let mut out = vec![];
        k.value_operands(&mut out);
        assert_eq!(out, vec![InstId(0), InstId(2)]);
        assert_eq!(k.operands_mut().len(), 3);
    }

    #[test]
    fn injectability_follows_fault_model() {
        let add = Inst::new(
            InstKind::Bin {
                op: BinOp::Add,
                lhs: v(0),
                rhs: v(1),
            },
            Some(Ty::I64),
        );
        assert!(add.injectable());

        let store = Inst::new(
            InstKind::Store {
                ptr: v(0),
                idx: v(1),
                value: v(2),
            },
            None,
        );
        assert!(
            !store.injectable(),
            "void instructions have no return value"
        );

        let param = Inst::new(InstKind::Param { n: 0 }, Some(Ty::I64));
        assert!(!param.injectable(), "params are covered at the call site");

        let check = Inst::new(InstKind::Check { a: v(0), b: v(1) }, None);
        assert!(!check.injectable(), "protection logic is outside the model");
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(InstId(4)), v(4));
        assert_eq!(Operand::from(3i64), Operand::ConstI(3));
        assert_eq!(Operand::from(2.5f64), Operand::ConstF(2.5));
        assert_eq!(Operand::from(true), Operand::ConstB(true));
    }

    #[test]
    fn int_only_and_float_only_ops() {
        assert!(BinOp::Xor.int_only());
        assert!(!BinOp::Add.int_only());
        assert!(UnOp::Sqrt.float_only());
        assert!(!UnOp::Neg.float_only());
    }
}
