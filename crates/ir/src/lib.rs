//! # minpsid-ir — the typed register IR underlying the MINPSID reproduction
//!
//! The SC'22 MINPSID paper performs all of its analyses (fault injection,
//! selective instruction duplication, weighted-CFG profiling) at the LLVM IR
//! level. This crate provides the equivalent substrate: a small, typed,
//! platform-neutral register IR with
//!
//! * values produced by instructions (every instruction has at most one
//!   typed result — the "return value" that the fault model bit-flips),
//! * functions made of basic blocks ending in a single terminator,
//! * an explicit control-flow graph with analyses (successors, predecessors,
//!   reverse postorder, dominators, natural-loop detection),
//! * a builder API for constructing modules programmatically,
//! * a verifier enforcing type- and dominance-correctness, and
//! * a per-opcode cycle cost model used for SID cost accounting (Eq. 1 of
//!   the paper).
//!
//! The IR is deliberately LLVM-shaped where it matters for the paper:
//! instructions are the unit of fault injection, duplication, and
//! cost/benefit bookkeeping, and each `(function, instruction)` pair has a
//! stable [`GlobalInstId`] used to key every profile in the pipeline.
//!
//! Locals are modelled with `Alloc`/`Load`/`Store` (pre-`mem2reg` LLVM
//! style) rather than phi nodes; this matches how the `minic` front end
//! lowers mutable variables and keeps dominance checking simple.

pub mod builder;
pub mod cfg;
pub mod cost;
pub mod dom;
pub mod fingerprint;
pub mod inst;
pub mod module;
pub mod opt;
pub mod parser;
pub mod printer;
pub mod types;
pub mod verify;

pub use builder::{FunctionBuilder, ModuleBuilder};
pub use cfg::Cfg;
pub use cost::CostModel;
pub use dom::DomTree;
pub use fingerprint::section_fingerprints;
pub use inst::{BinOp, CmpOp, Inst, InstId, InstKind, Operand, UnOp};
pub use module::{Block, BlockId, FuncId, Function, GlobalInstId, Module};
pub use types::Ty;
pub use verify::{verify_module, VerifyError};
