//! Module / function / block containers and global instruction numbering.

use crate::inst::{Inst, InstId, InstKind};
use crate::types::Ty;

/// Index of a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl FuncId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a basic block within a [`Function`]. Block 0 is the entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Module-wide identity of a static instruction. Every profile in the
/// pipeline (dynamic counts, cycles, SDC probability, benefit/cost, the
/// incubative-instruction set) is keyed by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalInstId {
    pub func: FuncId,
    pub inst: InstId,
}

/// A basic block: a sequence of instruction ids whose last element is the
/// unique terminator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    pub insts: Vec<InstId>,
    /// Optional label for printing.
    pub name: Option<String>,
}

impl Block {
    /// The terminator instruction id, if the block is complete.
    pub fn terminator(&self) -> Option<InstId> {
        self.insts.last().copied()
    }
}

/// A function: parameter types, optional return type, an instruction arena,
/// and the basic blocks indexing into it.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    pub params: Vec<Ty>,
    pub ret: Option<Ty>,
    pub insts: Vec<Inst>,
    pub blocks: Vec<Block>,
}

impl Function {
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> Self {
        Function {
            name: name.into(),
            params,
            ret,
            insts: Vec::new(),
            blocks: Vec::new(),
        }
    }

    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Number of static instructions in the function.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterate `(BlockId, &Block)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// The block containing each instruction (dense map: `InstId -> BlockId`).
    pub fn inst_blocks(&self) -> Vec<BlockId> {
        let mut owner = vec![BlockId(u32::MAX); self.insts.len()];
        for (bid, b) in self.iter_blocks() {
            for &i in &b.insts {
                owner[i.index()] = bid;
            }
        }
        owner
    }
}

/// A whole program: functions plus the entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    pub name: String,
    pub funcs: Vec<Function>,
    pub entry: FuncId,
}

impl Module {
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            funcs: Vec::new(),
            entry: FuncId(0),
        }
    }

    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Look up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Iterate `(FuncId, &Function)`.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Iterate every static instruction in the module.
    pub fn iter_insts(&self) -> impl Iterator<Item = (GlobalInstId, &Inst)> {
        self.iter_funcs().flat_map(|(fid, f)| {
            f.insts.iter().enumerate().map(move |(i, inst)| {
                (
                    GlobalInstId {
                        func: fid,
                        inst: InstId(i as u32),
                    },
                    inst,
                )
            })
        })
    }

    /// Total number of static instructions.
    pub fn num_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.insts.len()).sum()
    }

    /// Dense numbering of all static instructions, in `(func, inst)` order.
    /// Profiles store data in vectors indexed by this numbering.
    pub fn numbering(&self) -> InstNumbering {
        let mut base = Vec::with_capacity(self.funcs.len());
        let mut acc = 0usize;
        for f in &self.funcs {
            base.push(acc);
            acc += f.insts.len();
        }
        InstNumbering { base, total: acc }
    }

    pub fn inst(&self, id: GlobalInstId) -> &Inst {
        self.func(id.func).inst(id.inst)
    }

    /// All injectable instruction ids, in numbering order.
    pub fn injectable_insts(&self) -> Vec<GlobalInstId> {
        self.iter_insts()
            .filter(|(_, inst)| inst.injectable())
            .map(|(id, _)| id)
            .collect()
    }
}

/// Dense module-wide instruction numbering (see [`Module::numbering`]).
#[derive(Debug, Clone)]
pub struct InstNumbering {
    base: Vec<usize>,
    total: usize,
}

impl InstNumbering {
    /// Dense index of a static instruction.
    pub fn index(&self, id: GlobalInstId) -> usize {
        self.base[id.func.index()] + id.inst.index()
    }

    /// Inverse mapping: dense index back to `GlobalInstId`.
    pub fn id_of(&self, dense: usize) -> GlobalInstId {
        // binary search for the owning function
        let func = match self.base.binary_search(&dense) {
            Ok(f) => {
                // could be the first instruction of func f, but empty
                // functions share the same base; pick the last one with
                // this base that is followed by a larger base (or end).
                let mut f = f;
                while f + 1 < self.base.len() && self.base[f + 1] == dense {
                    f += 1;
                }
                f
            }
            Err(ins) => ins - 1,
        };
        GlobalInstId {
            func: FuncId(func as u32),
            inst: InstId((dense - self.base[func]) as u32),
        }
    }

    /// Total number of static instructions in the module.
    pub fn len(&self) -> usize {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// Convenience: whether an instruction kind is a synchronization point in
/// the paper's sense (§II-C): duplication checks must execute before any
/// function call, memory store, output, or control-flow transfer that could
/// let a corrupted value escape the data-flow of the duplicated region.
pub fn is_sync_point(kind: &InstKind) -> bool {
    matches!(
        kind,
        InstKind::Call { .. }
            | InstKind::Store { .. }
            | InstKind::OutI { .. }
            | InstKind::OutF { .. }
            | InstKind::Br { .. }
            | InstKind::CondBr { .. }
            | InstKind::Ret { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Operand};

    fn mk_func(name: &str, n_insts: usize) -> Function {
        let mut f = Function::new(name, vec![], None);
        for _ in 0..n_insts.saturating_sub(1) {
            f.insts.push(Inst::new(
                InstKind::Bin {
                    op: BinOp::Add,
                    lhs: Operand::ConstI(1),
                    rhs: Operand::ConstI(2),
                },
                Some(Ty::I64),
            ));
        }
        if n_insts > 0 {
            f.insts.push(Inst::new(InstKind::Ret { v: None }, None));
        }
        f.blocks.push(Block {
            insts: (0..n_insts as u32).map(InstId).collect(),
            name: None,
        });
        f
    }

    #[test]
    fn numbering_roundtrip() {
        let mut m = Module::new("t");
        m.funcs.push(mk_func("a", 3));
        m.funcs.push(mk_func("b", 0));
        m.funcs.push(mk_func("c", 5));
        let num = m.numbering();
        assert_eq!(num.len(), 8);
        for (id, _) in m.iter_insts() {
            let dense = num.index(id);
            assert_eq!(num.id_of(dense), id, "dense={dense}");
        }
    }

    #[test]
    fn func_lookup_by_name() {
        let mut m = Module::new("t");
        m.funcs.push(mk_func("main", 1));
        m.funcs.push(mk_func("helper", 1));
        assert_eq!(m.func_by_name("helper"), Some(FuncId(1)));
        assert_eq!(m.func_by_name("nope"), None);
    }

    #[test]
    fn sync_points_match_paper_definition() {
        assert!(is_sync_point(&InstKind::Ret { v: None }));
        assert!(is_sync_point(&InstKind::Store {
            ptr: Operand::ConstI(0),
            idx: Operand::ConstI(0),
            value: Operand::ConstI(0),
        }));
        assert!(is_sync_point(&InstKind::Call {
            func: FuncId(0),
            args: vec![]
        }));
        assert!(!is_sync_point(&InstKind::NArgs));
    }

    #[test]
    fn inst_blocks_assigns_owners() {
        let f = mk_func("a", 4);
        let owners = f.inst_blocks();
        assert!(owners.iter().all(|b| *b == BlockId(0)));
    }

    #[test]
    fn injectable_insts_excludes_terminators() {
        let mut m = Module::new("t");
        m.funcs.push(mk_func("a", 3));
        // two adds are injectable, ret is not
        assert_eq!(m.injectable_insts().len(), 2);
    }
}
