//! IR optimization passes: constant folding and dead-code elimination.
//!
//! The paper's toolchain analyzes compiler IR, where programs normally
//! arrive optimized. These passes let the pipeline study protection on
//! optimized code (front ends lower naively, so folding + DCE is the
//! difference between `-O0`-style and cleaned-up IR). Semantics are
//! preserved exactly — folding mirrors the interpreter's wrapping/IEEE
//! arithmetic and never folds operations that could trap at runtime.

use crate::inst::{BinOp, CmpOp, Inst, InstId, InstKind, Operand, UnOp};
use crate::module::{Block, Function, Module};
use crate::types::Ty;

/// Run constant folding and DCE to a fixpoint (bounded rounds). Returns
/// the number of instructions removed.
pub fn optimize(module: &mut Module) -> usize {
    let before = module.num_insts();
    for _ in 0..4 {
        let folded = constant_fold(module);
        let removed = dead_code_elimination(module);
        if folded == 0 && removed == 0 {
            break;
        }
    }
    before - module.num_insts()
}

/// Evaluate instructions whose operands are all constants and rewrite
/// their uses with the folded literal. Returns the number of folds.
/// The defining instructions become dead and are left for DCE.
pub fn constant_fold(module: &mut Module) -> usize {
    let mut folds = 0;
    for func in &mut module.funcs {
        // each instruction folds at most once per pass; iterating lets a
        // fold expose new all-constant operand sets down the chain
        let mut folded = vec![false; func.insts.len()];
        loop {
            let mut changed = false;
            #[allow(clippy::needless_range_loop)] // i indexes two arrays and feeds InstId
            for i in 0..func.insts.len() {
                if folded[i] {
                    continue;
                }
                if let Some(c) = fold_inst(&func.insts[i]) {
                    replace_uses(func, InstId(i as u32), c);
                    folded[i] = true;
                    folds += 1;
                    changed = true;
                    // the instruction keeps its (now unused) form; DCE
                    // removes it
                }
            }
            if !changed {
                break;
            }
        }
    }
    folds
}

fn fold_inst(inst: &Inst) -> Option<Operand> {
    match &inst.kind {
        InstKind::Bin { op, lhs, rhs } => fold_bin(*op, lhs, rhs),
        InstKind::Un { op, arg } => fold_un(*op, arg),
        InstKind::Cmp { op, lhs, rhs } => fold_cmp(*op, lhs, rhs),
        InstKind::Select {
            cond,
            then_v,
            else_v,
        } => match cond {
            Operand::ConstB(true) => as_const(then_v),
            Operand::ConstB(false) => as_const(else_v),
            _ => None,
        },
        InstKind::Cast { to, arg } => fold_cast(*to, arg),
        _ => None,
    }
}

fn as_const(o: &Operand) -> Option<Operand> {
    match o {
        Operand::Value(_) => None,
        c => Some(*c),
    }
}

fn fold_bin(op: BinOp, lhs: &Operand, rhs: &Operand) -> Option<Operand> {
    match (lhs, rhs) {
        (Operand::ConstI(a), Operand::ConstI(b)) => {
            let r = match op {
                BinOp::Add => a.wrapping_add(*b),
                BinOp::Sub => a.wrapping_sub(*b),
                BinOp::Mul => a.wrapping_mul(*b),
                // division/remainder by a constant zero (or MIN / -1)
                // traps at runtime — never fold it away
                BinOp::Div => a.checked_div(*b)?,
                BinOp::Rem => a.checked_rem(*b)?,
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(*b as u32 & 63),
                BinOp::Shr => a.wrapping_shr(*b as u32 & 63),
                BinOp::Min => *a.min(b),
                BinOp::Max => *a.max(b),
            };
            Some(Operand::ConstI(r))
        }
        (Operand::ConstF(a), Operand::ConstF(b)) => {
            let r = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Rem => a % b,
                BinOp::Min => a.min(*b),
                BinOp::Max => a.max(*b),
                _ => return None,
            };
            Some(Operand::ConstF(r))
        }
        _ => None,
    }
}

fn fold_un(op: UnOp, arg: &Operand) -> Option<Operand> {
    match arg {
        Operand::ConstI(a) => {
            let r = match op {
                UnOp::Neg => a.wrapping_neg(),
                UnOp::Not => !a,
                UnOp::Abs => a.wrapping_abs(),
                _ => return None,
            };
            Some(Operand::ConstI(r))
        }
        Operand::ConstF(a) => {
            let r = match op {
                UnOp::Neg => -a,
                UnOp::Abs => a.abs(),
                UnOp::Sqrt => a.sqrt(),
                UnOp::Sin => a.sin(),
                UnOp::Cos => a.cos(),
                UnOp::Exp => a.exp(),
                UnOp::Log => a.ln(),
                UnOp::Floor => a.floor(),
                UnOp::Not => return None,
            };
            Some(Operand::ConstF(r))
        }
        Operand::ConstB(a) => match op {
            UnOp::Not => Some(Operand::ConstB(!a)),
            _ => None,
        },
        Operand::Value(_) => None,
    }
}

fn fold_cmp(op: CmpOp, lhs: &Operand, rhs: &Operand) -> Option<Operand> {
    let r = match (lhs, rhs) {
        (Operand::ConstI(a), Operand::ConstI(b)) => cmp_with(op, a.cmp(b)),
        (Operand::ConstB(a), Operand::ConstB(b)) => cmp_with(op, a.cmp(b)),
        (Operand::ConstF(a), Operand::ConstF(b)) => match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        },
        _ => return None,
    };
    Some(Operand::ConstB(r))
}

fn cmp_with(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

fn fold_cast(to: Ty, arg: &Operand) -> Option<Operand> {
    match (arg, to) {
        (Operand::ConstI(a), Ty::F64) => Some(Operand::ConstF(*a as f64)),
        (Operand::ConstF(a), Ty::I64) => Some(Operand::ConstI(*a as i64)),
        (Operand::ConstB(a), Ty::I64) => Some(Operand::ConstI(*a as i64)),
        (Operand::ConstI(a), Ty::I64) => Some(Operand::ConstI(*a)),
        _ => None,
    }
}

fn replace_uses(func: &mut Function, target: InstId, replacement: Operand) {
    for inst in &mut func.insts {
        for op in inst.kind.operands_mut() {
            if *op == Operand::Value(target) {
                *op = replacement;
            }
        }
    }
}

/// Remove instructions whose results are never used and that have no side
/// effects. Returns the number of instructions removed.
pub fn dead_code_elimination(module: &mut Module) -> usize {
    let mut removed = 0;
    for func in &mut module.funcs {
        removed += dce_function(func);
    }
    removed
}

fn has_side_effect(kind: &InstKind) -> bool {
    matches!(
        kind,
        InstKind::Store { .. }
            | InstKind::Call { .. }
            | InstKind::OutI { .. }
            | InstKind::OutF { .. }
            | InstKind::Check { .. }
            | InstKind::Br { .. }
            | InstKind::CondBr { .. }
            | InstKind::Ret { .. }
            // argument/stream reads can trap on bad indices — removing
            // them would change crash behaviour
            | InstKind::ArgI { .. }
            | InstKind::ArgF { .. }
            | InstKind::DataI { .. }
            | InstKind::DataF { .. }
            // loads can trap out of bounds
            | InstKind::Load { .. }
            // params carry the calling convention
            | InstKind::Param { .. }
    )
}

fn dce_function(func: &mut Function) -> usize {
    let n = func.insts.len();
    let mut live = vec![false; n];
    let mut worklist: Vec<InstId> = Vec::new();
    for (i, inst) in func.insts.iter().enumerate() {
        if has_side_effect(&inst.kind) {
            live[i] = true;
            worklist.push(InstId(i as u32));
        }
    }
    let mut ops = Vec::new();
    while let Some(id) = worklist.pop() {
        ops.clear();
        func.insts[id.index()].kind.value_operands(&mut ops);
        for &def in &ops {
            if !live[def.index()] {
                live[def.index()] = true;
                worklist.push(def);
            }
        }
    }
    let dead = live.iter().filter(|&&l| !l).count();
    if dead == 0 {
        return 0;
    }

    // rebuild with dense renumbering
    let mut map: Vec<Option<InstId>> = vec![None; n];
    let mut new_insts: Vec<Inst> = Vec::with_capacity(n - dead);
    let mut new_blocks: Vec<Block> = Vec::with_capacity(func.blocks.len());
    for block in &func.blocks {
        let mut nb = Block {
            insts: Vec::with_capacity(block.insts.len()),
            name: block.name.clone(),
        };
        for &iid in &block.insts {
            if !live[iid.index()] {
                continue;
            }
            let mut inst = func.insts[iid.index()].clone();
            for op in inst.kind.operands_mut() {
                if let Operand::Value(v) = op {
                    *v = map[v.index()].expect("live operand defined before use");
                }
            }
            let new_id = InstId(new_insts.len() as u32);
            map[iid.index()] = Some(new_id);
            new_insts.push(inst);
            nb.insts.push(new_id);
        }
        new_blocks.push(nb);
    }
    func.insts = new_insts;
    func.blocks = new_blocks;
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::verify::verify_module;

    fn fold_and_check(mut m: Module) -> Module {
        let removed = optimize(&mut m);
        verify_module(&m).expect("optimized module verifies");
        assert!(removed > 0, "expected some instructions to disappear");
        m
    }

    #[test]
    fn folds_constant_arithmetic_chain() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let a = fb.add(Ty::I64, 2i64, 3i64);
        let b = fb.mul(Ty::I64, a, 4i64);
        let c = fb.sub(Ty::I64, b, 5i64);
        fb.out_i(c);
        fb.ret_void();
        mb.define(fb);
        let m = fold_and_check(mb.finish());
        // everything folds into out_i(15)
        assert_eq!(m.num_insts(), 2);
        let f = m.func(m.entry);
        assert!(matches!(
            f.insts[0].kind,
            InstKind::OutI {
                v: Operand::ConstI(15)
            }
        ));
    }

    #[test]
    fn never_folds_division_by_zero() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let d = fb.div(Ty::I64, 10i64, 0i64);
        fb.out_i(d);
        fb.ret_void();
        mb.define(fb);
        let mut m = mb.finish();
        optimize(&mut m);
        // the trapping division must survive
        assert!(m
            .iter_insts()
            .any(|(_, i)| matches!(i.kind, InstKind::Bin { op: BinOp::Div, .. })));
    }

    #[test]
    fn dce_keeps_loads_and_stream_reads() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let _unused_data = fb.data_i(0, 5i64); // can trap: must stay
        let p = fb.alloc(4i64);
        let _unused_load = fb.load(Ty::I64, p, 0i64); // can trap: must stay
        let unused_add = fb.add(Ty::I64, 1i64, 2i64); // pure: folded+removed
        let _ = unused_add;
        fb.ret_void();
        mb.define(fb);
        let mut m = mb.finish();
        optimize(&mut m);
        verify_module(&m).unwrap();
        assert!(m
            .iter_insts()
            .any(|(_, i)| matches!(i.kind, InstKind::DataI { .. })));
        assert!(m
            .iter_insts()
            .any(|(_, i)| matches!(i.kind, InstKind::Load { .. })));
        assert!(!m
            .iter_insts()
            .any(|(_, i)| matches!(i.kind, InstKind::Bin { op: BinOp::Add, .. })));
    }

    #[test]
    fn folds_comparisons_and_selects() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let c = fb.cmp(CmpOp::Lt, 3i64, 4i64);
        let s = fb.select(Ty::I64, c, 10i64, 20i64);
        fb.out_i(s);
        fb.ret_void();
        mb.define(fb);
        let m = fold_and_check(mb.finish());
        let f = m.func(m.entry);
        assert!(matches!(
            f.insts[0].kind,
            InstKind::OutI {
                v: Operand::ConstI(10)
            }
        ));
    }

    #[test]
    fn folding_matches_wrapping_semantics() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let a = fb.add(Ty::I64, i64::MAX, 1i64);
        fb.out_i(a);
        fb.ret_void();
        mb.define(fb);
        let m = fold_and_check(mb.finish());
        let f = m.func(m.entry);
        assert!(matches!(
            f.insts[0].kind,
            InstKind::OutI {
                v: Operand::ConstI(i64::MIN)
            }
        ));
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let a = fb.add(Ty::I64, 1i64, 2i64);
        let b = fb.mul(Ty::I64, a, a);
        fb.out_i(b);
        fb.ret_void();
        mb.define(fb);
        let mut m = mb.finish();
        optimize(&mut m);
        let once = m.clone();
        let removed = optimize(&mut m);
        assert_eq!(removed, 0);
        assert_eq!(m, once);
    }

    #[test]
    fn cross_block_constants_fold() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let next = fb.new_block("next");
        let a = fb.add(Ty::I64, 5i64, 5i64);
        fb.br(next);
        fb.switch_to(next);
        let b = fb.mul(Ty::I64, a, 2i64);
        fb.out_i(b);
        fb.ret_void();
        mb.define(fb);
        let m = fold_and_check(mb.finish());
        let text = crate::printer::print_module(&m);
        assert!(text.contains("out_i 20"), "{text}");
    }
}
