//! Parser for the textual IR format emitted by [`crate::printer`].
//!
//! Together with the printer this gives the IR a durable on-disk form:
//! `minpsid compile <bench> > prog.ir` and `minpsid run prog.ir` work the
//! way `llvm-dis`/`lli` do for LLVM bitcode. The grammar is exactly the
//! printer's output language; `parse_module(print_module(m))`
//! reconstructs `m` (round-trip tested, including NaN/∞ float literals).

use crate::inst::{BinOp, CmpOp, Inst, InstId, InstKind, Operand, UnOp};
use crate::module::{Block, BlockId, FuncId, Function, Module};
use crate::types::Ty;
use std::fmt;

/// A parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse the printer's textual format back into a module.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    Parser::new(text).module()
}

struct Parser<'a> {
    lines: Vec<(u32, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i as u32 + 1, l.trim_end()))
            .filter(|(_, l)| !l.trim().is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn err<T>(&self, line: u32, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<(u32, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<(u32, &'a str)> {
        let l = self.peek();
        self.pos += 1;
        l
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        // `; module NAME`
        let (line, first) = match self.bump() {
            Some(l) => l,
            None => return self.err(0, "empty input"),
        };
        let name = first
            .trim()
            .strip_prefix("; module ")
            .ok_or(ParseError {
                line,
                msg: "expected `; module <name>`".into(),
            })?
            .to_string();
        let mut module = Module::new(name);
        let mut entry: Option<FuncId> = None;
        let mut next_is_entry = false;

        while let Some((line, l)) = self.peek() {
            let t = l.trim();
            if t == "; entry" {
                next_is_entry = true;
                self.pos += 1;
                continue;
            }
            if t.starts_with("fn ") {
                let fid = FuncId(module.funcs.len() as u32);
                let f = self.function()?;
                module.funcs.push(f);
                if next_is_entry {
                    entry = Some(fid);
                    next_is_entry = false;
                }
                continue;
            }
            if t.starts_with(';') {
                // trailing stats comment etc.
                self.pos += 1;
                continue;
            }
            return self.err(line, format!("unexpected line `{t}`"));
        }
        module.entry = entry.unwrap_or(FuncId(0));
        if module.funcs.is_empty() {
            return self.err(0, "module has no functions");
        }
        Ok(module)
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let (line, header) = self.bump().expect("caller checked");
        let header = header.trim();
        // `fn name(ty, ty) -> ret {`
        let rest = header
            .strip_prefix("fn ")
            .and_then(|r| r.strip_suffix('{'))
            .map(str::trim)
            .ok_or(ParseError {
                line,
                msg: "malformed function header".into(),
            })?;
        let open = rest.find('(').ok_or(ParseError {
            line,
            msg: "missing `(`".into(),
        })?;
        let close = rest.rfind(')').ok_or(ParseError {
            line,
            msg: "missing `)`".into(),
        })?;
        let name = rest[..open].trim().to_string();
        let params: Vec<Ty> = rest[open + 1..close]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| self.ty(line, s))
            .collect::<Result<_, _>>()?;
        let ret_text = rest[close + 1..]
            .trim()
            .strip_prefix("->")
            .map(str::trim)
            .ok_or(ParseError {
                line,
                msg: "missing `-> <ret>`".into(),
            })?;
        let ret = if ret_text == "void" {
            None
        } else {
            Some(self.ty(line, ret_text)?)
        };

        // Collect the body lines first: instruction ids in the text follow
        // the *arena* order of the original module, which nested control
        // flow makes non-monotonic in block order. Pass 1 assigns fresh
        // dense ids in textual order and maps declared `%N` ids onto them
        // (handling forward references); pass 2 parses with the full map.
        enum BodyLine<'t> {
            Label(String),
            Inst(u32, &'t str),
        }
        let mut body: Vec<BodyLine> = Vec::new();
        loop {
            let Some((line, l)) = self.bump() else {
                return self.err(line, "unterminated function (missing `}`)");
            };
            let t = l.trim();
            if t == "}" {
                break;
            }
            if let Some(label) = t.strip_suffix(':') {
                let (bname, _) = label.rsplit_once('.').ok_or(ParseError {
                    line,
                    msg: format!("malformed block label `{label}`"),
                })?;
                body.push(BodyLine::Label(bname.to_string()));
                continue;
            }
            if body.is_empty() {
                return self.err(line, "instruction before first block label");
            }
            body.push(BodyLine::Inst(line, t));
        }

        // pass 1: declared-id → fresh-id map
        let mut id_map: std::collections::HashMap<u32, InstId> = std::collections::HashMap::new();
        let mut fresh: u32 = 0;
        for bl in &body {
            if let BodyLine::Inst(line, t) = bl {
                if let Some(declared) = declared_id(t) {
                    let declared = declared.map_err(|msg| ParseError { line: *line, msg })?;
                    if id_map.insert(declared, InstId(fresh)).is_some() {
                        return self.err(*line, format!("duplicate result id %{declared}"));
                    }
                }
                fresh += 1;
            }
        }

        // pass 2: parse instructions with operand remapping
        let mut func = Function::new(name, params, ret);
        for bl in &body {
            match bl {
                BodyLine::Label(bname) => func.blocks.push(Block {
                    insts: vec![],
                    name: Some(bname.clone()),
                }),
                BodyLine::Inst(line, t) => {
                    let (mut inst, _) = self.instruction(*line, t)?;
                    for op in inst.kind.operands_mut() {
                        if let Operand::Value(v) = op {
                            *v = *id_map.get(&v.0).ok_or(ParseError {
                                line: *line,
                                msg: format!("operand %{} never defined", v.0),
                            })?;
                        }
                    }
                    let id = InstId(func.insts.len() as u32);
                    func.insts.push(inst);
                    func.blocks.last_mut().unwrap().insts.push(id);
                }
            }
        }
        Ok(func)
    }

    fn ty(&self, line: u32, s: &str) -> Result<Ty, ParseError> {
        match s {
            "i64" => Ok(Ty::I64),
            "f64" => Ok(Ty::F64),
            "bool" => Ok(Ty::Bool),
            "ptr" => Ok(Ty::Ptr),
            other => Err(ParseError {
                line,
                msg: format!("unknown type `{other}`"),
            }),
        }
    }

    /// Parse one instruction line; returns the instruction and, when the
    /// line carries a `%N : ty =` prefix, the declared id for validation.
    fn instruction(&self, line: u32, text: &str) -> Result<(Inst, Option<u32>), ParseError> {
        // split off a trailing `  ; name` comment
        let (body, name) = match text.split_once("  ; ") {
            Some((b, n)) => (b.trim(), Some(n.trim().to_string())),
            None => (text, None),
        };
        let (declared, ty, rest) = match body.split_once('=') {
            Some((lhs, rhs)) if lhs.trim_start().starts_with('%') => {
                let lhs = lhs.trim();
                let (idpart, typart) = lhs.split_once(':').ok_or(ParseError {
                    line,
                    msg: "missing `:` in result declaration".into(),
                })?;
                let id: u32 = idpart.trim()[1..].parse().map_err(|_| ParseError {
                    line,
                    msg: "bad result id".into(),
                })?;
                let ty = self.ty(line, typart.trim())?;
                (Some(id), Some(ty), rhs.trim())
            }
            _ => (None, None, body.trim()),
        };

        let (mnemonic, args) = match rest.split_once(' ') {
            Some((m, a)) => (m, a.trim()),
            None => (rest, ""),
        };

        let op = |s: &str| self.operand(line, s);
        let two = |s: &str| -> Result<(Operand, Operand), ParseError> {
            let (a, b) = s.split_once(',').ok_or(ParseError {
                line,
                msg: format!("expected two operands in `{s}`"),
            })?;
            Ok((op(a.trim())?, op(b.trim())?))
        };

        let kind = match mnemonic {
            "param" => InstKind::Param {
                n: args.parse().map_err(|_| ParseError {
                    line,
                    msg: "bad param index".into(),
                })?,
            },
            "add" | "sub" | "mul" | "div" | "rem" | "and" | "or" | "xor" | "shl" | "shr"
            | "min" | "max" => {
                let (lhs, rhs) = two(args)?;
                InstKind::Bin {
                    op: bin_op(mnemonic),
                    lhs,
                    rhs,
                }
            }
            "neg" | "not" | "sqrt" | "sin" | "cos" | "exp" | "log" | "abs" | "floor" => {
                InstKind::Un {
                    op: un_op(mnemonic),
                    arg: op(args)?,
                }
            }
            "icmp" => {
                let (pred, rest) = args.split_once(' ').ok_or(ParseError {
                    line,
                    msg: "icmp needs a predicate".into(),
                })?;
                let (lhs, rhs) = two(rest)?;
                InstKind::Cmp {
                    op: cmp_op(line, pred)?,
                    lhs,
                    rhs,
                }
            }
            "select" => {
                let parts: Vec<&str> = args.split(',').map(str::trim).collect();
                if parts.len() != 3 {
                    return self.err(line, "select needs three operands");
                }
                InstKind::Select {
                    cond: op(parts[0])?,
                    then_v: op(parts[1])?,
                    else_v: op(parts[2])?,
                }
            }
            "cast" => {
                let (a, to) = args.split_once(" to ").ok_or(ParseError {
                    line,
                    msg: "cast needs ` to <ty>`".into(),
                })?;
                InstKind::Cast {
                    to: self.ty(line, to.trim())?,
                    arg: op(a.trim())?,
                }
            }
            "alloc" => InstKind::Alloc { count: op(args)? },
            "salloc" => InstKind::Salloc { count: op(args)? },
            "load" => {
                // `load ty %p[%i]`
                let (tytext, rest) = args.split_once(' ').ok_or(ParseError {
                    line,
                    msg: "load needs a type".into(),
                })?;
                let (p, i) = indexed(line, rest)?;
                InstKind::Load {
                    ptr: op(&p)?,
                    idx: op(&i)?,
                    ty: self.ty(line, tytext)?,
                }
            }
            "store" => {
                // `store %p[%i], %v`
                let (target, v) = args.rsplit_once(',').ok_or(ParseError {
                    line,
                    msg: "store needs a value".into(),
                })?;
                let (p, i) = indexed(line, target.trim())?;
                InstKind::Store {
                    ptr: op(&p)?,
                    idx: op(&i)?,
                    value: op(v.trim())?,
                }
            }
            "call" => {
                // `call @N(a, b)`
                let rest = args.strip_prefix('@').ok_or(ParseError {
                    line,
                    msg: "call needs `@<func>`".into(),
                })?;
                let (fidx, argl) = rest.split_once('(').ok_or(ParseError {
                    line,
                    msg: "call needs `(`".into(),
                })?;
                let argl = argl.strip_suffix(')').ok_or(ParseError {
                    line,
                    msg: "call needs `)`".into(),
                })?;
                let func = FuncId(fidx.parse().map_err(|_| ParseError {
                    line,
                    msg: "bad function index".into(),
                })?);
                let call_args: Vec<Operand> = argl
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(&op)
                    .collect::<Result<_, _>>()?;
                InstKind::Call {
                    func,
                    args: call_args,
                }
            }
            "nargs" => InstKind::NArgs,
            "arg_i" => InstKind::ArgI { n: op(args)? },
            "arg_f" => InstKind::ArgF { n: op(args)? },
            "data_len" => InstKind::DataLen {
                stream: stream_no(line, args)?,
            },
            "data_i" | "data_f" => {
                let (s, rest) = args.split_once('[').ok_or(ParseError {
                    line,
                    msg: "data needs `[`".into(),
                })?;
                let idx = rest.strip_suffix(']').ok_or(ParseError {
                    line,
                    msg: "data needs `]`".into(),
                })?;
                let stream = stream_no(line, s.trim())?;
                if mnemonic == "data_i" {
                    InstKind::DataI {
                        stream,
                        idx: op(idx)?,
                    }
                } else {
                    InstKind::DataF {
                        stream,
                        idx: op(idx)?,
                    }
                }
            }
            "out_i" => InstKind::OutI { v: op(args)? },
            "out_f" => InstKind::OutF { v: op(args)? },
            "check" => {
                let (a, b) = two(args)?;
                InstKind::Check { a, b }
            }
            "br" => InstKind::Br {
                target: block_ref(line, args)?,
            },
            "condbr" => {
                let parts: Vec<&str> = args.split(',').map(str::trim).collect();
                if parts.len() != 3 {
                    return self.err(line, "condbr needs cond and two targets");
                }
                InstKind::CondBr {
                    cond: op(parts[0])?,
                    then_b: block_ref(line, parts[1])?,
                    else_b: block_ref(line, parts[2])?,
                }
            }
            "ret" => {
                if args.is_empty() {
                    InstKind::Ret { v: None }
                } else {
                    InstKind::Ret { v: Some(op(args)?) }
                }
            }
            other => return self.err(line, format!("unknown mnemonic `{other}`")),
        };
        let mut inst = Inst::new(kind, ty);
        inst.name = name;
        Ok((inst, declared))
    }

    fn operand(&self, line: u32, s: &str) -> Result<Operand, ParseError> {
        let s = s.trim();
        if let Some(v) = s.strip_prefix('%') {
            return Ok(Operand::Value(InstId(v.parse().map_err(|_| {
                ParseError {
                    line,
                    msg: format!("bad value ref `{s}`"),
                }
            })?)));
        }
        match s {
            "true" => return Ok(Operand::ConstB(true)),
            "false" => return Ok(Operand::ConstB(false)),
            "NaN" => return Ok(Operand::ConstF(f64::NAN)),
            "inf" => return Ok(Operand::ConstF(f64::INFINITY)),
            "-inf" => return Ok(Operand::ConstF(f64::NEG_INFINITY)),
            _ => {}
        }
        // float literals contain `.`, `e`, or are printed by {:?}
        if s.contains('.') || s.contains('e') || s.contains('E') {
            return s
                .parse::<f64>()
                .map(Operand::ConstF)
                .map_err(|_| ParseError {
                    line,
                    msg: format!("bad float literal `{s}`"),
                });
        }
        s.parse::<i64>()
            .map(Operand::ConstI)
            .map_err(|_| ParseError {
                line,
                msg: format!("bad operand `{s}`"),
            })
    }
}

/// Extract the declared `%N` result id from an instruction line, if any.
fn declared_id(t: &str) -> Option<Result<u32, String>> {
    let t = t.trim_start();
    let rest = t.strip_prefix('%')?;
    let (idpart, after) = rest.split_once(':')?;
    // only lines of the form `%N : ty = ...` declare a result
    if !after.contains('=') {
        return None;
    }
    Some(
        idpart
            .trim()
            .parse::<u32>()
            .map_err(|_| format!("bad result id `%{}`", idpart.trim())),
    )
}

fn bin_op(m: &str) -> BinOp {
    match m {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "min" => BinOp::Min,
        _ => BinOp::Max,
    }
}

fn un_op(m: &str) -> UnOp {
    match m {
        "neg" => UnOp::Neg,
        "not" => UnOp::Not,
        "sqrt" => UnOp::Sqrt,
        "sin" => UnOp::Sin,
        "cos" => UnOp::Cos,
        "exp" => UnOp::Exp,
        "log" => UnOp::Log,
        "abs" => UnOp::Abs,
        _ => UnOp::Floor,
    }
}

fn cmp_op(line: u32, s: &str) -> Result<CmpOp, ParseError> {
    match s {
        "Eq" => Ok(CmpOp::Eq),
        "Ne" => Ok(CmpOp::Ne),
        "Lt" => Ok(CmpOp::Lt),
        "Le" => Ok(CmpOp::Le),
        "Gt" => Ok(CmpOp::Gt),
        "Ge" => Ok(CmpOp::Ge),
        other => Err(ParseError {
            line,
            msg: format!("unknown predicate `{other}`"),
        }),
    }
}

/// Parse `%p[%i]` / `%p[5]`.
fn indexed(line: u32, s: &str) -> Result<(String, String), ParseError> {
    let (p, rest) = s.split_once('[').ok_or(ParseError {
        line,
        msg: format!("expected `ptr[idx]` in `{s}`"),
    })?;
    let i = rest.strip_suffix(']').ok_or(ParseError {
        line,
        msg: "missing `]`".into(),
    })?;
    Ok((p.trim().to_string(), i.trim().to_string()))
}

/// Parse `#N` stream numbers.
fn stream_no(line: u32, s: &str) -> Result<u32, ParseError> {
    s.strip_prefix('#')
        .and_then(|v| v.parse().ok())
        .ok_or(ParseError {
            line,
            msg: format!("bad stream number `{s}`"),
        })
}

/// Parse `bb.N` block references.
fn block_ref(line: u32, s: &str) -> Result<BlockId, ParseError> {
    s.trim()
        .strip_prefix("bb.")
        .and_then(|v| v.parse().ok())
        .map(BlockId)
        .ok_or(ParseError {
            line,
            msg: format!("bad block reference `{s}`"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::printer::print_module;
    use crate::verify::verify_module;

    fn roundtrip(m: &Module) {
        let text = print_module(m);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(&parsed, m, "round-trip mismatch:\n{text}");
    }

    #[test]
    fn roundtrips_a_branching_function() {
        let mut mb = ModuleBuilder::new("rt");
        let main = mb.declare("main", vec![], Some(Ty::I64));
        let mut fb = mb.body(main);
        let t = fb.new_block("then");
        let e = fb.new_block("else");
        let x = fb.arg_i(0i64);
        fb.name_last("x");
        let c = fb.cmp(CmpOp::Gt, x, 50i64);
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.ret(1i64);
        fb.switch_to(e);
        fb.ret(0i64);
        mb.define(fb);
        roundtrip(&mb.finish());
    }

    #[test]
    fn roundtrips_memory_calls_and_floats() {
        let mut mb = ModuleBuilder::new("rt2");
        let main = mb.declare("main", vec![], None);
        let helper = mb.declare("h", vec![Ty::F64, Ty::Ptr], Some(Ty::F64));
        let mut fb = mb.body(helper);
        let p0 = fb.param(0);
        let p1 = fb.param(1);
        let v = fb.load(Ty::F64, p1, 3i64);
        let s = fb.un(UnOp::Sqrt, Ty::F64, v);
        let r = fb.add(Ty::F64, s, p0);
        fb.ret(r);
        mb.define(fb);
        let mut fb = mb.body(main);
        let a = fb.alloc(8i64);
        fb.store(a, 3i64, 2.5f64);
        let x = fb.call(helper, Some(Ty::F64), vec![0.25f64.into(), a.into()]);
        fb.out_f(x);
        let sl = fb.salloc(1i64);
        fb.store(sl, 0i64, 7i64);
        let l = fb.load(Ty::I64, sl, 0i64);
        fb.out_i(l);
        fb.check(l, l);
        fb.ret_void();
        mb.define(fb);
        roundtrip(&mb.finish());
    }

    #[test]
    fn roundtrips_every_benchmark_shaped_construct() {
        // selects, casts, data streams, shifts, min/max, nargs
        let mut mb = ModuleBuilder::new("rt3");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let n = fb.nargs();
        let d = fb.data_len(2);
        let di = fb.data_i(0, 4i64);
        let df = fb.data_f(1, di);
        let ci = fb.cast(Ty::I64, df);
        let cf = fb.cast(Ty::F64, ci);
        let c = fb.cmp(CmpOp::Le, ci, n);
        let s = fb.select(Ty::I64, c, ci, d);
        let sh = fb.bin(BinOp::Shl, Ty::I64, s, 2i64);
        let mx = fb.bin(BinOp::Max, Ty::I64, sh, 100i64);
        fb.out_i(mx);
        fb.out_f(cf);
        fb.ret_void();
        mb.define(fb);
        roundtrip(&mb.finish());
    }

    #[test]
    fn roundtrips_special_float_literals() {
        let mut mb = ModuleBuilder::new("rt4");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let a = fb.add(Ty::F64, f64::INFINITY, f64::NEG_INFINITY);
        fb.out_f(a);
        fb.out_f(1e300f64);
        fb.out_f(-0.0f64);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let text = print_module(&m);
        let parsed = parse_module(&text).unwrap();
        // NaN-bearing modules cannot use `==`; compare printed forms
        assert_eq!(print_module(&parsed), text);
    }

    /// Kernel-shaped module (loops, salloc locals, calls, math) survives
    /// print → parse → print byte-identically and still verifies. The
    /// whole benchmark suite gets the same treatment in the workspace
    /// integration tests (the ir crate cannot depend on minic).
    #[test]
    fn roundtrips_a_kernel_shaped_module() {
        let m = kernel_shaped_module();
        let text = print_module(&m);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(print_module(&parsed), text);
        assert_eq!(parsed, m);
        verify_module(&parsed).expect("parsed module verifies");
    }

    fn kernel_shaped_module() -> Module {
        let mut mb = ModuleBuilder::new("suite-standin");
        let main = mb.declare("main", vec![], None);
        let helper = mb.declare("butterfly", vec![Ty::Ptr, Ty::I64], None);
        let mut fb = mb.body(helper);
        let head = fb.new_block("head");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        let p = fb.param(0);
        let nn = fb.param(1);
        let slot = fb.salloc(1i64);
        fb.store(slot, 0i64, 0i64);
        fb.br(head);
        fb.switch_to(head);
        let i = fb.load(Ty::I64, slot, 0i64);
        let c = fb.cmp(CmpOp::Lt, i, nn);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let v = fb.load(Ty::F64, p, i);
        let w = fb.un(UnOp::Cos, Ty::F64, v);
        fb.store(p, i, w);
        let i2 = fb.add(Ty::I64, i, 1i64);
        fb.store(slot, 0i64, i2);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret_void();
        mb.define(fb);
        let mut fb = mb.body(main);
        let n = fb.arg_i(0i64);
        let buf = fb.alloc(n);
        fb.call(helper, None, vec![buf.into(), n.into()]);
        let first = fb.load(Ty::F64, buf, 0i64);
        fb.out_f(first);
        fb.ret_void();
        mb.define(fb);
        mb.finish()
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_module("").is_err());
        assert!(parse_module("; module x").is_err(), "no functions");
        let bad_mnemonic = "; module x\nfn main() -> void {\nentry.0:\n  frobnicate 1\n}\n";
        let e = parse_module(bad_mnemonic).unwrap_err();
        assert!(e.msg.contains("frobnicate"));
        assert_eq!(e.line, 4);
        let undefined_operand = "; module x\nfn main() -> void {\nentry.0:\n  out_i %7\n  ret\n}\n";
        let e = parse_module(undefined_operand).unwrap_err();
        assert!(e.msg.contains("never defined"));
    }

    #[test]
    fn sparse_ids_are_renumbered_densely() {
        // hand-written IR may number freely; the parser renumbers
        let text =
            "; module x\nfn main() -> void {\nentry.0:\n  %5 : i64 = nargs\n  out_i %5\n  ret\n}\n";
        let m = parse_module(text).unwrap();
        verify_module(&m).unwrap();
        let printed = print_module(&m);
        assert!(printed.contains("%0 : i64 = nargs"));
        assert!(printed.contains("out_i %0"));
    }

    #[test]
    fn forward_references_resolve() {
        // a block printed earlier may use a value declared textually later
        // as long as dominance holds at verification time; the parser maps
        // ids in two passes so the reference resolves
        let text = "; module x\nfn main() -> void {\nentry.0:\n  %9 : i64 = nargs\n  br bb.1\nnext.1:\n  out_i %9\n  ret\n}\n";
        let m = parse_module(text).unwrap();
        verify_module(&m).unwrap();
    }

    #[test]
    fn entry_marker_is_respected() {
        let mut mb = ModuleBuilder::new("rt5");
        let _aux = mb.declare("aux", vec![], None);
        let main = mb.declare("main", vec![], None);
        for f in [_aux, main] {
            let mut fb = mb.body(f);
            fb.ret_void();
            mb.define(fb);
        }
        mb.set_entry(main);
        let m = mb.finish();
        let parsed = parse_module(&print_module(&m)).unwrap();
        assert_eq!(parsed.entry, main);
    }
}
