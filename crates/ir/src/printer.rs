//! Human-readable textual form of modules, in an LLVM-flavoured syntax.
//!
//! Used by the CLI (`minpsid compile --emit-ir`), diagnostics, and the
//! incubative-instruction reports that point developers at the offending
//! instruction (paper Fig. 3 shows exactly such an excerpt).

use crate::inst::{InstId, InstKind, Operand};
use crate::module::{Function, Module};
use std::fmt::Write as _;

/// Render a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {}", m.name);
    for (fid, f) in m.iter_funcs() {
        if fid == m.entry {
            let _ = writeln!(out, "; entry");
        }
        out.push_str(&print_function(f));
        out.push('\n');
    }
    out
}

fn fmt_operand(o: &Operand) -> String {
    match o {
        Operand::Value(v) => format!("%{}", v.0),
        Operand::ConstI(i) => i.to_string(),
        Operand::ConstF(x) => format!("{x:?}"),
        Operand::ConstB(b) => b.to_string(),
    }
}

/// Render one function.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params = f
        .params
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let ret = f
        .ret
        .map(|t| t.to_string())
        .unwrap_or_else(|| "void".into());
    let _ = writeln!(out, "fn {}({}) -> {} {{", f.name, params, ret);
    for (bid, b) in f.iter_blocks() {
        let label = b.name.as_deref().unwrap_or("bb");
        let _ = writeln!(out, "{label}.{}:", bid.0);
        for &iid in &b.insts {
            let _ = writeln!(out, "  {}", print_inst(f, iid));
        }
    }
    out.push_str("}\n");
    out
}

/// Render one instruction.
pub fn print_inst(f: &Function, iid: InstId) -> String {
    let inst = f.inst(iid);
    let lhs = match inst.ty {
        Some(ty) => format!("%{} : {ty} = ", iid.0),
        None => String::new(),
    };
    let body = match &inst.kind {
        InstKind::Param { n } => format!("param {n}"),
        InstKind::Bin { lhs: a, rhs: b, .. } => {
            format!(
                "{} {}, {}",
                inst.kind.mnemonic(),
                fmt_operand(a),
                fmt_operand(b)
            )
        }
        InstKind::Un { arg, .. } => format!("{} {}", inst.kind.mnemonic(), fmt_operand(arg)),
        InstKind::Cmp { op, lhs: a, rhs: b } => {
            format!("icmp {op:?} {}, {}", fmt_operand(a), fmt_operand(b))
        }
        InstKind::Select {
            cond,
            then_v,
            else_v,
        } => format!(
            "select {}, {}, {}",
            fmt_operand(cond),
            fmt_operand(then_v),
            fmt_operand(else_v)
        ),
        InstKind::Cast { to, arg } => format!("cast {} to {to}", fmt_operand(arg)),
        InstKind::Alloc { count } => format!("alloc {}", fmt_operand(count)),
        InstKind::Salloc { count } => format!("salloc {}", fmt_operand(count)),
        InstKind::Load { ptr, idx, ty } => {
            format!("load {ty} {}[{}]", fmt_operand(ptr), fmt_operand(idx))
        }
        InstKind::Store { ptr, idx, value } => format!(
            "store {}[{}], {}",
            fmt_operand(ptr),
            fmt_operand(idx),
            fmt_operand(value)
        ),
        InstKind::Call { func, args } => {
            let a = args.iter().map(fmt_operand).collect::<Vec<_>>().join(", ");
            format!("call @{}({})", func.0, a)
        }
        InstKind::NArgs => "nargs".into(),
        InstKind::ArgI { n } => format!("arg_i {}", fmt_operand(n)),
        InstKind::ArgF { n } => format!("arg_f {}", fmt_operand(n)),
        InstKind::DataLen { stream } => format!("data_len #{stream}"),
        InstKind::DataI { stream, idx } => format!("data_i #{stream}[{}]", fmt_operand(idx)),
        InstKind::DataF { stream, idx } => format!("data_f #{stream}[{}]", fmt_operand(idx)),
        InstKind::OutI { v } => format!("out_i {}", fmt_operand(v)),
        InstKind::OutF { v } => format!("out_f {}", fmt_operand(v)),
        InstKind::Check { a, b } => format!("check {}, {}", fmt_operand(a), fmt_operand(b)),
        InstKind::Br { target } => format!("br bb.{}", target.0),
        InstKind::CondBr {
            cond,
            then_b,
            else_b,
        } => format!(
            "condbr {}, bb.{}, bb.{}",
            fmt_operand(cond),
            then_b.0,
            else_b.0
        ),
        InstKind::Ret { v } => match v {
            Some(v) => format!("ret {}", fmt_operand(v)),
            None => "ret".into(),
        },
    };
    let name = inst
        .name
        .as_ref()
        .map(|n| format!("  ; {n}"))
        .unwrap_or_default();
    format!("{lhs}{body}{name}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::CmpOp;
    use crate::types::Ty;

    #[test]
    fn prints_readable_ir() {
        let mut mb = ModuleBuilder::new("demo");
        let main = mb.declare("main", vec![], Some(Ty::I64));
        let mut fb = mb.body(main);
        let t = fb.new_block("then");
        let e = fb.new_block("else");
        let x = fb.arg_i(0i64);
        fb.name_last("x");
        let c = fb.cmp(CmpOp::Gt, x, 50i64);
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.ret(1i64);
        fb.switch_to(e);
        fb.ret(0i64);
        mb.define(fb);
        let m = mb.finish();
        let text = print_module(&m);
        assert!(text.contains("fn main() -> i64 {"));
        assert!(text.contains("%0 : i64 = arg_i 0  ; x"));
        assert!(text.contains("icmp Gt %0, 50"));
        assert!(text.contains("condbr %1, bb.1, bb.2"));
        assert!(text.contains("; entry"));
    }

    #[test]
    fn void_instructions_have_no_lhs() {
        let mut mb = ModuleBuilder::new("demo");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        fb.out_i(7i64);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let text = print_function(m.func(main));
        assert!(text.contains("  out_i 7"));
        assert!(!text.contains("= out_i"));
    }
}
