//! Scalar types of the IR.

use std::fmt;

/// The scalar types a value in the IR can have.
///
/// `Ptr` values are opaque base offsets into the execution's linear memory;
/// element access always goes through `Load`/`Store` with an explicit `I64`
/// index, so pointer arithmetic never mixes with data arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit signed integer.
    I64,
    /// IEEE-754 double.
    F64,
    /// Boolean (the result type of comparisons).
    Bool,
    /// Opaque pointer into linear memory.
    Ptr,
}

impl Ty {
    /// Number of bits a single-bit-flip fault can target in a value of this
    /// type. This mirrors LLFI flipping a uniformly random bit of the
    /// instruction's return value: 64 for integers/doubles, 1 for booleans.
    /// Pointers are 64-bit offsets.
    pub fn bit_width(self) -> u32 {
        match self {
            Ty::I64 | Ty::F64 | Ty::Ptr => 64,
            Ty::Bool => 1,
        }
    }

    /// True for the numeric types that arithmetic instructions accept.
    pub fn is_numeric(self) -> bool {
        matches!(self, Ty::I64 | Ty::F64)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I64 => "i64",
            Ty::F64 => "f64",
            Ty::Bool => "bool",
            Ty::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths_match_fault_model() {
        assert_eq!(Ty::I64.bit_width(), 64);
        assert_eq!(Ty::F64.bit_width(), 64);
        assert_eq!(Ty::Ptr.bit_width(), 64);
        assert_eq!(Ty::Bool.bit_width(), 1);
    }

    #[test]
    fn numeric_classification() {
        assert!(Ty::I64.is_numeric());
        assert!(Ty::F64.is_numeric());
        assert!(!Ty::Bool.is_numeric());
        assert!(!Ty::Ptr.is_numeric());
    }

    #[test]
    fn display_names() {
        assert_eq!(Ty::I64.to_string(), "i64");
        assert_eq!(Ty::F64.to_string(), "f64");
        assert_eq!(Ty::Bool.to_string(), "bool");
        assert_eq!(Ty::Ptr.to_string(), "ptr");
    }
}
