//! Module verifier: structural, type, and dominance checks.
//!
//! Every module entering the pipeline (from the builder, the `minic` front
//! end, or the SID duplication transform) is expected to verify. The SID
//! transform in particular re-verifies its output so protection never ships
//! a malformed binary.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::inst::{InstId, InstKind, Operand, UnOp};
use crate::module::{BlockId, Function, Module};
use crate::types::Ty;
use std::fmt;

/// A verification failure, located as precisely as possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub func: String,
    pub detail: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in `{}`: {}", self.func, self.detail)
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole module; collects all errors rather than stopping at the
/// first.
pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    if m.funcs.is_empty() {
        errs.push(VerifyError {
            func: "<module>".into(),
            detail: "module has no functions".into(),
        });
        return Err(errs);
    }
    if m.entry.index() >= m.funcs.len() {
        errs.push(VerifyError {
            func: "<module>".into(),
            detail: format!("entry {:?} out of range", m.entry),
        });
    } else if !m.func(m.entry).params.is_empty() {
        errs.push(VerifyError {
            func: m.func(m.entry).name.clone(),
            detail:
                "entry function must take no parameters (inputs arrive via arg/data intrinsics)"
                    .into(),
        });
    }
    for (_, f) in m.iter_funcs() {
        verify_function(m, f, &mut errs);
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn operand_ty(f: &Function, o: &Operand) -> Option<Ty> {
    match o {
        Operand::Value(v) => f.insts.get(v.index()).and_then(|i| i.ty),
        Operand::ConstI(_) => Some(Ty::I64),
        Operand::ConstF(_) => Some(Ty::F64),
        Operand::ConstB(_) => Some(Ty::Bool),
    }
}

fn verify_function(m: &Module, f: &Function, errs: &mut Vec<VerifyError>) {
    let err = |errs: &mut Vec<VerifyError>, detail: String| {
        errs.push(VerifyError {
            func: f.name.clone(),
            detail,
        });
    };

    if f.blocks.is_empty() {
        err(errs, "function has no blocks".into());
        return;
    }

    // block structure: non-empty, single trailing terminator, each inst in
    // exactly one block
    let mut seen = vec![0u8; f.insts.len()];
    for (bid, b) in f.iter_blocks() {
        if b.insts.is_empty() {
            err(errs, format!("block {bid:?} is empty"));
            continue;
        }
        for (pos, &iid) in b.insts.iter().enumerate() {
            if iid.index() >= f.insts.len() {
                err(errs, format!("block {bid:?} references bad inst {iid:?}"));
                continue;
            }
            seen[iid.index()] += 1;
            let is_term = f.inst(iid).kind.is_terminator();
            let is_last = pos + 1 == b.insts.len();
            if is_term != is_last {
                err(
                    errs,
                    format!(
                        "block {bid:?}: instruction {iid:?} ({}) {}",
                        f.inst(iid).kind.mnemonic(),
                        if is_term {
                            "is a terminator in the middle of the block"
                        } else {
                            "is the last instruction but not a terminator"
                        }
                    ),
                );
            }
        }
    }
    for (i, &count) in seen.iter().enumerate() {
        if count != 1 {
            err(
                errs,
                format!("instruction {i} appears in {count} blocks (expected 1)"),
            );
        }
    }
    if !errs.is_empty() && errs.iter().any(|e| e.func == f.name) {
        // structural damage: skip the finer checks that assume structure
        return;
    }

    // per-instruction typing
    let owners = f.inst_blocks();
    for (iid, inst) in f.insts.iter().enumerate() {
        let iid = InstId(iid as u32);
        check_types(m, f, iid, inst, errs);
        // Param placement: entry block only, index in range
        if let InstKind::Param { n } = inst.kind {
            if owners[iid.index()] != BlockId(0) {
                err(errs, format!("{iid:?}: param outside entry block"));
            }
            match f.params.get(n as usize) {
                None => err(errs, format!("{iid:?}: param index {n} out of range")),
                Some(&ty) => {
                    if inst.ty != Some(ty) {
                        err(errs, format!("{iid:?}: param type mismatch"));
                    }
                }
            }
        }
        // branch targets in range
        let targets: Vec<BlockId> = match &inst.kind {
            InstKind::Br { target } => vec![*target],
            InstKind::CondBr { then_b, else_b, .. } => vec![*then_b, *else_b],
            _ => vec![],
        };
        for t in targets {
            if t.index() >= f.blocks.len() {
                err(errs, format!("{iid:?}: branch target {t:?} out of range"));
            }
        }
    }

    // dominance: each value operand's def dominates the use
    let cfg = Cfg::build(f);
    let dom = DomTree::build(&cfg);
    let mut pos_in_block = vec![0usize; f.insts.len()];
    for (_, b) in f.iter_blocks() {
        for (pos, &iid) in b.insts.iter().enumerate() {
            pos_in_block[iid.index()] = pos;
        }
    }
    let mut ops = Vec::new();
    for (bid, b) in f.iter_blocks() {
        for &iid in &b.insts {
            ops.clear();
            f.inst(iid).kind.value_operands(&mut ops);
            for &def in &ops {
                if def.index() >= f.insts.len() {
                    err(errs, format!("{iid:?}: operand {def:?} out of range"));
                    continue;
                }
                let def_block = owners[def.index()];
                let ok = if def_block == bid {
                    pos_in_block[def.index()] < pos_in_block[iid.index()]
                } else {
                    dom.dominates(def_block, bid)
                };
                if !ok {
                    err(
                        errs,
                        format!(
                            "{iid:?} ({}) uses {def:?} which does not dominate it",
                            f.inst(iid).kind.mnemonic()
                        ),
                    );
                }
            }
        }
    }
}

fn check_types(
    m: &Module,
    f: &Function,
    iid: InstId,
    inst: &crate::inst::Inst,
    errs: &mut Vec<VerifyError>,
) {
    let mut err = |detail: String| {
        errs.push(VerifyError {
            func: f.name.clone(),
            detail: format!("{iid:?}: {detail}"),
        })
    };
    let ot = |o: &Operand| operand_ty(f, o);
    match &inst.kind {
        InstKind::Param { .. } => {}
        InstKind::Bin { op, lhs, rhs } => {
            let (Some(lt), Some(rt), Some(ty)) = (ot(lhs), ot(rhs), inst.ty) else {
                return err("bin: missing types".into());
            };
            if lt != ty || rt != ty {
                err(format!(
                    "bin {op:?}: operand types {lt}/{rt} != result {ty}"
                ));
            } else if !ty.is_numeric() {
                err(format!("bin {op:?}: non-numeric type {ty}"));
            } else if op.int_only() && ty != Ty::I64 {
                err(format!("bin {op:?}: integer-only op on {ty}"));
            }
        }
        InstKind::Un { op, arg } => {
            let (Some(at), Some(ty)) = (ot(arg), inst.ty) else {
                return err("un: missing types".into());
            };
            if at != ty {
                err(format!("un {op:?}: operand {at} != result {ty}"));
            } else if op.float_only() && ty != Ty::F64 {
                err(format!("un {op:?}: float-only op on {ty}"));
            } else if *op == UnOp::Not && !matches!(ty, Ty::Bool | Ty::I64) {
                err(format!("not: invalid type {ty}"));
            } else if matches!(op, UnOp::Neg | UnOp::Abs) && !ty.is_numeric() {
                err(format!("un {op:?}: non-numeric type {ty}"));
            }
        }
        InstKind::Cmp { lhs, rhs, .. } => {
            let (Some(lt), Some(rt)) = (ot(lhs), ot(rhs)) else {
                return err("cmp: missing operand types".into());
            };
            if lt != rt {
                err(format!("cmp: operand types differ ({lt} vs {rt})"));
            } else if !lt.is_numeric() && lt != Ty::Bool {
                err(format!("cmp: invalid operand type {lt}"));
            }
            if inst.ty != Some(Ty::Bool) {
                err("cmp: result must be bool".into());
            }
        }
        InstKind::Select {
            cond,
            then_v,
            else_v,
        } => {
            if ot(cond) != Some(Ty::Bool) {
                err("select: condition must be bool".into());
            }
            if ot(then_v) != inst.ty || ot(else_v) != inst.ty {
                err("select: arm types must match result".into());
            }
        }
        InstKind::Cast { to, arg } => {
            let Some(at) = ot(arg) else {
                return err("cast: missing operand type".into());
            };
            let ok = matches!(
                (at, *to),
                (Ty::I64, Ty::F64) | (Ty::F64, Ty::I64) | (Ty::Bool, Ty::I64) | (Ty::I64, Ty::I64)
            );
            if !ok {
                err(format!("cast: {at} -> {to} unsupported"));
            }
            if inst.ty != Some(*to) {
                err("cast: result type != target type".into());
            }
        }
        InstKind::Alloc { count } | InstKind::Salloc { count } => {
            if ot(count) != Some(Ty::I64) {
                err("alloc: count must be i64".into());
            }
            if inst.ty != Some(Ty::Ptr) {
                err("alloc: result must be ptr".into());
            }
        }
        InstKind::Load { ptr, idx, ty } => {
            if ot(ptr) != Some(Ty::Ptr) {
                err("load: ptr operand must be ptr".into());
            }
            if ot(idx) != Some(Ty::I64) {
                err("load: index must be i64".into());
            }
            if !ty.is_numeric() {
                err(format!("load: element type {ty} not supported"));
            }
            if inst.ty != Some(*ty) {
                err("load: result type mismatch".into());
            }
        }
        InstKind::Store { ptr, idx, value } => {
            if ot(ptr) != Some(Ty::Ptr) {
                err("store: ptr operand must be ptr".into());
            }
            if ot(idx) != Some(Ty::I64) {
                err("store: index must be i64".into());
            }
            match ot(value) {
                Some(t) if t.is_numeric() => {}
                t => err(format!("store: value type {t:?} not supported")),
            }
        }
        InstKind::Call { func, args } => {
            let Some(callee) = m.funcs.get(func.index()) else {
                return err(format!("call: function {func:?} out of range"));
            };
            if callee.params.len() != args.len() {
                err(format!(
                    "call `{}`: expected {} args, got {}",
                    callee.name,
                    callee.params.len(),
                    args.len()
                ));
            } else {
                for (k, (a, &pt)) in args.iter().zip(&callee.params).enumerate() {
                    if ot(a) != Some(pt) {
                        err(format!("call `{}`: arg {k} type mismatch", callee.name));
                    }
                }
            }
            if inst.ty != callee.ret {
                err(format!("call `{}`: return type mismatch", callee.name));
            }
        }
        InstKind::NArgs | InstKind::DataLen { .. } => {
            if inst.ty != Some(Ty::I64) {
                err("nargs/data_len: result must be i64".into());
            }
        }
        InstKind::ArgI { n } | InstKind::ArgF { n } => {
            if ot(n) != Some(Ty::I64) {
                err("arg: index must be i64".into());
            }
        }
        InstKind::DataI { idx, .. } | InstKind::DataF { idx, .. } => {
            if ot(idx) != Some(Ty::I64) {
                err("data: index must be i64".into());
            }
        }
        InstKind::OutI { v } => {
            if ot(v) != Some(Ty::I64) {
                err("out_i: value must be i64".into());
            }
        }
        InstKind::OutF { v } => {
            if ot(v) != Some(Ty::F64) {
                err("out_f: value must be f64".into());
            }
        }
        InstKind::Check { a, b } => {
            let (ta, tb) = (ot(a), ot(b));
            if ta.is_none() || ta != tb {
                err(format!("check: operand types differ ({ta:?} vs {tb:?})"));
            }
        }
        InstKind::Br { .. } => {}
        InstKind::CondBr { cond, .. } => {
            if ot(cond) != Some(Ty::Bool) {
                err("condbr: condition must be bool".into());
            }
        }
        InstKind::Ret { v } => match (v, f.ret) {
            (None, None) => {}
            (Some(v), Some(rt)) => {
                if ot(v) != Some(rt) {
                    err(format!("ret: value type != declared return type {rt}"));
                }
            }
            (None, Some(_)) => err("ret: missing return value".into()),
            (Some(_), None) => err("ret: value returned from void function".into()),
        },
    }
}

/// Verify a module and panic with a readable report on failure. Intended
/// for tests and workload registration, where a malformed module is a bug.
pub fn assert_verified(m: &Module) {
    if let Err(errs) = verify_module(m) {
        let mut report = format!("module `{}` failed verification:\n", m.name);
        for e in &errs {
            report.push_str(&format!("  - {e}\n"));
        }
        panic!("{report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::{BinOp, CmpOp};

    fn trivial() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], Some(Ty::I64));
        let mut fb = mb.body(main);
        let a = fb.add(Ty::I64, 1i64, 2i64);
        fb.ret(a);
        mb.define(fb);
        mb.finish()
    }

    #[test]
    fn accepts_trivial_module() {
        assert!(verify_module(&trivial()).is_ok());
    }

    #[test]
    fn rejects_type_mismatch_in_bin() {
        let mut m = trivial();
        // make the add mix i64 and f64
        m.funcs[0].insts[0].kind = InstKind::Bin {
            op: BinOp::Add,
            lhs: Operand::ConstI(1),
            rhs: Operand::ConstF(2.0),
        };
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.detail.contains("bin")));
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = trivial();
        m.funcs[0].blocks[0].insts.pop(); // drop the ret
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_entry_with_params() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![Ty::I64], None);
        let mut fb = mb.body(main);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.detail.contains("entry function")));
    }

    #[test]
    fn rejects_use_before_def_across_blocks() {
        // entry: condbr -> (a | b); block a defines v; block b uses v
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let a = fb.new_block("a");
        let b = fb.new_block("b");
        let c = fb.cmp(CmpOp::Lt, 1i64, 2i64);
        fb.cond_br(c, a, b);
        fb.switch_to(a);
        let v = fb.add(Ty::I64, 1i64, 1i64);
        fb.ret_void();
        fb.switch_to(b);
        fb.out_i(v); // v does not dominate this use
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.detail.contains("dominate")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_bad_call_arity() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let helper = mb.declare("h", vec![Ty::I64], None);
        let mut fb = mb.body(helper);
        fb.ret_void();
        mb.define(fb);
        let mut fb = mb.body(main);
        fb.call(helper, None, vec![]); // missing arg
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.detail.contains("expected 1 args")));
    }

    #[test]
    fn rejects_condbr_on_integer() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let b = fb.new_block("b");
        let v = fb.add(Ty::I64, 1i64, 1i64);
        fb.cond_br(v, b, b);
        fb.switch_to(b);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.detail.contains("condition")));
    }

    #[test]
    fn rejects_float_only_unop_on_int() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], None);
        let mut fb = mb.body(main);
        let _ = fb.un(UnOp::Sqrt, Ty::I64, 4i64);
        fb.ret_void();
        mb.define(fb);
        let m = mb.finish();
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.detail.contains("float-only")));
    }

    #[test]
    fn rejects_ret_type_mismatch() {
        let mut mb = ModuleBuilder::new("t");
        let main = mb.declare("main", vec![], Some(Ty::F64));
        let mut fb = mb.body(main);
        fb.ret(1i64);
        mb.define(fb);
        let m = mb.finish();
        assert!(verify_module(&m).is_err());
    }
}
