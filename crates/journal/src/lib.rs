//! # minpsid-journal — crash-safe campaign journal
//!
//! Fleet-scale SDC screening runs for hours; this crate makes the run's
//! progress durable so a crash, OOM, or `kill -9` costs seconds of
//! replay instead of the whole campaign. The design follows the
//! append-only, checksummed, recovery-by-replay idioms of persistent
//! log libraries:
//!
//! * [`record`] — the durable facts: per-injection outcomes, golden-run
//!   digests, GA evaluation memos, accepted search inputs, the knapsack
//!   selection, all keyed by FNV-64 fingerprints.
//! * [`wal`] — framing, checksums, batched fsync, and torn-tail
//!   recovery (truncate to the last intact record).
//! * [`CampaignJournal`] — the in-memory index over the log that the
//!   pipeline consults: campaigns ask it for already-journaled outcomes
//!   (recovered work) and append fresh ones (new work). Resume is
//!   replay: the deterministic pipeline re-walks its decisions and the
//!   journal short-circuits everything expensive, which is what makes a
//!   resumed run bit-identical to an uninterrupted one.
//! * [`interrupt`] — a process-wide cooperative stop flag (set by the
//!   CLI's SIGINT handler) that campaign loops poll, so ^C flushes the
//!   journal and exits cleanly instead of mid-write.
//!
//! Campaign workers never append to the WAL directly: the faultsim
//! `CampaignEngine` buffers each unit's records worker-locally and a
//! single ordered writer appends completed units in plan order, so a
//! journaled campaign parallelizes while its WAL (and therefore any
//! resume) stays byte-identical to a serial run's.
//!
//! The crate sits just above `minpsid-trace` in the dependency order:
//! recovery and usage statistics flow into the trace so `trace report`
//! shows injections recovered vs replayed.

pub mod record;
pub mod wal;

use minpsid_store::{ArtifactStore, StoreError};
use record::Record;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use wal::{encode_records, open_wal, rewrite_wal, WalWriter};

/// Cooperative interruption: one process-wide flag, set from a signal
/// handler (it is only an atomic store, so it is async-signal-safe) and
/// polled by campaign loops between injections.
pub mod interrupt {
    use std::sync::atomic::{AtomicBool, Ordering};

    static FLAG: AtomicBool = AtomicBool::new(false);

    /// Request a clean stop (safe to call from a signal handler).
    pub fn request() {
        FLAG.store(true, Ordering::SeqCst);
    }

    /// Has a stop been requested?
    pub fn requested() -> bool {
        FLAG.load(Ordering::SeqCst)
    }

    /// Reset the flag (tests; a fresh run after a handled interrupt).
    pub fn clear() {
        FLAG.store(false, Ordering::SeqCst);
    }
}

/// The run was cooperatively interrupted (SIGINT); journaled state is
/// flushed and the campaign can be resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted;

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign interrupted; progress saved to the journal")
    }
}

impl std::error::Error for Interrupted {}

/// Why a journal could not be opened.
#[derive(Debug)]
pub enum JournalError {
    Io(io::Error),
    /// The log belongs to a different (module, config) pair; replaying
    /// its outcomes into this run would be silent garbage.
    Mismatch {
        expected: (u64, u64),
        found: (u64, u64),
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O: {e}"),
            JournalError::Mismatch { expected, found } => write!(
                f,
                "journal belongs to a different run: module/config fingerprint \
                 {found:#x?} but this run is {expected:#x?} — \
                 resume with the same program, inputs, and campaign settings, \
                 or point --journal at a fresh directory"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

const WAL_FILE: &str = "campaign.wal";

/// Store ref name for a run's compacted-WAL snapshot: one snapshot per
/// (module, config) pair, so a resumed run finds exactly its own.
fn wal_ref_name(module_fp: u64, config_fp: u64) -> String {
    format!("{module_fp:016x}-{config_fp:016x}")
}

#[derive(Default)]
struct State {
    golden: HashMap<u64, (u64, u64)>,
    per_inst: HashMap<(u64, u64, u64), u8>,
    program: HashMap<(u64, u64), u8>,
    eval: HashMap<u64, Vec<u64>>,
    accepted: Vec<(u64, u64)>,
    selection: Option<Vec<bool>>,
    quarantine: HashMap<(u64, u64), u8>,
    /// Latest per-section module identity: `(fingerprint, dense base,
    /// instruction count)` per function, in function order. Lets
    /// [`CampaignJournal::open_with_sections`] carry per-instruction
    /// facts across a module edit.
    sections: Option<Vec<(u64, u64, u64)>>,
}

impl State {
    fn apply(&mut self, rec: Record) {
        match rec {
            Record::Header { .. } => {}
            Record::GoldenDigest {
                input_fp,
                output_fp,
                steps,
            } => {
                self.golden.insert(input_fp, (output_fp, steps));
            }
            Record::PerInstOutcome {
                input_fp,
                dense,
                k,
                outcome,
            } => {
                self.per_inst.insert((input_fp, dense, k), outcome);
            }
            Record::ProgramOutcome {
                input_fp,
                index,
                outcome,
            } => {
                self.program.insert((input_fp, index), outcome);
            }
            Record::EvalProfile { input_fp, cfg_list } => {
                self.eval.insert(input_fp, cfg_list);
            }
            Record::SearchAccepted { index, input_fp } => {
                if !self.accepted.iter().any(|&(i, _)| i == index) {
                    self.accepted.push((index, input_fp));
                }
            }
            Record::Selection { bits } => self.selection = Some(bits),
            Record::Quarantine {
                input_fp,
                dense,
                reason,
            } => {
                self.quarantine.insert((input_fp, dense), reason);
            }
            // Spool-only: workers write these into their private segments;
            // the supervisor folds them into ProgramOutcome records before
            // anything reaches a campaign WAL. Ignore defensively.
            Record::ShardUnit { .. } => {}
            Record::SectionMap { entries } => self.sections = Some(entries),
        }
    }

    /// The compacted record set: current state, one record per fact.
    fn snapshot(&self, module_fp: u64, config_fp: u64) -> Vec<Record> {
        let mut out = Vec::with_capacity(
            1 + self.golden.len() + self.per_inst.len() + self.program.len() + self.eval.len() + 8,
        );
        out.push(Record::Header {
            module_fp,
            config_fp,
        });
        // right after the header so a remapping open finds it before any
        // outcome record
        if let Some(entries) = &self.sections {
            out.push(Record::SectionMap {
                entries: entries.clone(),
            });
        }
        // deterministic order so compaction is reproducible
        let mut golden: Vec<_> = self.golden.iter().collect();
        golden.sort_unstable_by_key(|(k, _)| **k);
        for (&input_fp, &(output_fp, steps)) in golden {
            out.push(Record::GoldenDigest {
                input_fp,
                output_fp,
                steps,
            });
        }
        let mut per_inst: Vec<_> = self.per_inst.iter().collect();
        per_inst.sort_unstable_by_key(|(k, _)| **k);
        for (&(input_fp, dense, k), &outcome) in per_inst {
            out.push(Record::PerInstOutcome {
                input_fp,
                dense,
                k,
                outcome,
            });
        }
        let mut program: Vec<_> = self.program.iter().collect();
        program.sort_unstable_by_key(|(k, _)| **k);
        for (&(input_fp, index), &outcome) in program {
            out.push(Record::ProgramOutcome {
                input_fp,
                index,
                outcome,
            });
        }
        let mut quarantine: Vec<_> = self.quarantine.iter().collect();
        quarantine.sort_unstable_by_key(|(k, _)| **k);
        for (&(input_fp, dense), &reason) in quarantine {
            out.push(Record::Quarantine {
                input_fp,
                dense,
                reason,
            });
        }
        let mut eval: Vec<_> = self.eval.iter().collect();
        eval.sort_unstable_by_key(|(k, _)| **k);
        for (&input_fp, cfg_list) in eval {
            out.push(Record::EvalProfile {
                input_fp,
                cfg_list: cfg_list.clone(),
            });
        }
        for &(index, input_fp) in &self.accepted {
            out.push(Record::SearchAccepted { index, input_fp });
        }
        if let Some(bits) = &self.selection {
            out.push(Record::Selection { bits: bits.clone() });
        }
        out
    }
}

/// The crash-safe journal of one campaign run: an in-memory index over
/// an append-only WAL.
///
/// Readers (campaign workers probing for recovered outcomes) take the
/// `RwLock` read side; appends take the write side plus the writer
/// mutex. Both are off the interpreter's hot path — one probe and at
/// most one append per *injection* (a whole program execution).
pub struct CampaignJournal {
    dir: PathBuf,
    module_fp: u64,
    config_fp: u64,
    state: RwLock<State>,
    writer: Mutex<WalWriter>,
    /// Injections served from the journal this run (recovered work).
    served: AtomicU64,
    /// Records appended this run (fresh work).
    appended: AtomicU64,
    recovered_records: u64,
    truncated_bytes: u64,
    dropped_records: u64,
    /// Artifact store that mirrors each compacted WAL snapshot. On open
    /// the snapshot object is verified and its records merged under the
    /// live log, so bit rot in the compacted prefix costs a recompute of
    /// at most the un-snapshotted suffix instead of the whole campaign.
    store: Option<Arc<ArtifactStore>>,
}

/// Artifact class under which compacted WAL snapshots are published.
pub const WAL_ARTIFACT: &str = "wal";

impl CampaignJournal {
    /// Open (creating if needed) the journal in `dir`, recover its
    /// intact prefix, truncate any torn tail, and verify it belongs to
    /// this (module, config) pair. Emits a `journal_recovery` trace
    /// event describing what recovery found.
    pub fn open(dir: &Path, module_fp: u64, config_fp: u64) -> Result<Self, JournalError> {
        Self::open_with_store(dir, module_fp, config_fp, None)
    }

    /// [`CampaignJournal::open`], plus an artifact store that holds a
    /// verified snapshot of every compacted WAL. The snapshot's records
    /// are merged *under* the live log (the live log is newer), so if
    /// mid-file corruption severed the live log's compacted prefix, the
    /// snapshot restores those facts; if the snapshot itself rotted, the
    /// store quarantines it and the live log stands alone.
    pub fn open_with_store(
        dir: &Path,
        module_fp: u64,
        config_fp: u64,
        store: Option<Arc<ArtifactStore>>,
    ) -> Result<Self, JournalError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let (mut writer, recovery) = open_wal(&path)?;

        if recovery.mid_file_corruption() {
            // Loud by design: this is bit rot inside the journal, not a
            // normal crash artifact, and it bypasses --quiet.
            eprintln!(
                "minpsid: JOURNAL CORRUPTION: checksum mismatch mid-file in {}: \
                 {} intact record(s) past the corruption were dropped and will be \
                 recomputed; severed suffix preserved at {}",
                path.display(),
                recovery.dropped_records,
                recovery
                    .quarantined_tail
                    .as_deref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| "<unsaved>".to_string()),
            );
        }

        // Records from the last compacted-WAL snapshot in the store, if
        // one exists and verifies. Applied before the live records so
        // live facts win.
        let mut snapshot_records = Vec::new();
        if let Some(store) = &store {
            let name = wal_ref_name(module_fp, config_fp);
            match store.load_named(WAL_ARTIFACT, &name) {
                Ok(Some((_, bytes))) => {
                    let snap = wal::scan_bytes(&bytes);
                    // the object is digest-verified, so a short scan means
                    // an encoding bug, not rot; take whatever parses
                    snapshot_records = snap.records;
                }
                Ok(None) => {}
                Err(StoreError::Corrupt { quarantined, .. }) => {
                    eprintln!(
                        "minpsid: STORE CORRUPTION: compacted WAL snapshot for {} failed \
                         digest verification; quarantined to {} (live journal stands alone)",
                        path.display(),
                        quarantined.display(),
                    );
                }
                Err(StoreError::Missing(_)) => {}
                Err(StoreError::Io(e)) => return Err(JournalError::Io(e)),
            }
        }

        let mut state = State::default();
        let mut header: Option<(u64, u64)> = None;
        let live_records = recovery.records;
        for rec in snapshot_records.into_iter().chain(live_records) {
            if let Record::Header {
                module_fp: m,
                config_fp: c,
            } = rec
            {
                header = Some((m, c));
            }
            state.apply(rec);
        }
        match header {
            Some(found) if found != (module_fp, config_fp) => {
                return Err(JournalError::Mismatch {
                    expected: (module_fp, config_fp),
                    found,
                });
            }
            Some(_) => {}
            None => {
                writer.append(&Record::Header {
                    module_fp,
                    config_fp,
                })?;
                writer.sync()?;
            }
        }

        let recovered_records = (state.golden.len()
            + state.per_inst.len()
            + state.program.len()
            + state.eval.len()
            + state.accepted.len()
            + state.quarantine.len()
            + usize::from(state.selection.is_some())) as u64;
        minpsid_trace::emit(minpsid_trace::Event::JournalRecovery {
            records: recovered_records,
            truncated_bytes: recovery.truncated_bytes,
            dropped_records: recovery.dropped_records,
        });

        Ok(CampaignJournal {
            dir: dir.to_path_buf(),
            module_fp,
            config_fp,
            state: RwLock::new(state),
            writer: Mutex::new(writer),
            served: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            recovered_records,
            truncated_bytes: recovery.truncated_bytes,
            dropped_records: recovery.dropped_records,
            store,
        })
    }

    /// [`CampaignJournal::open_with_store`], plus the per-section
    /// identity of the module this run is about: one `(fingerprint,
    /// dense base, instruction count)` triple per function, in function
    /// order (see `minpsid_ir::section_fingerprints`).
    ///
    /// On a clean open the map is journaled so future opens can remap.
    /// If the existing log belongs to a *different module under the same
    /// config* — the program was edited between runs — and the old log
    /// carries a section map, this open remaps instead of refusing:
    /// per-instruction outcomes and quarantines in sections whose
    /// `(fingerprint, length)` survived the edit are carried over at
    /// their new dense offsets; everything else (golden digests, program
    /// outcomes, GA memos, accepted inputs, the selection) is dropped
    /// for recompute; and the WAL is rewritten under the new header.
    /// [`CampaignJournal::open`] keeps its strict refuse semantics.
    pub fn open_with_sections(
        dir: &Path,
        module_fp: u64,
        config_fp: u64,
        sections: &[(u64, u64, u64)],
        store: Option<Arc<ArtifactStore>>,
    ) -> Result<Self, JournalError> {
        match Self::open_with_store(dir, module_fp, config_fp, store.clone()) {
            Ok(j) => {
                j.record_section_map(sections);
                Ok(j)
            }
            Err(JournalError::Mismatch { expected, found })
                if found.1 == config_fp && found.0 != module_fp =>
            {
                match Self::open_remapped(dir, module_fp, config_fp, sections, store, found)? {
                    Some(j) => Ok(j),
                    // no section map in the old log (pre-incremental
                    // journal): fall back to the strict refusal
                    None => Err(JournalError::Mismatch { expected, found }),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Rebuild the journal from an old module's log by translating dense
    /// instruction keys through matching sections. `Ok(None)` means the
    /// old log has no section map and cannot be remapped.
    fn open_remapped(
        dir: &Path,
        module_fp: u64,
        config_fp: u64,
        sections: &[(u64, u64, u64)],
        store: Option<Arc<ArtifactStore>>,
        old_pair: (u64, u64),
    ) -> Result<Option<Self>, JournalError> {
        let path = dir.join(WAL_FILE);
        let (writer, recovery) = open_wal(&path)?;
        drop(writer); // the log is rewritten below
        let mut old = State::default();
        if let Some(store) = &store {
            if let Ok(Some((_, bytes))) =
                store.load_named(WAL_ARTIFACT, &wal_ref_name(old_pair.0, old_pair.1))
            {
                for rec in wal::scan_bytes(&bytes).records {
                    old.apply(rec);
                }
            }
        }
        for rec in recovery.records {
            old.apply(rec);
        }
        let Some(old_map) = old.sections.take() else {
            return Ok(None);
        };

        // Pair old and new sections that share (fingerprint, length), in
        // function order, so duplicated functions match positionally.
        let mut pool: HashMap<(u64, u64), VecDeque<u64>> = HashMap::new();
        for &(fp, base, len) in &old_map {
            if len > 0 {
                pool.entry((fp, len)).or_default().push_back(base);
            }
        }
        // (old dense base, length, new dense base) per surviving section
        let mut intervals: Vec<(u64, u64, u64)> = Vec::new();
        for &(fp, base, len) in sections {
            if len == 0 {
                continue;
            }
            if let Some(old_base) = pool.get_mut(&(fp, len)).and_then(VecDeque::pop_front) {
                intervals.push((old_base, len, base));
            }
        }
        intervals.sort_unstable();
        let map_dense = |d: u64| -> Option<u64> {
            let i = intervals.partition_point(|&(ob, _, _)| ob <= d);
            let &(ob, len, nb) = intervals.get(i.checked_sub(1)?)?;
            (d - ob < len).then(|| nb + (d - ob))
        };

        // Only facts keyed by a dense instruction inside a surviving
        // section carry over; everything module-global is recomputed.
        let mut state = State::default();
        for (&(input_fp, dense, k), &outcome) in &old.per_inst {
            if let Some(nd) = map_dense(dense) {
                state.per_inst.insert((input_fp, nd, k), outcome);
            }
        }
        for (&(input_fp, dense), &reason) in &old.quarantine {
            if let Some(nd) = map_dense(dense) {
                state.quarantine.insert((input_fp, nd), reason);
            }
        }
        state.sections = Some(sections.to_vec());

        let records = state.snapshot(module_fp, config_fp);
        let writer = rewrite_wal(&path, &records)?;
        let recovered_records = (state.per_inst.len() + state.quarantine.len()) as u64;
        minpsid_trace::emit(minpsid_trace::Event::JournalRecovery {
            records: recovered_records,
            truncated_bytes: recovery.truncated_bytes,
            dropped_records: recovery.dropped_records,
        });

        Ok(Some(CampaignJournal {
            dir: dir.to_path_buf(),
            module_fp,
            config_fp,
            state: RwLock::new(state),
            writer: Mutex::new(writer),
            served: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            recovered_records,
            truncated_bytes: recovery.truncated_bytes,
            dropped_records: recovery.dropped_records,
            store,
        }))
    }

    /// Directory this journal lives in (for "resume with ..." hints).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, State> {
        self.state.read().unwrap_or_else(|e| e.into_inner())
    }

    fn append(&self, rec: Record) {
        {
            let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
            // a failed append degrades durability, not correctness: the
            // in-memory state stays right, so the run completes and only
            // resumability of the un-appended span is lost
            let _ = w.append(&rec);
        }
        self.appended.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.write().unwrap_or_else(|e| e.into_inner());
        st.apply(rec);
    }

    // --- golden-run digests ---

    pub fn golden_digest(&self, input_fp: u64) -> Option<(u64, u64)> {
        self.read().golden.get(&input_fp).copied()
    }

    pub fn record_golden(&self, input_fp: u64, output_fp: u64, steps: u64) {
        if self.golden_digest(input_fp) == Some((output_fp, steps)) {
            return;
        }
        self.append(Record::GoldenDigest {
            input_fp,
            output_fp,
            steps,
        });
    }

    // --- per-injection outcomes ---

    pub fn per_inst_outcome(&self, input_fp: u64, dense: u64, k: u64) -> Option<u8> {
        let hit = self.read().per_inst.get(&(input_fp, dense, k)).copied();
        if hit.is_some() {
            self.served.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    pub fn record_per_inst(&self, input_fp: u64, dense: u64, k: u64, outcome: u8) {
        self.append(Record::PerInstOutcome {
            input_fp,
            dense,
            k,
            outcome,
        });
    }

    pub fn program_outcome(&self, input_fp: u64, index: u64) -> Option<u8> {
        let hit = self.read().program.get(&(input_fp, index)).copied();
        if hit.is_some() {
            self.served.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    pub fn record_program(&self, input_fp: u64, index: u64, outcome: u8) {
        self.append(Record::ProgramOutcome {
            input_fp,
            index,
            outcome,
        });
    }

    // --- quarantined injection sites ---

    /// Is this (input, dense instruction) site quarantined? Returns the
    /// failure-reason byte recorded when the scheduler gave up on it.
    /// Resume consults this before sampling a site so a known-bad site is
    /// skipped instead of re-exploding through its whole retry budget.
    pub fn quarantined_site(&self, input_fp: u64, dense: u64) -> Option<u8> {
        let hit = self.read().quarantine.get(&(input_fp, dense)).copied();
        if hit.is_some() {
            self.served.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    pub fn record_quarantine(&self, input_fp: u64, dense: u64, reason: u8) {
        if self.read().quarantine.contains_key(&(input_fp, dense)) {
            return;
        }
        self.append(Record::Quarantine {
            input_fp,
            dense,
            reason,
        });
    }

    // --- GA evaluation memos ---

    pub fn eval_profile(&self, input_fp: u64) -> Option<Vec<u64>> {
        let hit = self.read().eval.get(&input_fp).cloned();
        if hit.is_some() {
            self.served.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    pub fn record_eval(&self, input_fp: u64, cfg_list: &[u64]) {
        if self.read().eval.contains_key(&input_fp) {
            return;
        }
        self.append(Record::EvalProfile {
            input_fp,
            cfg_list: cfg_list.to_vec(),
        });
    }

    // --- search / selection state ---

    pub fn accepted_input(&self, index: u64) -> Option<u64> {
        self.read()
            .accepted
            .iter()
            .find(|&&(i, _)| i == index)
            .map(|&(_, fp)| fp)
    }

    pub fn record_accepted(&self, index: u64, input_fp: u64) {
        if self.accepted_input(index).is_some() {
            return;
        }
        self.append(Record::SearchAccepted { index, input_fp });
    }

    pub fn selection(&self) -> Option<Vec<bool>> {
        self.read().selection.clone()
    }

    pub fn record_selection(&self, bits: &[bool]) {
        self.append(Record::Selection {
            bits: bits.to_vec(),
        });
    }

    // --- section map ---

    /// The journaled per-section module identity, if any.
    pub fn section_map(&self) -> Option<Vec<(u64, u64, u64)>> {
        self.read().sections.clone()
    }

    /// Journal the module's per-section identity (idempotent).
    pub fn record_section_map(&self, entries: &[(u64, u64, u64)]) {
        if self.read().sections.as_deref() == Some(entries) {
            return;
        }
        self.append(Record::SectionMap {
            entries: entries.to_vec(),
        });
    }

    // --- durability & maintenance ---

    /// Force every appended record to stable storage (end of a stage, or
    /// on the way out after an interrupt).
    pub fn sync(&self) -> io::Result<()> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner()).sync()
    }

    /// Rewrite the log as a compacted snapshot of the current state
    /// (drops superseded records; bounds log growth across many resumes).
    /// With a store attached, the snapshot is also published as a
    /// content-addressed `wal` artifact so the next open can verify it
    /// and recover from bit rot in the live file.
    pub fn compact(&self) -> io::Result<()> {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let records = self.read().snapshot(self.module_fp, self.config_fp);
        *w = rewrite_wal(&self.dir.join(WAL_FILE), &records)?;
        if let Some(store) = &self.store {
            let digest = store.publish(WAL_ARTIFACT, &encode_records(&records))?;
            store.set_ref(
                WAL_ARTIFACT,
                &wal_ref_name(self.module_fp, self.config_fp),
                &digest,
            )?;
        }
        Ok(())
    }

    /// (records recovered at open, torn-tail bytes truncated at open).
    pub fn recovery_stats(&self) -> (u64, u64) {
        (self.recovered_records, self.truncated_bytes)
    }

    /// Intact records dropped past a mid-file checksum mismatch at open
    /// (0 for a clean or merely torn log). See [`wal::Recovery`].
    pub fn dropped_records(&self) -> u64 {
        self.dropped_records
    }

    /// (injections/evals served from the journal, records appended) this
    /// run.
    pub fn usage(&self) -> (u64, u64) {
        (
            self.served.load(Ordering::Relaxed),
            self.appended.load(Ordering::Relaxed),
        )
    }

    /// Emit the end-of-run `journal_stats` trace event.
    pub fn emit_stats(&self) {
        let (recovered, appended) = self.usage();
        minpsid_trace::emit(minpsid_trace::Event::JournalStats {
            recovered,
            appended,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("minpsid-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn outcomes_survive_reopen() {
        let dir = tmpdir("reopen");
        {
            let j = CampaignJournal::open(&dir, 10, 20).unwrap();
            j.record_golden(1, 111, 5000);
            j.record_per_inst(1, 3, 0, 2);
            j.record_per_inst(1, 3, 1, 0);
            j.record_program(1, 9, 1);
            j.record_eval(77, &[1, 2, 3]);
            j.record_accepted(0, 77);
            j.record_selection(&[true, false, true]);
            j.record_quarantine(1, 4, 0);
            j.record_quarantine(1, 4, 1); // idempotent: first reason wins
            j.sync().unwrap();
        }
        let j = CampaignJournal::open(&dir, 10, 20).unwrap();
        assert_eq!(j.golden_digest(1), Some((111, 5000)));
        assert_eq!(j.per_inst_outcome(1, 3, 0), Some(2));
        assert_eq!(j.per_inst_outcome(1, 3, 1), Some(0));
        assert_eq!(j.per_inst_outcome(1, 3, 2), None);
        assert_eq!(j.program_outcome(1, 9), Some(1));
        assert_eq!(j.eval_profile(77), Some(vec![1, 2, 3]));
        assert_eq!(j.accepted_input(0), Some(77));
        assert_eq!(j.selection(), Some(vec![true, false, true]));
        assert_eq!(j.quarantined_site(1, 4), Some(0));
        assert_eq!(j.quarantined_site(1, 3), None);
        let (recovered, _) = j.recovery_stats();
        assert_eq!(recovered, 8);
        // three hits + one eval hit were served above
        assert!(j.usage().0 >= 4);
    }

    #[test]
    fn mismatched_fingerprints_refuse_to_resume() {
        let dir = tmpdir("mismatch");
        {
            let j = CampaignJournal::open(&dir, 1, 2).unwrap();
            j.record_golden(1, 1, 1);
            j.sync().unwrap();
        }
        assert!(matches!(
            CampaignJournal::open(&dir, 1, 3),
            Err(JournalError::Mismatch { .. })
        ));
        assert!(matches!(
            CampaignJournal::open(&dir, 9, 2),
            Err(JournalError::Mismatch { .. })
        ));
        // the right pair still opens
        assert!(CampaignJournal::open(&dir, 1, 2).is_ok());
    }

    #[test]
    fn section_map_round_trips_and_survives_compaction() {
        let dir = tmpdir("secmap");
        let map = [(0xaa, 0, 4), (0xbb, 4, 6)];
        {
            let j = CampaignJournal::open_with_sections(&dir, 1, 2, &map, None).unwrap();
            assert_eq!(j.section_map().as_deref(), Some(&map[..]));
            j.record_section_map(&map); // idempotent: no second record
            let (_, appended) = j.usage();
            assert_eq!(appended, 1);
            j.compact().unwrap();
        }
        let j = CampaignJournal::open(&dir, 1, 2).unwrap();
        assert_eq!(j.section_map().as_deref(), Some(&map[..]));
    }

    #[test]
    fn edited_module_remaps_surviving_sections_and_drops_the_rest() {
        let dir = tmpdir("remap");
        // module A: func a = insts [0,4), func b = insts [4,10)
        let old_map = [(0xaa, 0, 4), (0xbb, 4, 6)];
        {
            let j = CampaignJournal::open_with_sections(&dir, 100, 2, &old_map, None).unwrap();
            j.record_golden(1, 111, 5000);
            j.record_per_inst(1, 1, 0, 2); // func a: dropped by the edit
            j.record_per_inst(1, 5, 3, 4); // func b, offset 1: survives
            j.record_quarantine(1, 6, 0); // func b, offset 2: survives
            j.record_program(1, 0, 1);
            j.record_eval(77, &[1, 2]);
            j.record_selection(&[true; 10]);
            j.sync().unwrap();
        }
        // module B: func a edited (new fp, now 5 insts), func b untouched
        // but shifted to base 5
        let new_map = [(0xcc, 0, 5), (0xbb, 5, 6)];
        let j = CampaignJournal::open_with_sections(&dir, 200, 2, &new_map, None).unwrap();
        // surviving section's facts follow their section to the new base
        assert_eq!(j.per_inst_outcome(1, 6, 3), Some(4));
        assert_eq!(j.quarantined_site(1, 7), Some(0));
        // edited section's facts and module-global facts are gone
        assert_eq!(j.per_inst_outcome(1, 1, 0), None);
        assert_eq!(j.golden_digest(1), None);
        assert_eq!(j.program_outcome(1, 0), None);
        assert_eq!(j.eval_profile(77), None);
        assert_eq!(j.selection(), None);
        assert_eq!(j.section_map().as_deref(), Some(&new_map[..]));
        drop(j);
        // the rewritten WAL now belongs to module B: a plain open works
        // and the carried facts are durable
        let j = CampaignJournal::open(&dir, 200, 2).unwrap();
        assert_eq!(j.per_inst_outcome(1, 6, 3), Some(4));
        // ...and the old module refuses, as it must
        assert!(matches!(
            CampaignJournal::open(&dir, 100, 2),
            Err(JournalError::Mismatch { .. })
        ));
    }

    #[test]
    fn remap_requires_a_section_map_and_a_matching_config() {
        let dir = tmpdir("remap-refuse");
        let map = [(0xaa, 0, 4)];
        {
            // old log written without a section map
            let j = CampaignJournal::open(&dir, 100, 2).unwrap();
            j.record_per_inst(1, 1, 0, 2);
            j.sync().unwrap();
        }
        assert!(matches!(
            CampaignJournal::open_with_sections(&dir, 200, 2, &map, None),
            Err(JournalError::Mismatch { .. })
        ));
        let dir = tmpdir("remap-refuse-cfg");
        {
            let j = CampaignJournal::open_with_sections(&dir, 100, 2, &map, None).unwrap();
            j.sync().unwrap();
        }
        // config changed: dense keys may mean different things; refuse
        assert!(matches!(
            CampaignJournal::open_with_sections(&dir, 200, 3, &map, None),
            Err(JournalError::Mismatch { .. })
        ));
    }

    #[test]
    fn compaction_preserves_state_and_shrinks_log() {
        let dir = tmpdir("compact");
        let j = CampaignJournal::open(&dir, 5, 6).unwrap();
        // write the same key many times: only the last survives compaction
        for i in 0..200u64 {
            j.record_per_inst(1, 0, 0, (i % 6) as u8);
            j.record_per_inst(1, 0, i, 1);
        }
        j.sync().unwrap();
        let before = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        j.compact().unwrap();
        let after = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert!(after < before, "compaction shrinks ({before} -> {after})");
        drop(j);
        let j = CampaignJournal::open(&dir, 5, 6).unwrap();
        assert_eq!(j.per_inst_outcome(1, 0, 0), Some((199 % 6) as u8));
        assert_eq!(j.per_inst_outcome(1, 0, 150), Some(1));
    }

    /// Byte offset of frame `n` in a WAL image (frame 0 is the first
    /// record after the preamble).
    fn frame_start(bytes: &[u8], n: usize) -> usize {
        let mut pos = 8;
        for _ in 0..n {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 12 + len;
        }
        pos
    }

    #[test]
    fn store_snapshot_restores_facts_severed_by_mid_file_corruption() {
        let dir = tmpdir("snap-restore");
        let store = Arc::new(ArtifactStore::open(&dir.join("store")).unwrap());
        {
            let j = CampaignJournal::open_with_store(&dir, 5, 6, Some(store.clone())).unwrap();
            j.record_golden(1, 111, 5000);
            j.record_per_inst(1, 3, 0, 2);
            j.sync().unwrap();
            j.compact().unwrap(); // publishes the snapshot artifact
            j.record_program(1, 9, 1); // post-snapshot fact
            j.sync().unwrap();
        }
        // Rot a byte inside frame 1 (the GoldenDigest record): the live
        // scan now stops at the Header, severing every later record.
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = frame_start(&bytes, 1) + 12 + 2;
        bytes[pos] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let j = CampaignJournal::open_with_store(&dir, 5, 6, Some(store)).unwrap();
        // intact frames past the corruption (per_inst + program) counted
        assert_eq!(j.dropped_records(), 2);
        // compacted facts come back from the verified snapshot...
        assert_eq!(j.golden_digest(1), Some((111, 5000)));
        assert_eq!(j.per_inst_outcome(1, 3, 0), Some(2));
        // ...the post-snapshot fact is honestly lost (recompute territory)
        assert_eq!(j.program_outcome(1, 9), None);
        // severed suffix preserved for forensics
        assert!(path.with_extension("corrupt").exists());
    }

    #[test]
    fn corrupt_store_snapshot_is_quarantined_and_live_log_stands_alone() {
        let dir = tmpdir("snap-rot");
        let store_dir = dir.join("store");
        let store = Arc::new(ArtifactStore::open(&store_dir).unwrap());
        {
            let j = CampaignJournal::open_with_store(&dir, 5, 6, Some(store.clone())).unwrap();
            j.record_golden(1, 111, 5000);
            j.sync().unwrap();
            j.compact().unwrap();
        }
        // rot the snapshot object itself
        let ref_path = store_dir
            .join("refs")
            .join(WAL_ARTIFACT)
            .join(format!("{}.ref", wal_ref_name(5, 6)));
        let hex = std::fs::read_to_string(&ref_path)
            .unwrap()
            .trim()
            .to_string();
        let obj = store_dir
            .join("objects")
            .join(&hex[..2])
            .join(format!("{hex}.obj"));
        let mut bytes = std::fs::read(&obj).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&obj, &bytes).unwrap();

        // open succeeds from the intact live log; the rotten snapshot is
        // quarantined, not consumed
        let j = CampaignJournal::open_with_store(&dir, 5, 6, Some(store.clone())).unwrap();
        assert_eq!(j.golden_digest(1), Some((111, 5000)));
        assert_eq!(store.quarantined_count().unwrap(), 1);
        assert!(!obj.exists());
        // the next compact republishes a fresh, verifiable snapshot
        j.compact().unwrap();
        assert!(!store.scrub().unwrap().found_corruption());
    }

    #[test]
    fn interrupt_flag_round_trips() {
        interrupt::clear();
        assert!(!interrupt::requested());
        interrupt::request();
        assert!(interrupt::requested());
        interrupt::clear();
        assert!(!interrupt::requested());
    }
}
