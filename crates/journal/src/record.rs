//! Journal record types and their binary codec.
//!
//! Records are the WAL payloads: small, self-describing binary blobs
//! (tag byte + little-endian fields). The codec is hand-rolled for the
//! same reason the trace schema is: no external deps, and decode must be
//! total — any byte sequence either parses to exactly the record that
//! produced it or fails loudly, never misparses. Framing, checksums, and
//! torn-tail handling live in [`crate::wal`]; a record never sees a
//! corrupt payload.

use std::fmt;

/// One durable fact about campaign progress. Keys are FNV-64
/// fingerprints computed by the caller (the journal is below the layers
/// that know about modules and inputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// First record of every journal: which (module, config) the log
    /// belongs to. Resume refuses to proceed under a different pair —
    /// replaying outcomes of a different program would be silent garbage.
    Header { module_fp: u64, config_fp: u64 },
    /// Digest of a completed golden run for one input. Resume re-executes
    /// golden runs (they are cheap relative to campaigns) and verifies
    /// them against this digest.
    GoldenDigest {
        input_fp: u64,
        output_fp: u64,
        steps: u64,
    },
    /// Outcome of one per-instruction-campaign injection, keyed by
    /// (input, dense instruction index, repetition). The faulted bit is
    /// implied: it is drawn from an RNG seeded by exactly this key.
    PerInstOutcome {
        input_fp: u64,
        dense: u64,
        k: u64,
        outcome: u8,
    },
    /// Outcome of one whole-program-campaign injection.
    ProgramOutcome {
        input_fp: u64,
        index: u64,
        outcome: u8,
    },
    /// Memoized GA evaluation: the indexed weighted-CFG list of one
    /// candidate input, so resume replays the search without re-running
    /// the interpreter on already-evaluated candidates.
    EvalProfile { input_fp: u64, cfg_list: Vec<u64> },
    /// The search accepted input number `index` with this fingerprint
    /// (consistency check during resume).
    SearchAccepted { index: u64, input_fp: u64 },
    /// Final knapsack selection bitmap over dense instruction indices.
    Selection { bits: Vec<bool> },
    /// An injection site (input, dense instruction) quarantined by the
    /// scheduler after consecutive engine failures. `reason` is the
    /// failure-kind byte (`minpsid_sched::FailureKind::to_u8`). Resume
    /// skips quarantined sites instead of re-exploding on them.
    Quarantine {
        input_fp: u64,
        dense: u64,
        reason: u8,
    },
    /// One unit of a fleet shard, written by a worker process into its
    /// private spool segment. Spool-only: the supervisor folds these into
    /// `ProgramOutcome` records when it merges segments in plan order, so
    /// a campaign WAL never contains one. `State::apply` ignores them.
    ShardUnit {
        index: u64,
        outcome: u8,
        recovered: bool,
    },
    /// Per-section identity of the module this WAL belongs to: one
    /// `(fingerprint, dense base, instruction count)` triple per
    /// function, in function order. A later open against an *edited*
    /// module (same config) uses this to remap per-instruction facts:
    /// sections whose fingerprint and length survive the edit keep their
    /// outcomes at their new dense offsets; facts in edited sections are
    /// dropped and recomputed. The latest map wins.
    SectionMap { entries: Vec<(u64, u64, u64)> },
}

/// Why a payload failed to decode. Reaching this for a frame that passed
/// its checksum means a writer bug or version skew, so the recovery path
/// treats it like corruption: stop at the previous record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    Truncated,
    UnknownTag(u8),
    TrailingBytes(usize),
    LengthOverflow(u64),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "record payload truncated"),
            DecodeError::UnknownTag(t) => write!(f, "unknown record tag {t}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after record"),
            DecodeError::LengthOverflow(n) => write!(f, "embedded length {n} exceeds payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

const TAG_HEADER: u8 = 1;
const TAG_GOLDEN: u8 = 2;
const TAG_PER_INST: u8 = 3;
const TAG_PROGRAM: u8 = 4;
const TAG_EVAL: u8 = 5;
const TAG_ACCEPTED: u8 = 6;
const TAG_SELECTION: u8 = 7;
const TAG_QUARANTINE: u8 = 8;
const TAG_SHARD_UNIT: u8 = 9;
const TAG_SECTION_MAP: u8 = 10;

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let end = self.pos.checked_add(8).ok_or(DecodeError::Truncated)?;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(chunk.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

impl Record {
    /// Append the binary encoding of `self` to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Record::Header {
                module_fp,
                config_fp,
            } => {
                buf.push(TAG_HEADER);
                put_u64(buf, *module_fp);
                put_u64(buf, *config_fp);
            }
            Record::GoldenDigest {
                input_fp,
                output_fp,
                steps,
            } => {
                buf.push(TAG_GOLDEN);
                put_u64(buf, *input_fp);
                put_u64(buf, *output_fp);
                put_u64(buf, *steps);
            }
            Record::PerInstOutcome {
                input_fp,
                dense,
                k,
                outcome,
            } => {
                buf.push(TAG_PER_INST);
                put_u64(buf, *input_fp);
                put_u64(buf, *dense);
                put_u64(buf, *k);
                buf.push(*outcome);
            }
            Record::ProgramOutcome {
                input_fp,
                index,
                outcome,
            } => {
                buf.push(TAG_PROGRAM);
                put_u64(buf, *input_fp);
                put_u64(buf, *index);
                buf.push(*outcome);
            }
            Record::EvalProfile { input_fp, cfg_list } => {
                buf.push(TAG_EVAL);
                put_u64(buf, *input_fp);
                put_u64(buf, cfg_list.len() as u64);
                for v in cfg_list {
                    put_u64(buf, *v);
                }
            }
            Record::SearchAccepted { index, input_fp } => {
                buf.push(TAG_ACCEPTED);
                put_u64(buf, *index);
                put_u64(buf, *input_fp);
            }
            Record::Selection { bits } => {
                buf.push(TAG_SELECTION);
                put_u64(buf, bits.len() as u64);
                // pack 8 selections per byte: selections cover every static
                // instruction, so the dense form matters
                let mut byte = 0u8;
                for (i, &b) in bits.iter().enumerate() {
                    if b {
                        byte |= 1 << (i % 8);
                    }
                    if i % 8 == 7 {
                        buf.push(byte);
                        byte = 0;
                    }
                }
                if bits.len() % 8 != 0 {
                    buf.push(byte);
                }
            }
            Record::Quarantine {
                input_fp,
                dense,
                reason,
            } => {
                buf.push(TAG_QUARANTINE);
                put_u64(buf, *input_fp);
                put_u64(buf, *dense);
                buf.push(*reason);
            }
            Record::ShardUnit {
                index,
                outcome,
                recovered,
            } => {
                buf.push(TAG_SHARD_UNIT);
                put_u64(buf, *index);
                buf.push(*outcome);
                buf.push(u8::from(*recovered));
            }
            Record::SectionMap { entries } => {
                buf.push(TAG_SECTION_MAP);
                put_u64(buf, entries.len() as u64);
                for &(fp, base, len) in entries {
                    put_u64(buf, fp);
                    put_u64(buf, base);
                    put_u64(buf, len);
                }
            }
        }
    }

    /// Decode one record occupying the whole of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Record, DecodeError> {
        let mut r = Reader { bytes, pos: 0 };
        let rec = match r.u8()? {
            TAG_HEADER => Record::Header {
                module_fp: r.u64()?,
                config_fp: r.u64()?,
            },
            TAG_GOLDEN => Record::GoldenDigest {
                input_fp: r.u64()?,
                output_fp: r.u64()?,
                steps: r.u64()?,
            },
            TAG_PER_INST => Record::PerInstOutcome {
                input_fp: r.u64()?,
                dense: r.u64()?,
                k: r.u64()?,
                outcome: r.u8()?,
            },
            TAG_PROGRAM => Record::ProgramOutcome {
                input_fp: r.u64()?,
                index: r.u64()?,
                outcome: r.u8()?,
            },
            TAG_EVAL => {
                let input_fp = r.u64()?;
                let n = r.u64()?;
                if n > (r.remaining() / 8) as u64 {
                    return Err(DecodeError::LengthOverflow(n));
                }
                let mut cfg_list = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    cfg_list.push(r.u64()?);
                }
                Record::EvalProfile { input_fp, cfg_list }
            }
            TAG_ACCEPTED => Record::SearchAccepted {
                index: r.u64()?,
                input_fp: r.u64()?,
            },
            TAG_SELECTION => {
                let n = r.u64()?;
                if n > (r.remaining() as u64).saturating_mul(8) {
                    return Err(DecodeError::LengthOverflow(n));
                }
                let mut bits = Vec::with_capacity(n as usize);
                let mut byte = 0u8;
                for i in 0..n as usize {
                    if i % 8 == 0 {
                        byte = r.u8()?;
                    }
                    bits.push(byte & (1 << (i % 8)) != 0);
                }
                Record::Selection { bits }
            }
            TAG_QUARANTINE => Record::Quarantine {
                input_fp: r.u64()?,
                dense: r.u64()?,
                reason: r.u8()?,
            },
            TAG_SHARD_UNIT => Record::ShardUnit {
                index: r.u64()?,
                outcome: r.u8()?,
                recovered: r.u8()? != 0,
            },
            TAG_SECTION_MAP => {
                let n = r.u64()?;
                if n > (r.remaining() / 24) as u64 {
                    return Err(DecodeError::LengthOverflow(n));
                }
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    entries.push((r.u64()?, r.u64()?, r.u64()?));
                }
                Record::SectionMap { entries }
            }
            t => return Err(DecodeError::UnknownTag(t)),
        };
        if r.remaining() != 0 {
            return Err(DecodeError::TrailingBytes(r.remaining()));
        }
        Ok(rec)
    }

    /// Encode into a fresh buffer (convenience for tests and the WAL).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(40);
        self.encode(&mut buf);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(rec: Record) {
        let bytes = rec.to_bytes();
        assert_eq!(Record::decode(&bytes).unwrap(), rec, "bytes: {bytes:?}");
    }

    #[test]
    fn every_record_round_trips() {
        rt(Record::Header {
            module_fp: 1,
            config_fp: u64::MAX,
        });
        rt(Record::GoldenDigest {
            input_fp: 3,
            output_fp: 4,
            steps: 5,
        });
        rt(Record::PerInstOutcome {
            input_fp: 9,
            dense: 10,
            k: 11,
            outcome: 255,
        });
        rt(Record::ProgramOutcome {
            input_fp: 6,
            index: 7,
            outcome: 0,
        });
        rt(Record::EvalProfile {
            input_fp: 12,
            cfg_list: vec![],
        });
        rt(Record::EvalProfile {
            input_fp: 12,
            cfg_list: vec![0, u64::MAX, 17],
        });
        rt(Record::SearchAccepted {
            index: 2,
            input_fp: 13,
        });
        rt(Record::Selection { bits: vec![] });
        rt(Record::Selection {
            bits: vec![true, false, true, true, false, false, false, true, true],
        });
        rt(Record::Quarantine {
            input_fp: 14,
            dense: 15,
            reason: 1,
        });
        rt(Record::ShardUnit {
            index: 16,
            outcome: 2,
            recovered: true,
        });
        rt(Record::ShardUnit {
            index: u64::MAX,
            outcome: 0,
            recovered: false,
        });
        rt(Record::SectionMap { entries: vec![] });
        rt(Record::SectionMap {
            entries: vec![(0xdead_beef, 0, 12), (u64::MAX, 12, 3)],
        });
    }

    #[test]
    fn truncation_and_bad_tags_are_rejected() {
        let bytes = Record::Header {
            module_fp: 1,
            config_fp: 2,
        }
        .to_bytes();
        for cut in 0..bytes.len() {
            assert!(Record::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert_eq!(Record::decode(&[99]), Err(DecodeError::UnknownTag(99)));
        let mut extra = bytes.clone();
        extra.push(0);
        assert_eq!(Record::decode(&extra), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // an EvalProfile claiming u64::MAX entries must fail before the
        // Vec::with_capacity, not OOM
        let mut buf = vec![super::TAG_EVAL];
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Record::decode(&buf),
            Err(DecodeError::LengthOverflow(_))
        ));
        let mut buf = vec![super::TAG_SELECTION];
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Record::decode(&buf),
            Err(DecodeError::LengthOverflow(_))
        ));
        let mut buf = vec![super::TAG_SECTION_MAP];
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 24]);
        assert!(matches!(
            Record::decode(&buf),
            Err(DecodeError::LengthOverflow(_))
        ));
    }
}
