//! Append-only write-ahead log with checksummed frames and torn-tail
//! recovery.
//!
//! On-disk layout:
//!
//! ```text
//! [MAGIC "MPSJ"][version u32 LE]          file preamble
//! [len u32 LE][fnv64 u64 LE][payload]     frame, repeated
//! ```
//!
//! Durability model: every frame is `write_all`'d directly to the file
//! (no userspace buffering), so a SIGKILL loses at most the frame being
//! written — the OS page cache holds everything already written. `fsync`
//! is batched (every [`WalWriter::FSYNC_EVERY`] frames plus explicit
//! [`WalWriter::sync`] calls) and only matters for power loss. Either
//! way the tail of the file may be torn or half-written; recovery walks
//! frames from the start and truncates the file at the first frame whose
//! length, checksum, or payload fails to validate. Everything before
//! that point is intact by checksum.

use crate::record::Record;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

pub const MAGIC: [u8; 4] = *b"MPSJ";
pub const VERSION: u32 = 1;
const PREAMBLE_LEN: u64 = 8;
/// Frames are campaign facts, not bulk data; anything bigger than this
/// is corruption masquerading as a length.
const MAX_FRAME: u32 = 64 << 20;

/// FNV-1a 64 — the same fingerprint family the rest of the workspace
/// uses; collision resistance is irrelevant here, torn-write detection is
/// the job.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// What recovery found in an existing log.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Every intact record, in append order.
    pub records: Vec<Record>,
    /// File offset after the last intact frame (the append point).
    pub valid_len: u64,
    /// Bytes discarded past `valid_len` (torn or corrupt tail).
    pub truncated_bytes: u64,
    /// Intact-looking frames found *past* the first invalid one. A plain
    /// torn tail (crash mid-append) has none; a nonzero count means the
    /// middle of the log rotted and `dropped_records` good records were
    /// cut off with it — a loud, distinct recovery outcome, not a normal
    /// crash artifact. The dropped facts are recomputed on resume.
    pub dropped_records: u64,
    /// Where [`open_wal`] quarantined the severed suffix bytes
    /// (only on mid-file corruption; a torn tail is just truncated).
    pub quarantined_tail: Option<std::path::PathBuf>,
}

impl Recovery {
    /// True when the invalid region was followed by intact frames:
    /// corruption struck the middle of the file, not the append point.
    pub fn mid_file_corruption(&self) -> bool {
        self.dropped_records > 0
    }
}

/// Try to parse one frame at `pos`; returns the record and the offset
/// just past the frame.
fn try_frame(bytes: &[u8], pos: usize) -> Option<(Record, usize)> {
    let head = bytes.get(pos..pos + 12)?;
    let len = u32::from_le_bytes(head[..4].try_into().unwrap());
    if len > MAX_FRAME {
        return None;
    }
    let sum = u64::from_le_bytes(head[4..12].try_into().unwrap());
    let payload = bytes.get(pos + 12..pos + 12 + len as usize)?;
    if fnv64(payload) != sum {
        return None;
    }
    let record = Record::decode(payload).ok()?;
    Some((record, pos + 12 + len as usize))
}

/// Count intact frames in the severed region after the first invalid
/// frame, resynchronizing byte-by-byte. Recovery still stops at the
/// corruption point — records past a rotten frame cannot be trusted to
/// be complete — but the count tells the operator (and the trace) that
/// this was bit rot, not a torn tail, and how much was lost.
fn count_dropped(bytes: &[u8], from: usize) -> u64 {
    let mut count = 0u64;
    let mut pos = from;
    while pos + 12 <= bytes.len() {
        match try_frame(bytes, pos) {
            Some((_, next)) => {
                count += 1;
                pos = next;
            }
            None => pos += 1,
        }
    }
    count
}

/// Parse the byte image of a log. Never fails: a log that is corrupt
/// from the first frame simply recovers zero records.
fn scan(bytes: &[u8]) -> Recovery {
    let mut rec = Recovery::default();
    let total = bytes.len() as u64;
    if bytes.len() < PREAMBLE_LEN as usize
        || bytes[..4] != MAGIC
        || u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != VERSION
    {
        // no valid preamble: the whole file is tail
        rec.truncated_bytes = total;
        return rec;
    }
    let mut pos = PREAMBLE_LEN as usize;
    while let Some((record, next)) = try_frame(bytes, pos) {
        rec.records.push(record);
        pos = next;
    }
    rec.valid_len = pos as u64;
    rec.truncated_bytes = total - pos as u64;
    if rec.truncated_bytes > 0 {
        rec.dropped_records = count_dropped(bytes, pos + 1);
    }
    rec
}

/// Parse a byte image that is already in memory (e.g. a spool segment
/// loaded — verified — from the artifact store).
pub fn scan_bytes(bytes: &[u8]) -> Recovery {
    scan(bytes)
}

/// The full byte image of a log holding exactly `records` — preamble
/// plus checksummed frames, identical to what [`rewrite_wal`] puts on
/// disk. Used to publish compacted WALs to the artifact store.
pub fn encode_records(records: &[Record]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(PREAMBLE_LEN as usize + records.len() * 32);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    for record in records {
        let payload = record.to_bytes();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv64(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
    }
    buf
}

/// Appending side of the log. Writes are unbuffered (see module docs);
/// `fsync` is batched.
pub struct WalWriter {
    file: File,
    unsynced: u32,
    fsync_every: u32,
}

impl WalWriter {
    /// How many appended frames may await fsync (power-loss exposure
    /// window; process crashes lose nothing regardless).
    pub const FSYNC_EVERY: u32 = 64;

    /// Override the automatic fsync cadence. `0` disables periodic
    /// fsync entirely: only explicit [`sync`](Self::sync) calls hit
    /// stable storage. Logs whose durability point is a single
    /// end-of-batch barrier (fleet spool segments fsync once before
    /// `SHARD_DONE`) use this to avoid paying fsync per batch slice.
    pub fn set_fsync_every(&mut self, every: u32) {
        self.fsync_every = every;
    }

    /// Append one record as a checksummed frame.
    pub fn append(&mut self, record: &Record) -> io::Result<()> {
        self.append_batch(std::slice::from_ref(record))
    }

    /// Append several records with a single `write` — frame encoding is
    /// identical to one [`append`](Self::append) per record, but
    /// high-rate writers (fleet spool segments at microseconds per
    /// record) pay one syscall per batch instead of one per record. A
    /// crash loses at most the batch being written, which batching
    /// callers must already tolerate.
    pub fn append_batch(&mut self, records: &[Record]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::with_capacity(records.len() * 32);
        for record in records {
            let payload = record.to_bytes();
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&fnv64(&payload).to_le_bytes());
            buf.extend_from_slice(&payload);
        }
        self.file.write_all(&buf)?;
        self.unsynced += records.len() as u32;
        if self.fsync_every > 0 && self.unsynced >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }
}

/// Open (or create) the log at `path`: recover its intact prefix,
/// truncate any torn tail, and return a writer positioned at the end of
/// the valid data.
pub fn open_wal(path: &Path) -> io::Result<(WalWriter, Recovery)> {
    let mut bytes = Vec::new();
    let existed = match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
            true
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => false,
        Err(e) => return Err(e),
    };

    if !existed || bytes.is_empty() {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.sync_data()?;
        return Ok((
            WalWriter {
                file,
                unsynced: 0,
                fsync_every: WalWriter::FSYNC_EVERY,
            },
            Recovery::default(),
        ));
    }

    let mut recovery = scan(&bytes);
    if recovery.valid_len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not a minpsid journal (bad magic)", path.display()),
        ));
    }
    // Mid-file corruption (intact frames beyond the rot) is evidence of
    // bit rot, not a crash: preserve the severed suffix next to the log
    // for post-mortem before truncating it away. Torn tails are not
    // preserved — they are an expected crash artifact.
    if recovery.dropped_records > 0 {
        let suffix = &bytes[recovery.valid_len as usize..];
        let mut n = 0u32;
        let qpath = loop {
            let candidate = path.with_extension(if n == 0 {
                "corrupt".to_string()
            } else {
                format!("corrupt.{n}")
            });
            if !candidate.exists() {
                break candidate;
            }
            n += 1;
        };
        std::fs::write(&qpath, suffix)?;
        recovery.quarantined_tail = Some(qpath);
    }

    let file = OpenOptions::new().write(true).open(path)?;
    if recovery.truncated_bytes > 0 {
        file.set_len(recovery.valid_len)?;
        file.sync_data()?;
    }
    // position at the append point (set_len does not move the cursor)
    let mut file = file;
    use std::io::Seek;
    file.seek(io::SeekFrom::Start(recovery.valid_len))?;
    recovery.records.shrink_to_fit();
    Ok((
        WalWriter {
            file,
            unsynced: 0,
            fsync_every: WalWriter::FSYNC_EVERY,
        },
        recovery,
    ))
}

/// Read-only scan of the log at `path`: recover the intact record prefix
/// without touching the file (no tail truncation, no writer). A missing
/// file recovers zero records — callers merging spool segments treat
/// "worker died before its first sync" and "empty segment" the same way.
pub fn read_wal(path: &Path) -> io::Result<Recovery> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Recovery::default()),
        Err(e) => return Err(e),
    }
    Ok(scan(&bytes))
}

/// Atomically replace the log at `path` with a compacted one holding
/// exactly `records`, via the artifact store's crash-safe two-phase
/// write (hidden tmp sibling + fsync + rename + directory fsync).
/// Returns a writer positioned at the end of the new log.
pub fn rewrite_wal(path: &Path, records: &[Record]) -> io::Result<WalWriter> {
    minpsid_store::two_phase_write(path, &encode_records(records))?;
    let mut file = OpenOptions::new().write(true).open(path)?;
    use std::io::Seek;
    file.seek(io::SeekFrom::End(0))?;
    Ok(WalWriter {
        file,
        unsynced: 0,
        fsync_every: WalWriter::FSYNC_EVERY,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("minpsid-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample(n: u64) -> Record {
        Record::PerInstOutcome {
            input_fp: n,
            dense: n * 3,
            k: n * 7,
            outcome: (n % 6) as u8,
        }
    }

    #[test]
    fn append_reopen_recovers_everything() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("j.wal");
        let (mut w, rec) = open_wal(&path).unwrap();
        assert!(rec.records.is_empty());
        for i in 0..100 {
            w.append(&sample(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let (_, rec) = open_wal(&path).unwrap();
        assert_eq!(rec.records.len(), 100);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.records[41], sample(41));
    }

    #[test]
    fn torn_tail_is_truncated_to_last_valid_record() {
        let dir = tmpdir("torn");
        let path = dir.join("j.wal");
        let (mut w, _) = open_wal(&path).unwrap();
        for i in 0..10 {
            w.append(&sample(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // tear the file mid-frame
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (_, rec) = open_wal(&path).unwrap();
        assert_eq!(rec.records.len(), 9, "last frame was torn");
        assert!(rec.truncated_bytes > 0);
        // the truncation is persistent: reopening again is clean
        let (_, rec2) = open_wal(&path).unwrap();
        assert_eq!(rec2.records.len(), 9);
        assert_eq!(rec2.truncated_bytes, 0);
    }

    #[test]
    fn bit_flip_in_tail_frame_is_dropped() {
        let dir = tmpdir("flip");
        let path = dir.join("j.wal");
        let (mut w, _) = open_wal(&path).unwrap();
        for i in 0..10 {
            w.append(&sample(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40; // corrupt the last frame's payload
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = open_wal(&path).unwrap();
        assert_eq!(rec.records.len(), 9);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(*r, sample(i as u64), "prefix intact");
        }
    }

    /// Locate the byte offset of frame `index` (0-based) in a log image.
    fn frame_offset(bytes: &[u8], index: usize) -> usize {
        let mut pos = PREAMBLE_LEN as usize;
        for _ in 0..index {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 12 + len;
        }
        pos
    }

    #[test]
    fn mid_file_corruption_is_counted_and_suffix_quarantined() {
        let dir = tmpdir("midrot");
        let path = dir.join("j.wal");
        let (mut w, _) = open_wal(&path).unwrap();
        for i in 0..10 {
            w.append(&sample(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // rot one payload byte in frame 3: frames 0..=2 stay intact,
        // frames 4..=9 are intact but unreachable past the rot
        let mut bytes = std::fs::read(&path).unwrap();
        let off = frame_offset(&bytes, 3);
        bytes[off + 12] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();

        let (_, rec) = open_wal(&path).unwrap();
        assert_eq!(rec.records.len(), 3, "replay stops at the rot");
        assert!(rec.mid_file_corruption());
        assert_eq!(rec.dropped_records, 6, "intact suffix frames counted");
        let q = rec.quarantined_tail.expect("severed suffix preserved");
        assert!(q.exists());
        assert_eq!(
            std::fs::read(&q).unwrap().len() as u64,
            rec.truncated_bytes,
            "quarantine holds exactly the severed bytes"
        );
        // truncation is persistent and the next open is clean
        let (_, rec2) = open_wal(&path).unwrap();
        assert_eq!(rec2.records.len(), 3);
        assert_eq!(rec2.dropped_records, 0);
        assert!(rec2.quarantined_tail.is_none());
    }

    #[test]
    fn torn_tail_is_not_mid_file_corruption() {
        let dir = tmpdir("torn-vs-rot");
        let path = dir.join("j.wal");
        let (mut w, _) = open_wal(&path).unwrap();
        for i in 0..10 {
            w.append(&sample(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (_, rec) = open_wal(&path).unwrap();
        assert_eq!(rec.records.len(), 9);
        assert!(!rec.mid_file_corruption(), "torn tail has no intact suffix");
        assert!(rec.quarantined_tail.is_none());
    }

    #[test]
    fn encode_records_matches_rewrite_image() {
        let dir = tmpdir("encode");
        let path = dir.join("j.wal");
        let records: Vec<Record> = (0..7).map(sample).collect();
        drop(rewrite_wal(&path, &records).unwrap());
        assert_eq!(std::fs::read(&path).unwrap(), encode_records(&records));
        let rec = scan_bytes(&encode_records(&records));
        assert_eq!(rec.records, records);
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn garbage_file_is_rejected_not_clobbered() {
        let dir = tmpdir("garbage");
        let path = dir.join("j.wal");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(open_wal(&path).is_err());
        // the file was not overwritten
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"definitely not a journal".to_vec()
        );
    }

    #[test]
    fn read_wal_scans_without_truncating() {
        let dir = tmpdir("readonly");
        let path = dir.join("j.wal");
        let (mut w, _) = open_wal(&path).unwrap();
        for i in 0..8 {
            w.append(&sample(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // tear the tail; read_wal must report it but leave the file alone
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let rec = read_wal(&path).unwrap();
        assert_eq!(rec.records.len(), 7);
        assert!(rec.truncated_bytes > 0);
        assert_eq!(
            std::fs::read(&path).unwrap().len(),
            full.len() - 3,
            "file untouched"
        );
        // a missing segment is an empty recovery, not an error
        let rec = read_wal(&dir.join("absent.wal")).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn rewrite_compacts_and_survives_reopen() {
        let dir = tmpdir("rewrite");
        let path = dir.join("j.wal");
        let (mut w, _) = open_wal(&path).unwrap();
        for i in 0..50 {
            w.append(&sample(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let compacted: Vec<Record> = (0..5).map(sample).collect();
        let w = rewrite_wal(&path, &compacted).unwrap();
        drop(w);
        let (_, rec) = open_wal(&path).unwrap();
        assert_eq!(rec.records, compacted);
    }
}
