//! Property tests for the journal record codec: every record round-trips
//! bit-identically, and no prefix of a valid encoding decodes — the
//! invariants torn-tail recovery leans on.

use minpsid_journal::record::Record;
use minpsid_journal::wal::fnv64;
use proptest::prelude::*;

fn arb_record(seed: [u64; 4], kind: u8, bits: Vec<bool>, list: Vec<u64>) -> Record {
    match kind % 7 {
        0 => Record::Header {
            module_fp: seed[0],
            config_fp: seed[1],
        },
        1 => Record::GoldenDigest {
            input_fp: seed[0],
            output_fp: seed[1],
            steps: seed[2],
        },
        2 => Record::PerInstOutcome {
            input_fp: seed[0],
            dense: seed[1],
            k: seed[2],
            outcome: (seed[3] % 256) as u8,
        },
        3 => Record::ProgramOutcome {
            input_fp: seed[0],
            index: seed[1],
            outcome: (seed[3] % 256) as u8,
        },
        4 => Record::EvalProfile {
            input_fp: seed[0],
            cfg_list: list,
        },
        5 => Record::SearchAccepted {
            index: seed[0],
            input_fp: seed[1],
        },
        _ => Record::Selection { bits },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn records_round_trip(
        seed in proptest::collection::vec(0u64..u64::MAX, 4),
        kind in 0u8..7,
        bits in proptest::collection::vec(proptest::prelude::any::<bool>(), 0..64),
        list in proptest::collection::vec(0u64..u64::MAX, 0..32),
    ) {
        let rec = arb_record([seed[0], seed[1], seed[2], seed[3]], kind, bits, list);
        let bytes = rec.to_bytes();
        let back = Record::decode(&bytes)
            .map_err(|e| TestCaseError::fail(format!("{e} for {bytes:?}")))?;
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn no_strict_prefix_decodes(
        seed in proptest::collection::vec(0u64..u64::MAX, 4),
        kind in 0u8..7,
        bits in proptest::collection::vec(proptest::prelude::any::<bool>(), 0..32),
        list in proptest::collection::vec(0u64..u64::MAX, 0..16),
    ) {
        let rec = arb_record([seed[0], seed[1], seed[2], seed[3]], kind, bits, list);
        let bytes = rec.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(
                Record::decode(&bytes[..cut]).is_err(),
                "prefix of len {} decoded", cut
            );
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum(
        seed in proptest::collection::vec(0u64..u64::MAX, 4),
        kind in 0u8..7,
        byte_sel in 0u64..u64::MAX,
        bit in 0u8..8,
    ) {
        // the WAL's corruption detector: any one-bit payload change moves
        // the FNV-64 checksum (FNV is bijective per input byte)
        let rec = arb_record([seed[0], seed[1], seed[2], seed[3]], kind, vec![true], vec![7]);
        let mut bytes = rec.to_bytes();
        let sum = fnv64(&bytes);
        let i = (byte_sel % bytes.len() as u64) as usize;
        bytes[i] ^= 1 << bit;
        prop_assert_ne!(fnv64(&bytes), sum);
    }
}
