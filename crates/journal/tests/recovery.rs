//! Recovery invariants of the WAL, exercised through the public
//! [`CampaignJournal`] API: a log with a torn or bit-flipped tail
//! reopens at the last valid record, keeps its intact prefix
//! bit-identically, and persists the truncation.

use minpsid_journal::{CampaignJournal, JournalError};
use std::path::{Path, PathBuf};

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("minpsid-journal-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("campaign.wal")
}

/// Write a journal with `n` per-inst outcomes and return the wal bytes.
fn seed_journal(dir: &Path, n: u64) -> Vec<u8> {
    let j = CampaignJournal::open(dir, 0xAB, 0xCD).unwrap();
    for i in 0..n {
        j.record_per_inst(1, i, 0, (i % 6) as u8);
    }
    j.sync().unwrap();
    drop(j);
    std::fs::read(wal_path(dir)).unwrap()
}

#[test]
fn truncated_tail_reopens_at_last_valid_record() {
    let dir = tmpdir("trunc");
    let full = seed_journal(&dir, 50);

    // chop off part of the last frame (simulates a crash mid-write)
    std::fs::write(wal_path(&dir), &full[..full.len() - 7]).unwrap();
    let j = CampaignJournal::open(&dir, 0xAB, 0xCD).unwrap();
    let (recovered, truncated) = j.recovery_stats();
    assert_eq!(recovered, 49, "only the torn final record is lost");
    assert!(truncated > 0);
    for i in 0..49 {
        assert_eq!(j.per_inst_outcome(1, i, 0), Some((i % 6) as u8));
    }
    assert_eq!(j.per_inst_outcome(1, 49, 0), None);
    drop(j);

    // the truncation is durable: a second reopen sees a clean log
    let j = CampaignJournal::open(&dir, 0xAB, 0xCD).unwrap();
    assert_eq!(j.recovery_stats(), (49, 0));
}

#[test]
fn bit_flipped_tail_record_is_dropped_and_prefix_kept() {
    let dir = tmpdir("flip");
    let mut bytes = seed_journal(&dir, 30);

    // flip one bit inside the final frame's payload
    let n = bytes.len();
    bytes[n - 2] ^= 0x10;
    std::fs::write(wal_path(&dir), &bytes).unwrap();

    let j = CampaignJournal::open(&dir, 0xAB, 0xCD).unwrap();
    let (recovered, truncated) = j.recovery_stats();
    assert_eq!(recovered, 29);
    assert!(truncated > 0, "corrupt frame counts as truncated tail");
    for i in 0..29 {
        assert_eq!(j.per_inst_outcome(1, i, 0), Some((i % 6) as u8));
    }
}

#[test]
fn mid_log_corruption_keeps_only_the_prefix() {
    let dir = tmpdir("mid");
    let mut bytes = seed_journal(&dir, 40);

    // corrupt a byte roughly in the middle: everything after it is
    // untrusted (the scan cannot re-synchronize on unframed bytes)
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(wal_path(&dir), &bytes).unwrap();

    let j = CampaignJournal::open(&dir, 0xAB, 0xCD).unwrap();
    let (recovered, truncated) = j.recovery_stats();
    assert!(recovered < 40);
    assert!(truncated > 0);
    // whatever survived is the exact prefix
    for i in 0..recovered {
        assert_eq!(j.per_inst_outcome(1, i, 0), Some((i % 6) as u8));
    }
}

#[test]
fn resume_after_crash_appends_cleanly() {
    let dir = tmpdir("resume-append");
    let full = seed_journal(&dir, 20);
    std::fs::write(wal_path(&dir), &full[..full.len() - 3]).unwrap();

    // reopen (drops record 19), then write new work and reopen again:
    // the journal must hold the intact prefix plus the new records
    {
        let j = CampaignJournal::open(&dir, 0xAB, 0xCD).unwrap();
        j.record_per_inst(1, 19, 0, 5);
        j.record_per_inst(2, 0, 0, 3);
        j.sync().unwrap();
    }
    let j = CampaignJournal::open(&dir, 0xAB, 0xCD).unwrap();
    assert_eq!(j.recovery_stats().1, 0, "no torn tail after clean close");
    assert_eq!(j.per_inst_outcome(1, 18, 0), Some(0));
    assert_eq!(j.per_inst_outcome(1, 19, 0), Some(5));
    assert_eq!(j.per_inst_outcome(2, 0, 0), Some(3));
}

#[test]
fn wrong_run_is_refused_with_a_mismatch_error() {
    let dir = tmpdir("mismatch");
    seed_journal(&dir, 3);
    match CampaignJournal::open(&dir, 0xAB, 0xFF) {
        Err(JournalError::Mismatch { expected, found }) => {
            assert_eq!(expected, (0xAB, 0xFF));
            assert_eq!(found, (0xAB, 0xCD));
        }
        Err(other) => panic!("expected mismatch, got {other}"),
        Ok(_) => panic!("expected mismatch, journal opened"),
    }
}
