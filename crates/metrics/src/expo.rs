//! Prometheus text-format exposition (format version 0.0.4).
//!
//! Renders a [`Registry`](crate::Registry) snapshot as the plain-text
//! format scrapers expect: `# HELP` / `# TYPE` headers, one sample line
//! per series, histogram series expanded into cumulative `_bucket` lines
//! (ending in `le="+Inf"`) plus `_sum` and `_count`. Families and series
//! arrive pre-sorted from the registry, so two renders of the same state
//! are byte-identical.

use crate::registry::{FamilySnapshot, SampleValue};
use std::fmt::Write as _;

/// Sanitize a metric or label name to `[a-zA-Z_:][a-zA-Z0-9_:]*`
/// (colons allowed in metric names only by convention; we map every
/// invalid byte to `_`, and prefix `_` if the first byte is a digit).
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a HELP text: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: backslash, double-quote, newline.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Format an `f64` the way Prometheus expects (`+Inf`, `-Inf`, `NaN`).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

/// Render a snapshot as Prometheus text format.
pub fn render_prometheus(families: &[FamilySnapshot]) -> String {
    let mut out = String::with_capacity(1024);
    for fam in families {
        let name = sanitize_name(&fam.name);
        if !fam.help.is_empty() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&fam.help));
        }
        let _ = writeln!(out, "# TYPE {name} {}", fam.kind.as_str());
        for s in &fam.series {
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&name);
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&name);
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {}", fmt_f64(*v));
                }
                SampleValue::Histogram {
                    buckets,
                    sum,
                    count,
                } => {
                    for (bound, cum) in buckets {
                        let _ = write!(out, "{name}_bucket");
                        let le = fmt_f64(*bound);
                        write_labels(&mut out, &s.labels, Some(("le", &le)));
                        let _ = writeln!(out, " {cum}");
                    }
                    let _ = write!(out, "{name}_sum");
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {}", fmt_f64(*sum));
                    let _ = write!(out, "{name}_count");
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {count}");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn counters_and_gauges_render_with_help_and_type() {
        let r = Registry::new();
        r.counter("inj_total", "Total injections.", &[("kind", "program")])
            .add(42);
        r.gauge("completeness", "Campaign completeness score.", &[])
            .set(0.97);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# HELP completeness Campaign completeness score.\n"));
        assert!(text.contains("# TYPE completeness gauge\n"));
        assert!(text.contains("completeness 0.97\n"));
        assert!(text.contains("# TYPE inj_total counter\n"));
        assert!(text.contains("inj_total{kind=\"program\"} 42\n"));
    }

    #[test]
    fn bad_names_are_sanitized_and_label_values_escaped() {
        let r = Registry::new();
        r.counter(
            "9bad.metric-name",
            "line1\nline2 with \\slash",
            &[("re-source", "a\"b\\c\nd")],
        )
        .inc();
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE _9bad_metric_name counter\n"));
        assert!(text.contains("# HELP _9bad_metric_name line1\\nline2 with \\\\slash\n"));
        assert!(text.contains("_9bad_metric_name{re_source=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn families_and_series_render_in_stable_order() {
        let r = Registry::new();
        r.counter("zz", "", &[]).inc();
        r.counter("aa", "", &[("w", "beta")]).inc();
        r.counter("aa", "", &[("w", "alpha")]).inc();
        let a = render_prometheus(&r.snapshot());
        let b = render_prometheus(&r.snapshot());
        assert_eq!(a, b, "same state renders identical bytes");
        let zz = a.find("# TYPE zz").unwrap();
        let aa = a.find("# TYPE aa").unwrap();
        assert!(aa < zz, "families sorted by name");
        assert!(a.find("w=\"alpha\"").unwrap() < a.find("w=\"beta\"").unwrap());
    }

    #[test]
    fn histograms_expose_cumulative_buckets_ending_in_inf() {
        let r = Registry::new();
        let h = r.histogram(
            "restore_us",
            "Checkpoint restore cost.",
            &[("wl", "hpccg")],
            &[10.0, 100.0],
        );
        for v in [5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE restore_us histogram\n"));
        assert!(text.contains("restore_us_bucket{wl=\"hpccg\",le=\"10\"} 1\n"));
        assert!(text.contains("restore_us_bucket{wl=\"hpccg\",le=\"100\"} 2\n"));
        assert!(text.contains("restore_us_bucket{wl=\"hpccg\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("restore_us_sum{wl=\"hpccg\"} 555\n"));
        assert!(text.contains("restore_us_count{wl=\"hpccg\"} 3\n"));
        // +Inf is the last bucket line
        let inf = text.find("le=\"+Inf\"").unwrap();
        let last_bucket = text.rfind("restore_us_bucket").unwrap();
        assert!(inf > last_bucket);
    }
}
