//! A dependency-free HTTP/1.1 status server over `std::net::TcpListener`.
//!
//! Serves exactly two read-only endpoints:
//!
//! * `GET /metrics` — Prometheus text format from the [`Registry`]
//! * `GET /status`  — the [`StatusBoard`] JSON document
//!
//! Everything else is 404. Each connection is handled on its own short-
//! lived thread so one stalled scraper cannot wedge the rest, but the
//! server is hardened against misbehaving clients: at most
//! [`MAX_CONNS`] connections are served concurrently (excess gets an
//! immediate 503), a request head larger than [`MAX_HEAD_BYTES`] gets
//! 431, and reads/writes carry short timeouts. Every response carries
//! `Content-Length` and `Connection: close`, and `Drop` shuts the accept
//! loop down by flagging stop and poking the listener with a loopback
//! connect.

use crate::expo::render_prometheus;
use crate::registry::Registry;
use crate::status::StatusBoard;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard cap on the request head (request line + headers). These
/// endpoints carry no request semantics beyond the path, so anything
/// bigger is a client bug or abuse.
const MAX_HEAD_BYTES: usize = 8192;

/// Hard cap on concurrently served connections. Scrapers poll at
/// seconds-scale; beyond this the server answers 503 immediately instead
/// of queueing unbounded work.
const MAX_CONNS: usize = 8;

/// Bound on how many request bytes a rejected connection drains before
/// the 431 goes out (so the response isn't lost to a reset on close).
const MAX_DRAIN_BYTES: usize = 64 * 1024;

/// Handle to the running server; dropping it stops the accept loop.
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl StatusServer {
    /// Bind `addr` (e.g. `127.0.0.1:9464`, port 0 for ephemeral) and
    /// start serving in a background thread.
    pub fn bind(
        addr: &str,
        registry: Arc<Registry>,
        board: Arc<StatusBoard>,
    ) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("minpsid-status".into())
            .spawn(move || accept_loop(listener, registry, board, stop2))?;
        Ok(StatusServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() so the thread sees the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    board: Arc<StatusBoard>,
    stop: Arc<AtomicBool>,
) {
    let active = Arc::new(AtomicUsize::new(0));
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Reserve a slot before spawning; over the cap the connection is
        // answered 503 right here, so a scraper storm cannot balloon the
        // thread count or queue unbounded work.
        if active.fetch_add(1, Ordering::SeqCst) >= MAX_CONNS {
            active.fetch_sub(1, Ordering::SeqCst);
            let _ = respond(
                stream,
                "503 Service Unavailable",
                "text/plain; charset=utf-8",
                "too many concurrent connections\n",
            );
            continue;
        }
        let reg2 = registry.clone();
        let board2 = board.clone();
        let active2 = active.clone();
        let spawned = std::thread::Builder::new()
            .name("minpsid-status-conn".into())
            .spawn(move || {
                let _ = handle_conn(stream, &reg2, &board2);
                active2.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            // the handler (and its slot release) never ran
            active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn handle_conn(
    mut stream: TcpStream,
    registry: &Registry,
    board: &StatusBoard,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    // Read until the end of the request head (headers are ignored;
    // these endpoints have no request semantics beyond the path).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let mut too_large = false;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
                if buf.len() > MAX_HEAD_BYTES {
                    too_large = true;
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if too_large {
        // Drain what the client already sent (bounded, until EOF or the
        // read timeout) so the rejection isn't lost to a reset when the
        // socket closes with unread bytes pending.
        let mut drained = buf.len();
        while drained < MAX_DRAIN_BYTES {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => drained += n,
            }
        }
        return respond(
            stream,
            "431 Request Header Fields Too Large",
            "text/plain; charset=utf-8",
            "request head too large\n",
        );
    }

    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, ctype, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(&registry.snapshot()),
            ),
            "/status" => ("200 OK", "application/json", board.render_json()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found (try /metrics or /status)\n".to_string(),
            ),
        }
    };

    respond(stream, status, ctype, &body)
}

/// Write one complete `Connection: close` response.
fn respond(mut stream: TcpStream, status: &str, ctype: &str, body: &str) -> std::io::Result<()> {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_status_then_shuts_down() {
        let reg = Arc::new(Registry::new());
        reg.counter("up_total", "liveness", &[]).inc();
        let board = Arc::new(StatusBoard::new());
        board.set_tool("test-tool");
        let srv = StatusServer::bind("127.0.0.1:0", reg, board).unwrap();
        let addr = srv.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(head.contains("Connection: close"));
        assert!(body.contains("up_total 1\n"));

        let (head, body) = get(addr, "/status");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("application/json"));
        assert!(body.contains("\"tool\":\"test-tool\""));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        drop(srv); // must join cleanly, not hang
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may briefly accept on a dying socket; a second
                // connect after the listener is gone must fail.
                std::thread::sleep(Duration::from_millis(50));
                TcpStream::connect(addr).is_err()
            }
        );
    }

    #[test]
    fn oversize_request_head_is_rejected_with_431() {
        let reg = Arc::new(Registry::new());
        let board = Arc::new(StatusBoard::new());
        let srv = StatusServer::bind("127.0.0.1:0", reg, board).unwrap();
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        // a request line that never terminates its head, past the cap
        s.write_all(b"GET /metrics HTTP/1.1\r\nX-Junk: ").unwrap();
        s.write_all(&vec![b'a'; MAX_HEAD_BYTES + 1024]).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 431"), "got: {resp}");
    }

    #[test]
    fn concurrent_connections_are_bounded_with_503() {
        let reg = Arc::new(Registry::new());
        let board = Arc::new(StatusBoard::new());
        let srv = StatusServer::bind("127.0.0.1:0", reg, board).unwrap();
        let addr = srv.local_addr();
        // saturate every slot with idle connections (their handlers park
        // in read() until the 500ms timeout)
        let idle: Vec<TcpStream> = (0..MAX_CONNS)
            .map(|_| TcpStream::connect(addr).unwrap())
            .collect();
        std::thread::sleep(Duration::from_millis(150));
        // Send nothing: the server answers 503 without reading the
        // request, so an unread request body can't turn the close into a
        // reset that races the response away.
        let mut s = TcpStream::connect(addr).unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 503"), "got: {resp}");
        drop(idle);
        // slots free up once the idle handlers time out; service resumes
        std::thread::sleep(Duration::from_millis(700));
        let (head, _) = get(addr, "/status");
        assert!(head.starts_with("HTTP/1.1 200"), "got: {head}");
    }

    #[test]
    fn rejects_non_get() {
        let reg = Arc::new(Registry::new());
        let board = Arc::new(StatusBoard::new());
        let srv = StatusServer::bind("127.0.0.1:0", reg, board).unwrap();
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 405"));
    }
}
