//! # minpsid-metrics — live observability primitives
//!
//! Post-mortem tracing (`minpsid-trace`) answers "what happened"; a fleet
//! running continuous SDC screening ("Silent Data Corruptions at Scale",
//! Dixit et al.) also needs "what is happening *now*". This crate is that
//! layer, kept dependency-free so it can sit below every other crate in
//! the workspace:
//!
//! * **Registry** ([`registry`]): typed metric families — monotone atomic
//!   [`Counter`]s, last-write [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s — generalizing the ad-hoc lock-free campaign counters
//!   that previously lived inside the trace sink. Handles are `Arc`s;
//!   updates are relaxed atomics; [`Registry::snapshot`] is the only
//!   place a lock is taken.
//! * **Exposition** ([`expo`]): Prometheus text format (v0.0.4) with
//!   proper name sanitization, HELP/label escaping, byte-stable ordering,
//!   and cumulative histogram buckets ending in `+Inf`.
//! * **Status board** ([`status`]): a typed mirror of campaign progress
//!   (per-workload done/total/ETA, outcome tallies, quarantine list,
//!   retry/early-stop/truncation accounting, completeness) rendered as a
//!   stable JSON document for the `/status` endpoint. The board knows
//!   nothing about trace events — `minpsid-trace` installs a bridge
//!   observer that translates its event stream into board updates.
//! * **HTTP server** ([`http`]): a hand-rolled HTTP/1.1 responder over
//!   `std::net::TcpListener` (same no-deps spirit as the hand-rolled JSON
//!   codec) serving `GET /metrics` and `GET /status`.
//!
//! Nothing here feeds back into campaign execution: metrics are
//! observe-only, so reports and WAL bytes are identical with the whole
//! layer on or off.

pub mod expo;
pub mod http;
pub mod registry;
pub mod status;

pub use expo::render_prometheus;
pub use http::StatusServer;
pub use registry::{Counter, Gauge, Histogram, MetricKind, Registry, SampleValue, SeriesSnapshot};
pub use status::{CampaignView, QuarantineEntry, StatusBoard};
