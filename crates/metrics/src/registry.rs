//! The typed metrics registry.
//!
//! A metric *family* is a (name, help, kind); a *series* is one labelled
//! instance of a family. Handles ([`Counter`], [`Gauge`], [`Histogram`])
//! are cheap `Arc`s whose updates are relaxed atomics — hot paths never
//! touch the registry lock. [`Registry::snapshot`] takes the lock once,
//! reads every series, and returns a stable, ordered copy for the
//! exposition layer.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotone counter. `add` only; snapshots of a counter never decrease.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64` (stored as bits so the update
/// is one atomic store).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: upper bounds are set at registration and
/// never change. `observe` is two relaxed adds plus a CAS loop for the
/// `f64` sum.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing; an implicit `+Inf`
    /// bucket follows the last. `buckets[i]` counts observations with
    /// `v <= bounds[i]` (non-cumulative here; exposition cumulates).
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative `(upper_bound, count_le)` pairs ending with `+Inf`.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// What kind of family a name belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

type Labels = Vec<(String, String)>;

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    kind: MetricKind,
    /// Label-set → series, ordered so snapshots are byte-stable.
    series: BTreeMap<Labels, Series>,
}

/// One series' sampled value inside a [`Registry`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    Counter(u64),
    Gauge(f64),
    Histogram {
        /// Cumulative buckets, last bound is `+Inf`.
        buckets: Vec<(f64, u64)>,
        sum: f64,
        count: u64,
    },
}

/// One labelled series inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    pub labels: Labels,
    pub value: SampleValue,
}

/// One family inside a snapshot, series in stable label order.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    pub name: String,
    pub help: String,
    pub kind: MetricKind,
    pub series: Vec<SeriesSnapshot>,
}

/// The registry: families keyed by name, each holding labelled series.
///
/// Registering the same (name, labels) twice returns the same underlying
/// handle, so callers can re-resolve instead of caching. Registering a
/// name with a different kind panics — that is a programming error, not
/// a runtime condition.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Family>> {
        self.families.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn family<'a>(
        fams: &'a mut BTreeMap<String, Family>,
        name: &str,
        help: &str,
        kind: MetricKind,
    ) -> &'a mut Family {
        let f = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            f.kind == kind,
            "metric `{name}` re-registered as {:?} (was {:?})",
            kind,
            f.kind
        );
        f
    }

    fn own_labels(labels: &[(&str, &str)]) -> Labels {
        let mut v: Labels = labels
            .iter()
            .map(|(k, val)| (k.to_string(), val.to_string()))
            .collect();
        v.sort();
        v
    }

    /// Resolve (or create) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut fams = self.lock();
        let f = Self::family(&mut fams, name, help, MetricKind::Counter);
        match f
            .series
            .entry(Self::own_labels(labels))
            .or_insert_with(|| Series::Counter(Arc::new(Counter::default())))
        {
            Series::Counter(c) => c.clone(),
            _ => unreachable!("kind checked by family()"),
        }
    }

    /// Resolve (or create) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut fams = self.lock();
        let f = Self::family(&mut fams, name, help, MetricKind::Gauge);
        match f
            .series
            .entry(Self::own_labels(labels))
            .or_insert_with(|| Series::Gauge(Arc::new(Gauge::default())))
        {
            Series::Gauge(g) => g.clone(),
            _ => unreachable!("kind checked by family()"),
        }
    }

    /// Resolve (or create) a histogram series with the given bucket upper
    /// bounds (strictly increasing; `+Inf` is implicit).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let mut fams = self.lock();
        let f = Self::family(&mut fams, name, help, MetricKind::Histogram);
        match f
            .series
            .entry(Self::own_labels(labels))
            .or_insert_with(|| Series::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Series::Histogram(h) => h.clone(),
            _ => unreachable!("kind checked by family()"),
        }
    }

    /// Read every series once, in stable (name, labels) order.
    pub fn snapshot(&self) -> Vec<FamilySnapshot> {
        let fams = self.lock();
        fams.iter()
            .map(|(name, f)| FamilySnapshot {
                name: name.clone(),
                help: f.help.clone(),
                kind: f.kind,
                series: f
                    .series
                    .iter()
                    .map(|(labels, s)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: match s {
                            Series::Counter(c) => SampleValue::Counter(c.get()),
                            Series::Gauge(g) => SampleValue::Gauge(g.get()),
                            Series::Histogram(h) => SampleValue::Histogram {
                                buckets: h.cumulative(),
                                sum: h.sum(),
                                count: h.count(),
                            },
                        },
                    })
                    .collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_series_are_shared_and_monotone() {
        let r = Registry::new();
        let a = r.counter("inj_total", "injections", &[("kind", "program")]);
        let b = r.counter("inj_total", "injections", &[("kind", "program")]);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5, "same (name, labels) resolves one series");
        let other = r.counter("inj_total", "injections", &[("kind", "per_inst")]);
        other.add(7);
        assert_eq!(a.get(), 5);
        assert_eq!(other.get(), 7);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::new();
        let a = r.counter("x", "", &[("a", "1"), ("b", "2")]);
        let b = r.counter("x", "", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn gauge_holds_last_write() {
        let r = Registry::new();
        let g = r.gauge("depth", "", &[]);
        g.set(3.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn histogram_cumulates_and_ends_at_inf() {
        let r = Registry::new();
        let h = r.histogram("lat", "", &[], &[1.0, 10.0, 100.0]);
        for v in [0.5, 0.7, 5.0, 50.0, 5000.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 5056.2).abs() < 1e-9);
        let c = h.cumulative();
        assert_eq!(c.len(), 4);
        assert_eq!(c[0], (1.0, 2));
        assert_eq!(c[1], (10.0, 3));
        assert_eq!(c[2], (100.0, 4));
        assert_eq!(c[3].1, 5);
        assert!(c[3].0.is_infinite());
    }

    #[test]
    fn boundary_observation_lands_in_its_bucket() {
        let r = Registry::new();
        let h = r.histogram("b", "", &[], &[1.0]);
        h.observe(1.0); // le="1" is inclusive, Prometheus semantics
        assert_eq!(h.cumulative()[0], (1.0, 1));
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        let _c = r.counter("dual", "", &[]);
        let _g = r.gauge("dual", "", &[]);
    }

    #[test]
    fn snapshot_is_ordered_and_complete() {
        let r = Registry::new();
        r.counter("z_last", "", &[]).inc();
        r.counter("a_first", "", &[("w", "b")]).inc();
        r.counter("a_first", "", &[("w", "a")]).add(2);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "a_first");
        assert_eq!(snap[1].name, "z_last");
        let labels: Vec<&str> = snap[0]
            .series
            .iter()
            .map(|s| s.labels[0].1.as_str())
            .collect();
        assert_eq!(labels, ["a", "b"], "series ordered by label values");
    }
}
