//! The `/status` board: a typed, lock-protected mirror of live campaign
//! state, rendered as one stable JSON document.
//!
//! The board is deliberately dumb: setters overwrite fields, counters
//! accumulate, and `render_json` serializes whatever is there with a
//! hand-rolled writer (insertion-ordered keys, no dependencies). The
//! trace → board translation lives in `minpsid-trace`'s bridge observer;
//! this crate never sees a trace event.

use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Live view of one campaign (one workload being screened).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignView {
    pub workload: String,
    pub kind: String,
    pub done: u64,
    pub total: u64,
    pub sdc: u64,
    pub benign: u64,
    pub crash: u64,
    pub timeout: u64,
    /// Wall-clock elapsed in the campaign so far, microseconds.
    pub elapsed_us: u64,
    /// Estimated remaining microseconds (linear extrapolation from the
    /// engine's plan); `None` until at least one injection completes.
    pub eta_us: Option<u64>,
    /// Completeness score in [0, 1] once the scheduler reports one.
    pub completeness: Option<f64>,
    pub finished: bool,
}

/// One quarantined injection site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuarantineEntry {
    pub workload: String,
    pub site: String,
    pub failures: u64,
}

#[derive(Debug, Default)]
struct BoardState {
    tool: String,
    campaigns: Vec<CampaignView>,
    quarantine: Vec<QuarantineEntry>,
    retries: u64,
    early_stops: u64,
    deadline_truncations: u64,
    fleet_workers: u64,
    fleet_restarts: u64,
    fleet_poisoned_shards: u64,
}

/// Cap on the quarantine list kept in memory: `/status` is a live
/// snapshot, not an archive (the WAL has the full record).
const QUARANTINE_CAP: usize = 64;

/// The shared status board. One per process; the HTTP server holds an
/// `Arc` and renders on demand.
#[derive(Debug, Default)]
pub struct StatusBoard {
    state: Mutex<BoardState>,
}

impl StatusBoard {
    pub fn new() -> StatusBoard {
        StatusBoard::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BoardState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record the tool banner (name/version) shown in the document head.
    pub fn set_tool(&self, tool: &str) {
        self.lock().tool = tool.to_string();
    }

    /// Upsert a campaign view keyed by (workload, kind).
    pub fn upsert_campaign(&self, view: CampaignView) {
        let mut st = self.lock();
        match st
            .campaigns
            .iter_mut()
            .find(|c| c.workload == view.workload && c.kind == view.kind)
        {
            Some(slot) => *slot = view,
            None => st.campaigns.push(view),
        }
    }

    /// Append a quarantine entry (bounded; oldest dropped past the cap).
    pub fn push_quarantine(&self, entry: QuarantineEntry) {
        let mut st = self.lock();
        st.quarantine.push(entry);
        if st.quarantine.len() > QUARANTINE_CAP {
            let excess = st.quarantine.len() - QUARANTINE_CAP;
            st.quarantine.drain(..excess);
        }
    }

    pub fn add_retry(&self) {
        self.lock().retries += 1;
    }

    pub fn add_early_stop(&self) {
        self.lock().early_stops += 1;
    }

    pub fn add_deadline_truncation(&self) {
        self.lock().deadline_truncations += 1;
    }

    /// Set the current number of live fleet worker processes.
    pub fn set_fleet_workers(&self, n: u64) {
        self.lock().fleet_workers = n;
    }

    /// Count one fleet worker restart (death + respawn).
    pub fn add_fleet_restart(&self) {
        self.lock().fleet_restarts += 1;
    }

    /// Count one shard declared poisoned by the fleet supervisor.
    pub fn add_fleet_poisoned_shard(&self) {
        self.lock().fleet_poisoned_shards += 1;
    }

    /// Render the board as a stable JSON document.
    ///
    /// `now_unix_ms` is injected so tests can pin it; the HTTP server
    /// passes the current wall clock.
    pub fn render_json_at(&self, now_unix_ms: u64) -> String {
        let st = self.lock();
        let mut o = String::with_capacity(512);
        o.push('{');
        push_str_field(&mut o, "tool", &st.tool, true);
        push_u64_field(&mut o, "now_unix_ms", now_unix_ms, false);
        o.push_str(",\"campaigns\":[");
        for (i, c) in st.campaigns.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push('{');
            push_str_field(&mut o, "workload", &c.workload, true);
            push_str_field(&mut o, "kind", &c.kind, false);
            push_u64_field(&mut o, "done", c.done, false);
            push_u64_field(&mut o, "total", c.total, false);
            push_u64_field(&mut o, "sdc", c.sdc, false);
            push_u64_field(&mut o, "benign", c.benign, false);
            push_u64_field(&mut o, "crash", c.crash, false);
            push_u64_field(&mut o, "timeout", c.timeout, false);
            push_u64_field(&mut o, "elapsed_us", c.elapsed_us, false);
            match c.eta_us {
                Some(eta) => push_u64_field(&mut o, "eta_us", eta, false),
                None => o.push_str(",\"eta_us\":null"),
            }
            match c.completeness {
                Some(s) => push_f64_field(&mut o, "completeness", s),
                None => o.push_str(",\"completeness\":null"),
            }
            push_bool_field(&mut o, "finished", c.finished);
            o.push('}');
        }
        o.push_str("],\"quarantine\":[");
        for (i, q) in st.quarantine.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push('{');
            push_str_field(&mut o, "workload", &q.workload, true);
            push_str_field(&mut o, "site", &q.site, false);
            push_u64_field(&mut o, "failures", q.failures, false);
            o.push('}');
        }
        o.push_str("],\"sched\":{");
        push_u64_field(&mut o, "retries", st.retries, true);
        push_u64_field(&mut o, "early_stops", st.early_stops, false);
        push_u64_field(
            &mut o,
            "deadline_truncations",
            st.deadline_truncations,
            false,
        );
        o.push_str("},\"fleet\":{");
        push_u64_field(&mut o, "workers", st.fleet_workers, true);
        push_u64_field(&mut o, "restarts", st.fleet_restarts, false);
        push_u64_field(&mut o, "poisoned_shards", st.fleet_poisoned_shards, false);
        o.push_str("}}");
        o
    }

    /// Render with the current wall clock.
    pub fn render_json(&self) -> String {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        self.render_json_at(now)
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_str_field(o: &mut String, key: &str, v: &str, first: bool) {
    if !first {
        o.push(',');
    }
    o.push('"');
    o.push_str(key);
    o.push_str("\":\"");
    o.push_str(&escape_json(v));
    o.push('"');
}

fn push_u64_field(o: &mut String, key: &str, v: u64, first: bool) {
    if !first {
        o.push(',');
    }
    o.push('"');
    o.push_str(key);
    o.push_str("\":");
    o.push_str(&v.to_string());
}

fn push_f64_field(o: &mut String, key: &str, v: f64) {
    o.push(',');
    o.push('"');
    o.push_str(key);
    o.push_str("\":");
    if v.is_finite() {
        o.push_str(&format!("{v}"));
    } else {
        o.push_str("null");
    }
}

fn push_bool_field(o: &mut String, key: &str, v: bool) {
    o.push(',');
    o.push('"');
    o.push_str(key);
    o.push_str("\":");
    o.push_str(if v { "true" } else { "false" });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_board_renders_minimal_document() {
        let b = StatusBoard::new();
        assert_eq!(
            b.render_json_at(0),
            "{\"tool\":\"\",\"now_unix_ms\":0,\"campaigns\":[],\"quarantine\":[],\
             \"sched\":{\"retries\":0,\"early_stops\":0,\"deadline_truncations\":0},\
             \"fleet\":{\"workers\":0,\"restarts\":0,\"poisoned_shards\":0}}"
        );
    }

    #[test]
    fn golden_document_for_small_campaign() {
        let b = StatusBoard::new();
        b.set_tool("minpsid 0.1.0");
        b.upsert_campaign(CampaignView {
            workload: "hpccg".into(),
            kind: "per_inst".into(),
            done: 40,
            total: 100,
            sdc: 3,
            benign: 30,
            crash: 5,
            timeout: 2,
            elapsed_us: 8_000,
            eta_us: Some(12_000),
            completeness: Some(0.4),
            finished: false,
        });
        b.push_quarantine(QuarantineEntry {
            workload: "hpccg".into(),
            site: "inst#17".into(),
            failures: 3,
        });
        b.add_retry();
        b.add_retry();
        b.add_early_stop();
        b.set_fleet_workers(4);
        b.add_fleet_restart();
        b.add_fleet_poisoned_shard();
        let doc = b.render_json_at(1_700_000_000_000);
        assert_eq!(
            doc,
            "{\"tool\":\"minpsid 0.1.0\",\"now_unix_ms\":1700000000000,\
             \"campaigns\":[{\"workload\":\"hpccg\",\"kind\":\"per_inst\",\
             \"done\":40,\"total\":100,\"sdc\":3,\"benign\":30,\"crash\":5,\
             \"timeout\":2,\"elapsed_us\":8000,\"eta_us\":12000,\
             \"completeness\":0.4,\"finished\":false}],\
             \"quarantine\":[{\"workload\":\"hpccg\",\"site\":\"inst#17\",\
             \"failures\":3}],\
             \"sched\":{\"retries\":2,\"early_stops\":1,\"deadline_truncations\":0},\
             \"fleet\":{\"workers\":4,\"restarts\":1,\"poisoned_shards\":1}}"
        );
    }

    #[test]
    fn upsert_replaces_matching_campaign() {
        let b = StatusBoard::new();
        let mut v = CampaignView {
            workload: "fft".into(),
            kind: "program".into(),
            done: 1,
            total: 10,
            ..Default::default()
        };
        b.upsert_campaign(v.clone());
        v.done = 9;
        b.upsert_campaign(v);
        let doc = b.render_json_at(0);
        assert!(doc.contains("\"done\":9"));
        assert!(!doc.contains("\"done\":1"));
        assert_eq!(doc.matches("\"workload\":\"fft\"").count(), 1);
    }

    #[test]
    fn quarantine_list_is_bounded() {
        let b = StatusBoard::new();
        for i in 0..(QUARANTINE_CAP + 10) {
            b.push_quarantine(QuarantineEntry {
                workload: "w".into(),
                site: format!("inst#{i}"),
                failures: 1,
            });
        }
        let doc = b.render_json_at(0);
        assert_eq!(doc.matches("\"site\"").count(), QUARANTINE_CAP);
        assert!(doc.contains("inst#73"), "newest entries survive");
        assert!(!doc.contains("\"site\":\"inst#0\""), "oldest dropped");
    }

    #[test]
    fn strings_are_escaped() {
        let b = StatusBoard::new();
        b.set_tool("a\"b\\c\nd");
        assert!(b.render_json_at(0).contains("\"tool\":\"a\\\"b\\\\c\\nd\""));
    }
}
