//! Property tests for the metrics registry (ISSUE 7 satellite):
//! counter snapshots are monotone under any interleaving of updates and
//! snapshots, histogram invariants (cumulative buckets non-decreasing,
//! +Inf bucket == count) hold for arbitrary observations, and the
//! Prometheus render of a snapshot is deterministic.

use minpsid_metrics::{render_prometheus, Registry, SampleValue};
use proptest::prelude::*;
use proptest::proptest;

fn counter_value(reg: &Registry, name: &str) -> u64 {
    for fam in reg.snapshot() {
        if fam.name == name {
            if let SampleValue::Counter(v) = fam.series[0].value {
                return v;
            }
        }
    }
    panic!("counter {name} not in snapshot");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Interleave adds with snapshots: every snapshot of a counter is
    /// >= the previous one, and the final snapshot equals the sum of
    /// all increments.
    #[test]
    fn counter_snapshots_are_monotone(
        adds in proptest::collection::vec((0u64..1_000, proptest::prelude::any::<bool>()), 1..64),
    ) {
        let reg = Registry::new();
        let c = reg.counter("inj_total", "test", &[("w", "hpccg")]);
        let mut expected = 0u64;
        let mut last_seen = 0u64;
        for (n, snap_now) in &adds {
            c.add(*n);
            expected += n;
            if *snap_now {
                let seen = counter_value(&reg, "inj_total");
                prop_assert!(seen >= last_seen, "snapshot went backwards: {seen} < {last_seen}");
                prop_assert_eq!(seen, expected);
                last_seen = seen;
            }
        }
        prop_assert_eq!(counter_value(&reg, "inj_total"), expected);
    }

    /// Histogram invariants for arbitrary observations: buckets are
    /// cumulative (non-decreasing), the +Inf bucket equals the total
    /// count, and the sum matches.
    #[test]
    fn histogram_buckets_cumulate_to_count(
        obs in proptest::collection::vec(0u64..100_000, 0..64),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("lat_us", "test", &[], &[10.0, 100.0, 1_000.0, 10_000.0]);
        let mut sum = 0u64;
        for v in &obs {
            h.observe(*v as f64);
            sum += v;
        }
        let cum = h.cumulative();
        prop_assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1), "buckets must cumulate");
        let last = cum.last().unwrap();
        prop_assert!(last.0.is_infinite());
        prop_assert_eq!(last.1, obs.len() as u64);
        prop_assert_eq!(h.count(), obs.len() as u64);
        prop_assert!((h.sum() - sum as f64).abs() < 1e-6);
    }

    /// Rendering the same snapshot twice yields identical bytes, for any
    /// label soup.
    #[test]
    fn render_is_deterministic(
        labels in proptest::collection::vec((".{0,8}", ".{0,8}"), 1..6),
    ) {
        let reg = Registry::new();
        for (i, (k, v)) in labels.iter().enumerate() {
            reg.counter("soup_total", "label soup", &[("k", k), ("v", v)])
                .add(i as u64);
        }
        let a = render_prometheus(&reg.snapshot());
        let b = render_prometheus(&reg.snapshot());
        prop_assert_eq!(a, b);
    }
}
