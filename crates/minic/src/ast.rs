//! Abstract syntax tree for minic.

/// Source-level types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    Int,
    Float,
    Bool,
    ArrInt,
    ArrFloat,
}

impl Type {
    pub fn is_array(self) -> bool {
        matches!(self, Type::ArrInt | Type::ArrFloat)
    }

    pub fn is_numeric(self) -> bool {
        matches!(self, Type::Int | Type::Float)
    }

    /// Element type of an array type.
    pub fn elem(self) -> Option<Type> {
        match self {
            Type::ArrInt => Some(Type::Int),
            Type::ArrFloat => Some(Type::Float),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Type::Int => "int",
            Type::Float => "float",
            Type::Bool => "bool",
            Type::ArrInt => "[int]",
            Type::ArrFloat => "[float]",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub fns: Vec<FnDecl>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    pub name: String,
    pub params: Vec<(String, Type)>,
    pub ret: Option<Type>,
    pub body: Block,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Let {
        name: String,
        ty: Option<Type>,
        init: Expr,
        line: u32,
    },
    Assign {
        name: String,
        value: Expr,
        line: u32,
    },
    AssignIdx {
        name: String,
        idx: Expr,
        value: Expr,
        line: u32,
    },
    If {
        cond: Expr,
        then_b: Block,
        else_b: Option<Block>,
        line: u32,
    },
    While {
        cond: Expr,
        body: Block,
        line: u32,
    },
    /// `for var = from to to_ { body }` — half-open `[from, to_)`, `to_`
    /// evaluated once before the loop.
    For {
        var: String,
        from: Expr,
        to_: Expr,
        body: Block,
        line: u32,
    },
    Return {
        value: Option<Expr>,
        line: u32,
    },
    Break {
        line: u32,
    },
    Continue {
        line: u32,
    },
    Expr {
        e: Expr,
        line: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

impl BinaryOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit(i64, u32),
    FloatLit(f64, u32),
    BoolLit(bool, u32),
    Var(String, u32),
    Index {
        name: String,
        idx: Box<Expr>,
        line: u32,
    },
    Call {
        name: String,
        args: Vec<Expr>,
        line: u32,
    },
    Unary {
        op: UnaryOp,
        e: Box<Expr>,
        line: u32,
    },
    Binary {
        op: BinaryOp,
        l: Box<Expr>,
        r: Box<Expr>,
        line: u32,
    },
}

impl Expr {
    pub fn line(&self) -> u32 {
        match self {
            Expr::IntLit(_, l)
            | Expr::FloatLit(_, l)
            | Expr::BoolLit(_, l)
            | Expr::Var(_, l)
            | Expr::Index { line: l, .. }
            | Expr::Call { line: l, .. }
            | Expr::Unary { line: l, .. }
            | Expr::Binary { line: l, .. } => *l,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_helpers() {
        assert!(Type::ArrFloat.is_array());
        assert_eq!(Type::ArrFloat.elem(), Some(Type::Float));
        assert_eq!(Type::Int.elem(), None);
        assert!(Type::Float.is_numeric());
        assert!(!Type::Bool.is_numeric());
        assert_eq!(Type::ArrInt.name(), "[int]");
    }

    #[test]
    fn binary_op_classification() {
        assert!(BinaryOp::Le.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert!(BinaryOp::And.is_logical());
        assert!(!BinaryOp::Lt.is_logical());
    }

    #[test]
    fn expr_line_extraction() {
        let e = Expr::Binary {
            op: BinaryOp::Add,
            l: Box::new(Expr::IntLit(1, 3)),
            r: Box::new(Expr::IntLit(2, 3)),
            line: 3,
        };
        assert_eq!(e.line(), 3);
    }
}
