//! Tokenizer for minic.

use crate::CompileError;

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    Ident(String),
    Int(i64),
    Float(f64),
    // keywords
    Fn,
    Let,
    If,
    Else,
    While,
    For,
    To,
    Return,
    Break,
    Continue,
    True,
    False,
    KwInt,
    KwFloat,
    KwBool,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Arrow,
    // operators
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Eof,
}

impl TokKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokKind::Ident(s) => format!("identifier `{s}`"),
            TokKind::Int(v) => format!("integer literal `{v}`"),
            TokKind::Float(v) => format!("float literal `{v}`"),
            TokKind::Eof => "end of file".into(),
            other => format!("`{}`", token_text(other)),
        }
    }
}

fn token_text(k: &TokKind) -> &'static str {
    match k {
        TokKind::Fn => "fn",
        TokKind::Let => "let",
        TokKind::If => "if",
        TokKind::Else => "else",
        TokKind::While => "while",
        TokKind::For => "for",
        TokKind::To => "to",
        TokKind::Return => "return",
        TokKind::Break => "break",
        TokKind::Continue => "continue",
        TokKind::True => "true",
        TokKind::False => "false",
        TokKind::KwInt => "int",
        TokKind::KwFloat => "float",
        TokKind::KwBool => "bool",
        TokKind::LParen => "(",
        TokKind::RParen => ")",
        TokKind::LBrace => "{",
        TokKind::RBrace => "}",
        TokKind::LBracket => "[",
        TokKind::RBracket => "]",
        TokKind::Comma => ",",
        TokKind::Semi => ";",
        TokKind::Colon => ":",
        TokKind::Arrow => "->",
        TokKind::Assign => "=",
        TokKind::Plus => "+",
        TokKind::Minus => "-",
        TokKind::Star => "*",
        TokKind::Slash => "/",
        TokKind::Percent => "%",
        TokKind::Bang => "!",
        TokKind::EqEq => "==",
        TokKind::NotEq => "!=",
        TokKind::Lt => "<",
        TokKind::Le => "<=",
        TokKind::Gt => ">",
        TokKind::Ge => ">=",
        TokKind::AndAnd => "&&",
        TokKind::OrOr => "||",
        _ => "?",
    }
}

/// Tokenize `source`. `//` line comments and `/* */` block comments are
/// skipped.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let err = |line: u32, msg: String| CompileError { line, msg };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(start_line, "unterminated block comment".into()));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &source[start..i];
                let kind = match word {
                    "fn" => TokKind::Fn,
                    "let" => TokKind::Let,
                    "if" => TokKind::If,
                    "else" => TokKind::Else,
                    "while" => TokKind::While,
                    "for" => TokKind::For,
                    "to" => TokKind::To,
                    "return" => TokKind::Return,
                    "break" => TokKind::Break,
                    "continue" => TokKind::Continue,
                    "true" => TokKind::True,
                    "false" => TokKind::False,
                    "int" => TokKind::KwInt,
                    "float" => TokKind::KwFloat,
                    "bool" => TokKind::KwBool,
                    _ => TokKind::Ident(word.to_string()),
                };
                toks.push(Token { kind, line });
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &source[start..i];
                let kind = if is_float {
                    TokKind::Float(
                        text.parse()
                            .map_err(|_| err(line, format!("invalid float literal `{text}`")))?,
                    )
                } else {
                    TokKind::Int(
                        text.parse().map_err(|_| {
                            err(line, format!("integer literal `{text}` out of range"))
                        })?,
                    )
                };
                toks.push(Token { kind, line });
            }
            _ => {
                // compare raw byte pairs: slicing the source string here
                // would panic on multi-byte UTF-8 (found by proptest)
                let two: &[u8] = if i + 1 < bytes.len() {
                    &bytes[i..i + 2]
                } else {
                    &[]
                };
                let (kind, advance) = match two {
                    b"->" => (TokKind::Arrow, 2),
                    b"==" => (TokKind::EqEq, 2),
                    b"!=" => (TokKind::NotEq, 2),
                    b"<=" => (TokKind::Le, 2),
                    b">=" => (TokKind::Ge, 2),
                    b"&&" => (TokKind::AndAnd, 2),
                    b"||" => (TokKind::OrOr, 2),
                    _ => {
                        let k = match c {
                            '(' => TokKind::LParen,
                            ')' => TokKind::RParen,
                            '{' => TokKind::LBrace,
                            '}' => TokKind::RBrace,
                            '[' => TokKind::LBracket,
                            ']' => TokKind::RBracket,
                            ',' => TokKind::Comma,
                            ';' => TokKind::Semi,
                            ':' => TokKind::Colon,
                            '=' => TokKind::Assign,
                            '+' => TokKind::Plus,
                            '-' => TokKind::Minus,
                            '*' => TokKind::Star,
                            '/' => TokKind::Slash,
                            '%' => TokKind::Percent,
                            '!' => TokKind::Bang,
                            '<' => TokKind::Lt,
                            '>' => TokKind::Gt,
                            other => {
                                return Err(err(line, format!("unexpected character `{other}`")))
                            }
                        };
                        (k, 1)
                    }
                };
                toks.push(Token { kind, line });
                i += advance;
            }
        }
    }
    toks.push(Token {
        kind: TokKind::Eof,
        line,
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("fn foo let"),
            vec![
                TokKind::Fn,
                TokKind::Ident("foo".into()),
                TokKind::Let,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 3.5 1e3 2.5e-2 7"),
            vec![
                TokKind::Int(42),
                TokKind::Float(3.5),
                TokKind::Float(1000.0),
                TokKind::Float(0.025),
                TokKind::Int(7),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn dot_without_digits_is_not_a_float() {
        // `1.foo` style input: `1` then error on `.`
        assert!(lex("1.").is_err());
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("== != <= >= && || ->"),
            vec![
                TokKind::EqEq,
                TokKind::NotEq,
                TokKind::Le,
                TokKind::Ge,
                TokKind::AndAnd,
                TokKind::OrOr,
                TokKind::Arrow,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = lex("// comment\nx /* multi\nline */ y").unwrap();
        assert_eq!(toks[0].kind, TokKind::Ident("x".into()));
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[1].kind, TokKind::Ident("y".into()));
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn rejects_unknown_characters() {
        let e = lex("a @ b").unwrap_err();
        assert!(e.msg.contains('@'));
    }

    #[test]
    fn multibyte_utf8_is_rejected_without_panicking() {
        // regression: the two-char operator peek used to slice the source
        // string at byte offsets, panicking inside multi-byte characters
        for src in ["&\u{10ee73}]", "🕴", "a 𠚃 b", "=\u{00e9}"] {
            assert!(lex(src).is_err(), "{src:?} should error, not panic");
        }
    }
}
