//! # minic — a small C-like language compiled to the minpsid IR
//!
//! The paper's toolchain takes HPC benchmark *source code* and compiles it
//! with LLVM; all analyses then run on the IR. `minic` fills the clang role
//! for this reproduction: the 11 benchmarks of `minpsid-workloads` are
//! written in minic and lowered to [`minpsid_ir::Module`]s.
//!
//! ## Language
//!
//! ```text
//! fn saxpy(a: float, x: [float], y: [float], n: int) {
//!     for i = 0 to n {
//!         y[i] = a * x[i] + y[i];
//!     }
//! }
//!
//! fn main() {
//!     let n = arg_i(0);
//!     let a: [float] = alloc(n);
//!     let b: [float] = alloc(n);
//!     for i = 0 to n {
//!         a[i] = data_f(0, i);
//!         b[i] = 0.5;
//!     }
//!     saxpy(2.0, a, b, n);
//!     for i = 0 to n { out_f(b[i]); }
//! }
//! ```
//!
//! * Types: `int` (i64), `float` (f64), `bool`, arrays `[int]` / `[float]`
//!   (flat, heap-allocated with `alloc(n)`; multi-dimensional data is
//!   indexed manually, exactly like the original C benchmarks do with
//!   `malloc`'d buffers).
//! * Statements: `let`, assignment, indexed assignment, `if`/`else`,
//!   `while`, `for i = a to b` (half-open), `return`, `break`, `continue`,
//!   expression statements.
//! * Operators: `|| && == != < <= > >= + - * / % - !` with C precedence;
//!   `&&`/`||` short-circuit.
//! * `int` values widen implicitly to `float` in mixed arithmetic,
//!   arguments, and assignments; narrowing requires an explicit `int(x)`.
//! * Program I/O builtins (the equivalents of argv parsing and input/output
//!   files): `nargs()`, `arg_i(k)`, `arg_f(k)`, `data_len(s)`,
//!   `data_i(s, k)`, `data_f(s, k)`, `out_i(v)`, `out_f(v)` — `s` is a
//!   compile-time stream number.
//! * Math builtins: `sqrt sin cos exp log floor abs min max`, casts
//!   `int(x)` / `float(x)`.
//!
//! ## Lowering model
//!
//! Mutable variables live in `salloc`'d stack slots (pre-`mem2reg` LLVM
//! shape); variables that are never reassigned bind directly to registers.
//! Short-circuit operators lower to control flow through an `i64` slot, so
//! they contribute CFG edges to the weighted-CFG profile just as compiled
//! C would.

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

use minpsid_ir::Module;
use std::fmt;

/// A compile error with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

/// Compile minic source to a verified IR module.
pub fn compile(source: &str, module_name: &str) -> Result<Module, CompileError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(&tokens)?;
    let module = lower::lower(&program, module_name)?;
    if let Err(errs) = minpsid_ir::verify_module(&module) {
        // a verifier failure on front-end output is a compiler bug; surface
        // it loudly with full context
        let mut msg = String::from("internal error: lowered module failed verification: ");
        for e in errs.iter().take(5) {
            msg.push_str(&format!("{e}; "));
        }
        return Err(CompileError { line: 0, msg });
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{ExecConfig, Interp, OutputItem, ProgInput, Scalar, Stream};

    fn run(src: &str, input: ProgInput) -> Vec<OutputItem> {
        let m = compile(src, "test").expect("compile");
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert!(
            r.exited(),
            "program did not exit cleanly: {:?}",
            r.termination
        );
        r.output.items
    }

    #[test]
    fn quickstart_example_from_docs() {
        let src = r#"
            fn saxpy(a: float, x: [float], y: [float], n: int) {
                for i = 0 to n {
                    y[i] = a * x[i] + y[i];
                }
            }
            fn main() {
                let n = arg_i(0);
                let a: [float] = alloc(n);
                let b: [float] = alloc(n);
                for i = 0 to n {
                    a[i] = data_f(0, i);
                    b[i] = 0.5;
                }
                saxpy(2.0, a, b, n);
                for i = 0 to n { out_f(b[i]); }
            }
        "#;
        let input = ProgInput::new(vec![Scalar::I(3)], vec![Stream::F(vec![1.0, 2.0, 3.0])]);
        let out = run(src, input);
        assert_eq!(
            out,
            vec![OutputItem::F(2.5), OutputItem::F(4.5), OutputItem::F(6.5)]
        );
    }

    #[test]
    fn compile_error_reports_line() {
        let err = compile("fn main() {\n  let x = y;\n}", "t").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("y"));
    }
}
