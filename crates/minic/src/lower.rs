//! Type checking and lowering of the minic AST to the minpsid IR.
//!
//! Lowering model (mirrors unoptimized clang → LLVM):
//!
//! * Each function gets **one** `salloc` at entry whose size is patched
//!   after the body is lowered; every mutable variable (anything that is
//!   ever the target of an assignment, plus `for`-loop counters) and every
//!   short-circuit temporary lives at a fixed offset in that frame slab.
//!   Immutable variables bind directly to the operand that produced them.
//! * `&&` / `||` lower to control flow through an `i64` frame slot, so
//!   they contribute real CFG edges (and incubative-instruction candidates,
//!   like compiled C's branchy conditionals do).
//! * `int` widens implicitly to `float`; all other conversions are
//!   explicit casts.

use crate::ast::*;
use crate::CompileError;
use minpsid_ir::{
    BinOp, BlockId, CmpOp, FuncId, FunctionBuilder, InstId, InstKind, Module, ModuleBuilder,
    Operand, Ty, UnOp,
};
use std::collections::{HashMap, HashSet};

/// Lower a parsed program into an IR module. The module still needs
/// [`minpsid_ir::verify_module`] (done by [`crate::compile`]).
pub fn lower(program: &Program, module_name: &str) -> Result<Module, CompileError> {
    let mut mb = ModuleBuilder::new(module_name);
    let mut sigs: HashMap<String, (FuncId, Vec<Type>, Option<Type>)> = HashMap::new();

    for f in &program.fns {
        if BUILTINS.contains(&f.name.as_str()) {
            return Err(err(f.line, format!("`{}` is a builtin name", f.name)));
        }
        if sigs.contains_key(&f.name) {
            return Err(err(f.line, format!("duplicate function `{}`", f.name)));
        }
        let params: Vec<Ty> = f.params.iter().map(|(_, t)| ir_ty(*t)).collect();
        let fid = mb.declare(&f.name, params, f.ret.map(ir_ty));
        sigs.insert(
            f.name.clone(),
            (fid, f.params.iter().map(|(_, t)| *t).collect(), f.ret),
        );
    }

    let Some(&(main_id, ref main_params, _)) = sigs.get("main") else {
        return Err(err(0, "program has no `main` function".into()));
    };
    if !main_params.is_empty() {
        return Err(err(
            0,
            "`main` takes no parameters; read inputs with arg_i/arg_f/data_* builtins".into(),
        ));
    }
    mb.set_entry(main_id);

    let mut patches: Vec<(FuncId, InstId, i64)> = Vec::new();
    for f in &program.fns {
        let fid = sigs[&f.name].0;
        let mut lowerer = FnLower::new(&mb, fid, f, &sigs)?;
        lowerer.lower_body()?;
        let (fb, slot_base, slots) = lowerer.finish();
        mb.define(fb);
        patches.push((fid, slot_base, slots));
    }

    let mut module = mb.finish();
    for (fid, slot_base, slots) in patches {
        let inst = module.func_mut(fid).inst_mut(slot_base);
        inst.kind = InstKind::Salloc {
            count: Operand::ConstI(slots),
        };
    }
    Ok(module)
}

const BUILTINS: &[&str] = &[
    "nargs", "arg_i", "arg_f", "data_len", "data_i", "data_f", "out_i", "out_f", "sqrt", "sin",
    "cos", "exp", "log", "floor", "abs", "min", "max", "int", "float", "alloc",
];

fn err(line: u32, msg: String) -> CompileError {
    CompileError { line, msg }
}

fn ir_ty(t: Type) -> Ty {
    match t {
        Type::Int => Ty::I64,
        Type::Float => Ty::F64,
        Type::Bool => Ty::Bool,
        Type::ArrInt | Type::ArrFloat => Ty::Ptr,
    }
}

/// Where a variable's current value lives.
#[derive(Debug, Clone, Copy)]
enum Place {
    /// Immutable binding: the defining operand itself.
    Val(Operand),
    /// Mutable binding: offset into the function's frame slab.
    Slot(i64),
}

#[derive(Debug, Clone, Copy)]
struct VarInfo {
    ty: Type,
    place: Place,
}

struct LoopCtx {
    /// Target of `continue` (loop latch / header).
    continue_to: BlockId,
    /// Target of `break`.
    break_to: BlockId,
}

struct FnLower<'p> {
    fb: FunctionBuilder,
    decl: &'p FnDecl,
    sigs: &'p HashMap<String, (FuncId, Vec<Type>, Option<Type>)>,
    scopes: Vec<HashMap<String, VarInfo>>,
    loops: Vec<LoopCtx>,
    assigned: HashSet<String>,
    slot_base: InstId,
    next_slot: i64,
}

impl<'p> FnLower<'p> {
    fn new(
        mb: &ModuleBuilder,
        fid: FuncId,
        decl: &'p FnDecl,
        sigs: &'p HashMap<String, (FuncId, Vec<Type>, Option<Type>)>,
    ) -> Result<Self, CompileError> {
        let mut fb = mb.body(fid);
        // frame slab; size patched in `lower`
        let slot_base = fb.salloc(0i64);

        let mut assigned = HashSet::new();
        collect_assigned(&decl.body, &mut assigned);

        let mut this = FnLower {
            fb,
            decl,
            sigs,
            scopes: vec![HashMap::new()],
            loops: vec![],
            assigned,
            slot_base,
            next_slot: 0,
        };

        // bind parameters; assigned ones are copied into slots
        for (i, (name, ty)) in decl.params.iter().enumerate() {
            let preg = this.fb.param(i);
            if this.assigned.contains(name) {
                if ty.is_array() {
                    return Err(err(
                        decl.line,
                        format!("array parameter `{name}` cannot be reassigned"),
                    ));
                }
                let off = this.alloc_slot();
                this.write_slot(off, *ty, preg.into());
                this.declare_var(name, *ty, Place::Slot(off), decl.line)?;
            } else {
                this.declare_var(name, *ty, Place::Val(preg.into()), decl.line)?;
            }
        }
        Ok(this)
    }

    fn finish(self) -> (FunctionBuilder, InstId, i64) {
        (self.fb, self.slot_base, self.next_slot)
    }

    fn alloc_slot(&mut self) -> i64 {
        let off = self.next_slot;
        self.next_slot += 1;
        off
    }

    fn declare_var(
        &mut self,
        name: &str,
        ty: Type,
        place: Place,
        line: u32,
    ) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().unwrap();
        if scope.contains_key(name) {
            return Err(err(
                line,
                format!("`{name}` already declared in this scope"),
            ));
        }
        scope.insert(name.to_string(), VarInfo { ty, place });
        Ok(())
    }

    fn lookup(&self, name: &str, line: u32) -> Result<VarInfo, CompileError> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Ok(*v);
            }
        }
        Err(err(line, format!("unknown variable `{name}`")))
    }

    /// Store `value` (of minic type `ty`) into frame slot `off`.
    fn write_slot(&mut self, off: i64, ty: Type, value: Operand) {
        let v = match ty {
            Type::Bool => Operand::Value(self.fb.cast(Ty::I64, value)),
            _ => value,
        };
        let base = self.slot_base;
        self.fb.store(base, off, v);
    }

    /// Load the value of a slot as minic type `ty`.
    fn read_slot(&mut self, off: i64, ty: Type) -> Operand {
        let base = self.slot_base;
        match ty {
            Type::Float => Operand::Value(self.fb.load(Ty::F64, base, off)),
            Type::Bool => {
                let raw = self.fb.load(Ty::I64, base, off);
                Operand::Value(self.fb.cmp(CmpOp::Ne, raw, 0i64))
            }
            // ints (arrays never live in slots)
            _ => Operand::Value(self.fb.load(Ty::I64, base, off)),
        }
    }

    fn read_var(&mut self, v: VarInfo) -> Operand {
        match v.place {
            Place::Val(op) => op,
            Place::Slot(off) => self.read_slot(off, v.ty),
        }
    }

    /// Implicit `int -> float` widening; everything else must match.
    fn coerce(
        &mut self,
        op: Operand,
        from: Type,
        to: Type,
        line: u32,
    ) -> Result<Operand, CompileError> {
        if from == to {
            return Ok(op);
        }
        if from == Type::Int && to == Type::Float {
            return Ok(match op {
                Operand::ConstI(v) => Operand::ConstF(v as f64),
                _ => Operand::Value(self.fb.cast(Ty::F64, op)),
            });
        }
        Err(err(
            line,
            format!(
                "type mismatch: expected {}, found {}",
                to.name(),
                from.name()
            ),
        ))
    }

    /// Unify two numeric operands to a common type.
    fn unify_numeric(
        &mut self,
        (lop, lt): (Operand, Type),
        (rop, rt): (Operand, Type),
        line: u32,
        what: &str,
    ) -> Result<(Operand, Operand, Type), CompileError> {
        if !lt.is_numeric() || !rt.is_numeric() {
            return Err(err(
                line,
                format!(
                    "{what} requires numeric operands, found {} and {}",
                    lt.name(),
                    rt.name()
                ),
            ));
        }
        let common = if lt == Type::Float || rt == Type::Float {
            Type::Float
        } else {
            Type::Int
        };
        let l = self.coerce(lop, lt, common, line)?;
        let r = self.coerce(rop, rt, common, line)?;
        Ok((l, r, common))
    }

    // ---- statements ----

    fn lower_body(&mut self) -> Result<(), CompileError> {
        let body = self.decl.body.clone();
        let terminated = self.lower_block(&body)?;
        if !terminated {
            match self.decl.ret {
                None => self.fb.ret_void(),
                Some(_) => {
                    return Err(err(
                        self.decl.line,
                        format!(
                            "function `{}` can reach its end without returning a value",
                            self.decl.name
                        ),
                    ))
                }
            }
        }
        Ok(())
    }

    /// Lower a block in a fresh scope; returns whether control flow is
    /// terminated at the end (return/break/continue on all paths).
    fn lower_block(&mut self, block: &Block) -> Result<bool, CompileError> {
        self.scopes.push(HashMap::new());
        let mut terminated = false;
        for stmt in &block.stmts {
            if terminated {
                self.scopes.pop();
                return Err(err(stmt_line(stmt), "unreachable code".into()));
            }
            terminated = self.lower_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(terminated)
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<bool, CompileError> {
        match stmt {
            Stmt::Let {
                name,
                ty,
                init,
                line,
            } => {
                // `alloc(n)` is only legal here, with an array annotation
                if let Expr::Call {
                    name: cname, args, ..
                } = init
                {
                    if cname == "alloc" {
                        let Some(decl_ty) = ty else {
                            return Err(err(
                                *line,
                                "`alloc(n)` needs an array type annotation: `let a: [float] = alloc(n);`"
                                    .into(),
                            ));
                        };
                        if !decl_ty.is_array() {
                            return Err(err(
                                *line,
                                format!("`alloc(n)` produces an array, not {}", decl_ty.name()),
                            ));
                        }
                        if args.len() != 1 {
                            return Err(err(*line, "alloc takes one argument".into()));
                        }
                        let (n, nt) = self.lower_expr(&args[0])?;
                        if nt != Type::Int {
                            return Err(err(*line, "alloc size must be int".into()));
                        }
                        let ptr = self.fb.alloc(n);
                        self.fb.name_last(name);
                        self.declare_var(name, *decl_ty, Place::Val(ptr.into()), *line)?;
                        return Ok(false);
                    }
                }
                let (op, ety) = self.lower_expr(init)?;
                let var_ty = match ty {
                    Some(t) => *t,
                    None => ety,
                };
                let op = self.coerce(op, ety, var_ty, *line)?;
                if self.assigned.contains(name) {
                    if var_ty.is_array() {
                        return Err(err(
                            *line,
                            format!("array variable `{name}` cannot be reassigned"),
                        ));
                    }
                    let off = self.alloc_slot();
                    self.write_slot(off, var_ty, op);
                    self.declare_var(name, var_ty, Place::Slot(off), *line)?;
                } else {
                    self.declare_var(name, var_ty, Place::Val(op), *line)?;
                }
                Ok(false)
            }
            Stmt::Assign { name, value, line } => {
                let var = self.lookup(name, *line)?;
                let Place::Slot(off) = var.place else {
                    return Err(err(*line, format!("`{name}` is not assignable")));
                };
                let (op, ety) = self.lower_expr(value)?;
                let op = self.coerce(op, ety, var.ty, *line)?;
                self.write_slot(off, var.ty, op);
                Ok(false)
            }
            Stmt::AssignIdx {
                name,
                idx,
                value,
                line,
            } => {
                let var = self.lookup(name, *line)?;
                let Some(elem) = var.ty.elem() else {
                    return Err(err(*line, format!("`{name}` is not an array")));
                };
                let base = self.read_var(var);
                let (iop, ity) = self.lower_expr(idx)?;
                if ity != Type::Int {
                    return Err(err(*line, "array index must be int".into()));
                }
                let (vop, vty) = self.lower_expr(value)?;
                let vop = self.coerce(vop, vty, elem, *line)?;
                self.fb.store(base, iop, vop);
                Ok(false)
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
                line,
            } => {
                let (cop, cty) = self.lower_expr(cond)?;
                if cty != Type::Bool {
                    return Err(err(*line, "if condition must be bool".into()));
                }
                let then_block = self.fb.new_block("if.then");
                let else_block = self.fb.new_block("if.else");
                self.fb.cond_br(cop, then_block, else_block);

                self.fb.switch_to(then_block);
                let t_term = self.lower_block(then_b)?;
                let t_end = self.fb.current_block();

                self.fb.switch_to(else_block);
                let e_term = match else_b {
                    Some(b) => self.lower_block(b)?,
                    None => false,
                };
                let e_end = self.fb.current_block();

                if t_term && e_term {
                    return Ok(true);
                }
                let join = self.fb.new_block("if.join");
                if !t_term {
                    self.fb.switch_to(t_end);
                    self.fb.br(join);
                }
                if !e_term {
                    self.fb.switch_to(e_end);
                    self.fb.br(join);
                }
                self.fb.switch_to(join);
                Ok(false)
            }
            Stmt::While { cond, body, line } => {
                let header = self.fb.new_block("while.header");
                let body_block = self.fb.new_block("while.body");
                let exit = self.fb.new_block("while.exit");
                self.fb.br(header);

                self.fb.switch_to(header);
                let (cop, cty) = self.lower_expr(cond)?;
                if cty != Type::Bool {
                    return Err(err(*line, "while condition must be bool".into()));
                }
                self.fb.cond_br(cop, body_block, exit);

                self.fb.switch_to(body_block);
                self.loops.push(LoopCtx {
                    continue_to: header,
                    break_to: exit,
                });
                let terminated = self.lower_block(body)?;
                self.loops.pop();
                if !terminated {
                    self.fb.br(header);
                }
                self.fb.switch_to(exit);
                Ok(false)
            }
            Stmt::For {
                var,
                from,
                to_,
                body,
                line,
            } => {
                // evaluate bounds once, before the loop
                let (fop, fty) = self.lower_expr(from)?;
                if fty != Type::Int {
                    return Err(err(*line, "for-loop start must be int".into()));
                }
                let (top, tty) = self.lower_expr(to_)?;
                if tty != Type::Int {
                    return Err(err(*line, "for-loop bound must be int".into()));
                }
                let off = self.alloc_slot();
                self.write_slot(off, Type::Int, fop);

                let header = self.fb.new_block("for.header");
                let body_block = self.fb.new_block("for.body");
                let latch = self.fb.new_block("for.latch");
                let exit = self.fb.new_block("for.exit");
                self.fb.br(header);

                self.fb.switch_to(header);
                let i = self.read_slot(off, Type::Int);
                let c = self.fb.cmp(CmpOp::Lt, i, top);
                self.fb.cond_br(c, body_block, exit);

                self.fb.switch_to(body_block);
                self.scopes.push(HashMap::new());
                self.declare_var(var, Type::Int, Place::Slot(off), *line)?;
                self.loops.push(LoopCtx {
                    continue_to: latch,
                    break_to: exit,
                });
                let terminated = self.lower_block(body)?;
                self.loops.pop();
                self.scopes.pop();
                if !terminated {
                    self.fb.br(latch);
                }

                self.fb.switch_to(latch);
                let i = self.read_slot(off, Type::Int);
                let inc = self.fb.add(Ty::I64, i, 1i64);
                self.write_slot(off, Type::Int, inc.into());
                self.fb.br(header);

                self.fb.switch_to(exit);
                Ok(false)
            }
            Stmt::Return { value, line } => {
                match (value, self.decl.ret) {
                    (None, None) => self.fb.ret_void(),
                    (Some(v), Some(rt)) => {
                        let (op, ety) = self.lower_expr(v)?;
                        let op = self.coerce(op, ety, rt, *line)?;
                        self.fb.ret(op);
                    }
                    (None, Some(rt)) => {
                        return Err(err(
                            *line,
                            format!("function returns {}, but `return;` has no value", rt.name()),
                        ))
                    }
                    (Some(_), None) => {
                        return Err(err(*line, "void function cannot return a value".into()))
                    }
                }
                Ok(true)
            }
            Stmt::Break { line } => {
                let Some(ctx) = self.loops.last() else {
                    return Err(err(*line, "`break` outside of a loop".into()));
                };
                let target = ctx.break_to;
                self.fb.br(target);
                Ok(true)
            }
            Stmt::Continue { line } => {
                let Some(ctx) = self.loops.last() else {
                    return Err(err(*line, "`continue` outside of a loop".into()));
                };
                let target = ctx.continue_to;
                self.fb.br(target);
                Ok(true)
            }
            Stmt::Expr { e, line } => {
                match e {
                    Expr::Call { name, args, .. } => {
                        // void calls allowed only in statement position
                        self.lower_call(name, args, *line, true)?;
                    }
                    _ => {
                        self.lower_expr(e)?;
                    }
                }
                Ok(false)
            }
        }
    }

    // ---- expressions ----

    fn lower_expr(&mut self, e: &Expr) -> Result<(Operand, Type), CompileError> {
        match e {
            Expr::IntLit(v, _) => Ok((Operand::ConstI(*v), Type::Int)),
            Expr::FloatLit(v, _) => Ok((Operand::ConstF(*v), Type::Float)),
            Expr::BoolLit(v, _) => Ok((Operand::ConstB(*v), Type::Bool)),
            Expr::Var(name, line) => {
                let var = self.lookup(name, *line)?;
                let op = self.read_var(var);
                Ok((op, var.ty))
            }
            Expr::Index { name, idx, line } => {
                let var = self.lookup(name, *line)?;
                let Some(elem) = var.ty.elem() else {
                    return Err(err(*line, format!("`{name}` is not an array")));
                };
                let base = self.read_var(var);
                let (iop, ity) = self.lower_expr(idx)?;
                if ity != Type::Int {
                    return Err(err(*line, "array index must be int".into()));
                }
                let v = self.fb.load(ir_ty(elem), base, iop);
                Ok((v.into(), elem))
            }
            Expr::Unary { op, e, line } => {
                let (vop, vty) = self.lower_expr(e)?;
                match op {
                    UnaryOp::Neg => {
                        if !vty.is_numeric() {
                            return Err(err(*line, format!("cannot negate {}", vty.name())));
                        }
                        // fold literal negation
                        match vop {
                            Operand::ConstI(v) => Ok((Operand::ConstI(-v), Type::Int)),
                            Operand::ConstF(v) => Ok((Operand::ConstF(-v), Type::Float)),
                            _ => {
                                let r = self.fb.un(UnOp::Neg, ir_ty(vty), vop);
                                Ok((r.into(), vty))
                            }
                        }
                    }
                    UnaryOp::Not => {
                        if vty != Type::Bool {
                            return Err(err(
                                *line,
                                format!("`!` requires bool, found {}", vty.name()),
                            ));
                        }
                        let r = self.fb.un(UnOp::Not, Ty::Bool, vop);
                        Ok((r.into(), Type::Bool))
                    }
                }
            }
            Expr::Binary { op, l, r, line } => self.lower_binary(*op, l, r, *line),
            Expr::Call { name, args, line } => match self.lower_call(name, args, *line, false)? {
                Some(res) => Ok(res),
                None => Err(err(
                    *line,
                    format!("`{name}` returns no value and cannot be used in an expression"),
                )),
            },
        }
    }

    fn lower_binary(
        &mut self,
        op: BinaryOp,
        l: &Expr,
        r: &Expr,
        line: u32,
    ) -> Result<(Operand, Type), CompileError> {
        if op.is_logical() {
            return self.lower_short_circuit(op, l, r, line);
        }
        let lv = self.lower_expr(l)?;
        let rv = self.lower_expr(r)?;
        if op.is_comparison() {
            // bool == bool / bool != bool are allowed; otherwise numeric
            if lv.1 == Type::Bool && rv.1 == Type::Bool {
                if !matches!(op, BinaryOp::Eq | BinaryOp::Ne) {
                    return Err(err(line, "bools only support == and !=".into()));
                }
                let c = self.fb.cmp(cmp_op(op), lv.0, rv.0);
                return Ok((c.into(), Type::Bool));
            }
            let (lo, ro, _) = self.unify_numeric(lv, rv, line, "comparison")?;
            let c = self.fb.cmp(cmp_op(op), lo, ro);
            return Ok((c.into(), Type::Bool));
        }
        let (lo, ro, common) = self.unify_numeric(lv, rv, line, "arithmetic")?;
        let ir_op = match op {
            BinaryOp::Add => BinOp::Add,
            BinaryOp::Sub => BinOp::Sub,
            BinaryOp::Mul => BinOp::Mul,
            BinaryOp::Div => BinOp::Div,
            BinaryOp::Rem => BinOp::Rem,
            _ => unreachable!(),
        };
        let v = self.fb.bin(ir_op, ir_ty(common), lo, ro);
        Ok((v.into(), common))
    }

    /// `a && b` / `a || b` with short-circuit evaluation via a frame slot.
    fn lower_short_circuit(
        &mut self,
        op: BinaryOp,
        l: &Expr,
        r: &Expr,
        line: u32,
    ) -> Result<(Operand, Type), CompileError> {
        let (lop, lty) = self.lower_expr(l)?;
        if lty != Type::Bool {
            return Err(err(line, format!("`{op:?}` requires bool operands")));
        }
        let off = self.alloc_slot();
        let rhs_block = self.fb.new_block("sc.rhs");
        let skip_block = self.fb.new_block("sc.skip");
        let join = self.fb.new_block("sc.join");
        match op {
            BinaryOp::And => self.fb.cond_br(lop, rhs_block, skip_block),
            BinaryOp::Or => self.fb.cond_br(lop, skip_block, rhs_block),
            _ => unreachable!(),
        }

        self.fb.switch_to(rhs_block);
        let (rop, rty) = self.lower_expr(r)?;
        if rty != Type::Bool {
            return Err(err(line, format!("`{op:?}` requires bool operands")));
        }
        self.write_slot(off, Type::Bool, rop);
        self.fb.br(join);

        self.fb.switch_to(skip_block);
        let skip_value = op == BinaryOp::Or; // || short-circuits to true
        self.write_slot(off, Type::Bool, Operand::ConstB(skip_value));
        self.fb.br(join);

        self.fb.switch_to(join);
        let v = self.read_slot(off, Type::Bool);
        Ok((v, Type::Bool))
    }

    /// Lower a call; returns `None` for void calls (only allowed when
    /// `stmt_position`).
    fn lower_call(
        &mut self,
        name: &str,
        args: &[Expr],
        line: u32,
        stmt_position: bool,
    ) -> Result<Option<(Operand, Type)>, CompileError> {
        let arity = |n: usize| -> Result<(), CompileError> {
            if args.len() != n {
                Err(err(
                    line,
                    format!("`{name}` takes {n} argument(s), got {}", args.len()),
                ))
            } else {
                Ok(())
            }
        };
        match name {
            "alloc" => Err(err(
                line,
                "`alloc(n)` is only allowed as the initializer of an array let-binding".into(),
            )),
            "nargs" => {
                arity(0)?;
                let v = self.fb.nargs();
                Ok(Some((v.into(), Type::Int)))
            }
            "arg_i" | "arg_f" => {
                arity(1)?;
                let (op, ty) = self.lower_expr(&args[0])?;
                if ty != Type::Int {
                    return Err(err(line, format!("`{name}` index must be int")));
                }
                let v = if name == "arg_i" {
                    (self.fb.arg_i(op).into(), Type::Int)
                } else {
                    (self.fb.arg_f(op).into(), Type::Float)
                };
                Ok(Some(v))
            }
            "data_len" | "data_i" | "data_f" => {
                let want = if name == "data_len" { 1 } else { 2 };
                arity(want)?;
                let Expr::IntLit(stream, _) = &args[0] else {
                    return Err(err(
                        line,
                        format!("`{name}` stream number must be an integer literal"),
                    ));
                };
                let stream = u32::try_from(*stream)
                    .map_err(|_| err(line, "stream number must be non-negative".into()))?;
                if name == "data_len" {
                    let v = self.fb.data_len(stream);
                    return Ok(Some((v.into(), Type::Int)));
                }
                let (iop, ity) = self.lower_expr(&args[1])?;
                if ity != Type::Int {
                    return Err(err(line, format!("`{name}` index must be int")));
                }
                let v = if name == "data_i" {
                    (self.fb.data_i(stream, iop).into(), Type::Int)
                } else {
                    (self.fb.data_f(stream, iop).into(), Type::Float)
                };
                Ok(Some(v))
            }
            "out_i" => {
                arity(1)?;
                let (op, ty) = self.lower_expr(&args[0])?;
                if ty != Type::Int {
                    return Err(err(
                        line,
                        format!("out_i requires int, found {}", ty.name()),
                    ));
                }
                self.fb.out_i(op);
                Ok(None)
            }
            "out_f" => {
                arity(1)?;
                let (op, ty) = self.lower_expr(&args[0])?;
                let op = self.coerce(op, ty, Type::Float, line)?;
                self.fb.out_f(op);
                Ok(None)
            }
            "sqrt" | "sin" | "cos" | "exp" | "log" | "floor" => {
                arity(1)?;
                let (op, ty) = self.lower_expr(&args[0])?;
                let op = self.coerce(op, ty, Type::Float, line)?;
                let un = match name {
                    "sqrt" => UnOp::Sqrt,
                    "sin" => UnOp::Sin,
                    "cos" => UnOp::Cos,
                    "exp" => UnOp::Exp,
                    "log" => UnOp::Log,
                    _ => UnOp::Floor,
                };
                let v = self.fb.un(un, Ty::F64, op);
                Ok(Some((v.into(), Type::Float)))
            }
            "abs" => {
                arity(1)?;
                let (op, ty) = self.lower_expr(&args[0])?;
                if !ty.is_numeric() {
                    return Err(err(line, "abs requires a numeric argument".into()));
                }
                let v = self.fb.un(UnOp::Abs, ir_ty(ty), op);
                Ok(Some((v.into(), ty)))
            }
            "min" | "max" => {
                arity(2)?;
                let lv = self.lower_expr(&args[0])?;
                let rv = self.lower_expr(&args[1])?;
                let (lo, ro, common) = self.unify_numeric(lv, rv, line, name)?;
                let op = if name == "min" {
                    BinOp::Min
                } else {
                    BinOp::Max
                };
                let v = self.fb.bin(op, ir_ty(common), lo, ro);
                Ok(Some((v.into(), common)))
            }
            "int" => {
                arity(1)?;
                let (op, ty) = self.lower_expr(&args[0])?;
                let v = match ty {
                    Type::Int => op,
                    Type::Float | Type::Bool => Operand::Value(self.fb.cast(Ty::I64, op)),
                    _ => return Err(err(line, format!("cannot cast {} to int", ty.name()))),
                };
                Ok(Some((v, Type::Int)))
            }
            "float" => {
                arity(1)?;
                let (op, ty) = self.lower_expr(&args[0])?;
                let v = match ty {
                    Type::Float => op,
                    Type::Int => Operand::Value(self.fb.cast(Ty::F64, op)),
                    _ => return Err(err(line, format!("cannot cast {} to float", ty.name()))),
                };
                Ok(Some((v, Type::Float)))
            }
            _ => {
                // user function
                let Some((fid, param_tys, ret)) = self.sigs.get(name).cloned() else {
                    return Err(err(line, format!("unknown function `{name}`")));
                };
                if args.len() != param_tys.len() {
                    return Err(err(
                        line,
                        format!(
                            "`{name}` takes {} argument(s), got {}",
                            param_tys.len(),
                            args.len()
                        ),
                    ));
                }
                let mut ops = Vec::with_capacity(args.len());
                for (a, &pt) in args.iter().zip(&param_tys) {
                    let (op, ty) = self.lower_expr(a)?;
                    let op = self.coerce(op, ty, pt, a.line())?;
                    ops.push(op);
                }
                let v = self.fb.call(fid, ret.map(ir_ty), ops);
                match ret {
                    Some(rt) => Ok(Some((v.into(), rt))),
                    None => {
                        if stmt_position {
                            Ok(None)
                        } else {
                            Err(err(
                                line,
                                format!(
                                    "`{name}` returns no value and cannot be used in an expression"
                                ),
                            ))
                        }
                    }
                }
            }
        }
    }
}

fn cmp_op(op: BinaryOp) -> CmpOp {
    match op {
        BinaryOp::Eq => CmpOp::Eq,
        BinaryOp::Ne => CmpOp::Ne,
        BinaryOp::Lt => CmpOp::Lt,
        BinaryOp::Le => CmpOp::Le,
        BinaryOp::Gt => CmpOp::Gt,
        BinaryOp::Ge => CmpOp::Ge,
        _ => unreachable!(),
    }
}

fn stmt_line(s: &Stmt) -> u32 {
    match s {
        Stmt::Let { line, .. }
        | Stmt::Assign { line, .. }
        | Stmt::AssignIdx { line, .. }
        | Stmt::If { line, .. }
        | Stmt::While { line, .. }
        | Stmt::For { line, .. }
        | Stmt::Return { line, .. }
        | Stmt::Break { line }
        | Stmt::Continue { line }
        | Stmt::Expr { line, .. } => *line,
    }
}

fn collect_assigned(block: &Block, out: &mut HashSet<String>) {
    for s in &block.stmts {
        match s {
            Stmt::Assign { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::If { then_b, else_b, .. } => {
                collect_assigned(then_b, out);
                if let Some(b) = else_b {
                    collect_assigned(b, out);
                }
            }
            Stmt::While { body, .. } => collect_assigned(body, out),
            Stmt::For { body, .. } => collect_assigned(body, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn compile_err(src: &str) -> CompileError {
        compile(src, "t").unwrap_err()
    }

    #[test]
    fn rejects_unknown_variable() {
        let e = compile_err("fn main() { out_i(x); }");
        assert!(e.msg.contains("unknown variable"));
    }

    #[test]
    fn rejects_type_mismatch_in_let_annotation() {
        let e = compile_err("fn main() { let x: int = 1.5; }");
        assert!(e.msg.contains("type mismatch"));
    }

    #[test]
    fn allows_int_to_float_widening() {
        assert!(compile("fn main() { let x: float = 1; out_f(x + 2); }", "t").is_ok());
    }

    #[test]
    fn rejects_float_to_int_narrowing() {
        let e = compile_err("fn main() { let x: int = 1.5 + 1; }");
        assert!(e.msg.contains("type mismatch"));
    }

    #[test]
    fn rejects_missing_return() {
        let e = compile_err(
            "fn f(x: int) -> int { if x > 0 { return 1; } }\nfn main() { out_i(f(1)); }",
        );
        assert!(e.msg.contains("without returning"));
    }

    #[test]
    fn rejects_unreachable_code() {
        let e = compile_err("fn main() { return; out_i(1); }");
        assert!(e.msg.contains("unreachable"));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = compile_err("fn main() { break; }");
        assert!(e.msg.contains("outside of a loop"));
    }

    #[test]
    fn rejects_array_reassignment() {
        let e =
            compile_err("fn main() { let a: [int] = alloc(4); let b: [int] = alloc(4); a = b; }");
        assert!(e.msg.contains("cannot be reassigned") || e.msg.contains("not assignable"));
    }

    #[test]
    fn rejects_non_literal_stream_number() {
        let e = compile_err("fn main() { let s = 0; out_i(data_i(s, 0)); }");
        assert!(e.msg.contains("integer literal"));
    }

    #[test]
    fn rejects_void_call_in_expression() {
        let e = compile_err("fn f() { }\nfn main() { let x = f(); }");
        assert!(e.msg.contains("returns no value"));
    }

    #[test]
    fn rejects_missing_main() {
        let e = compile_err("fn f() { }");
        assert!(e.msg.contains("no `main`"));
    }

    #[test]
    fn rejects_duplicate_function() {
        let e = compile_err("fn f() { }\nfn f() { }\nfn main() { }");
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn rejects_builtin_shadowing() {
        let e = compile_err("fn sqrt(x: float) -> float { return x; }\nfn main() { }");
        assert!(e.msg.contains("builtin"));
    }

    #[test]
    fn rejects_condition_of_wrong_type() {
        let e = compile_err("fn main() { if 1 { out_i(1); } }");
        assert!(e.msg.contains("must be bool"));
    }

    #[test]
    fn rejects_main_with_params() {
        let e = compile_err("fn main(x: int) { }");
        assert!(e.msg.contains("main"));
    }

    #[test]
    fn shadowing_in_nested_scope_is_allowed() {
        assert!(compile(
            "fn main() { let x = 1; if x > 0 { let x = 2.5; out_f(x); } out_i(x); }",
            "t"
        )
        .is_ok());
    }

    #[test]
    fn duplicate_in_same_scope_is_rejected() {
        let e = compile_err("fn main() { let x = 1; let x = 2; }");
        assert!(e.msg.contains("already declared"));
    }
}
