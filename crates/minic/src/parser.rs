//! Recursive-descent parser for minic.

use crate::ast::*;
use crate::lexer::{TokKind, Token};
use crate::CompileError;

/// Parse a token stream into a program.
pub fn parse(tokens: &[Token]) -> Result<Program, CompileError> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    let mut fns = Vec::new();
    while !p.at(TokKind::Eof) {
        fns.push(p.fn_decl()?);
    }
    Ok(Program { fns })
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn at(&self, kind: TokKind) -> bool {
        self.peek().kind == kind
    }

    fn line(&self) -> u32 {
        self.peek().line
    }

    fn bump(&mut self) -> &Token {
        let t = &self.toks[self.pos];
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: TokKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokKind) -> Result<(), CompileError> {
        if self.eat(kind.clone()) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().kind.describe()
            )))
        }
    }

    fn err(&self, msg: String) -> CompileError {
        CompileError {
            line: self.line(),
            msg,
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match &self.peek().kind {
            TokKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn ty(&mut self) -> Result<Type, CompileError> {
        if self.eat(TokKind::LBracket) {
            let elem = self.ty()?;
            self.expect(TokKind::RBracket)?;
            return match elem {
                Type::Int => Ok(Type::ArrInt),
                Type::Float => Ok(Type::ArrFloat),
                other => Err(self.err(format!("array of {} not supported", other.name()))),
            };
        }
        let t = match self.peek().kind {
            TokKind::KwInt => Type::Int,
            TokKind::KwFloat => Type::Float,
            TokKind::KwBool => Type::Bool,
            ref other => {
                return Err(self.err(format!("expected a type, found {}", other.describe())))
            }
        };
        self.bump();
        Ok(t)
    }

    fn fn_decl(&mut self) -> Result<FnDecl, CompileError> {
        let line = self.line();
        self.expect(TokKind::Fn)?;
        let name = self.ident()?;
        self.expect(TokKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(TokKind::RParen) {
            loop {
                let pname = self.ident()?;
                self.expect(TokKind::Colon)?;
                let pty = self.ty()?;
                params.push((pname, pty));
                if !self.eat(TokKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokKind::RParen)?;
        let ret = if self.eat(TokKind::Arrow) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FnDecl {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Block, CompileError> {
        self.expect(TokKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(TokKind::RBrace) {
            if self.at(TokKind::Eof) {
                return Err(self.err("unexpected end of file inside block".into()));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokKind::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().kind {
            TokKind::Let => {
                self.bump();
                let name = self.ident()?;
                let ty = if self.eat(TokKind::Colon) {
                    Some(self.ty()?)
                } else {
                    None
                };
                self.expect(TokKind::Assign)?;
                let init = self.expr()?;
                self.expect(TokKind::Semi)?;
                Ok(Stmt::Let {
                    name,
                    ty,
                    init,
                    line,
                })
            }
            TokKind::If => {
                self.bump();
                let cond = self.expr()?;
                let then_b = self.block()?;
                let else_b = if self.eat(TokKind::Else) {
                    if self.at(TokKind::If) {
                        // else-if chain: wrap the nested if in a block
                        let nested = self.stmt()?;
                        Some(Block {
                            stmts: vec![nested],
                        })
                    } else {
                        Some(self.block()?)
                    }
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_b,
                    else_b,
                    line,
                })
            }
            TokKind::While => {
                self.bump();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, line })
            }
            TokKind::For => {
                self.bump();
                let var = self.ident()?;
                self.expect(TokKind::Assign)?;
                let from = self.expr()?;
                self.expect(TokKind::To)?;
                let to_ = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::For {
                    var,
                    from,
                    to_,
                    body,
                    line,
                })
            }
            TokKind::Return => {
                self.bump();
                let value = if self.at(TokKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokKind::Semi)?;
                Ok(Stmt::Return { value, line })
            }
            TokKind::Break => {
                self.bump();
                self.expect(TokKind::Semi)?;
                Ok(Stmt::Break { line })
            }
            TokKind::Continue => {
                self.bump();
                self.expect(TokKind::Semi)?;
                Ok(Stmt::Continue { line })
            }
            TokKind::Ident(_) => {
                // assignment, indexed assignment, or expression statement —
                // disambiguate by lookahead
                if let TokKind::Ident(name) = self.peek().kind.clone() {
                    let next = &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind;
                    if *next == TokKind::Assign {
                        self.bump();
                        self.bump();
                        let value = self.expr()?;
                        self.expect(TokKind::Semi)?;
                        return Ok(Stmt::Assign { name, value, line });
                    }
                    if *next == TokKind::LBracket {
                        // could be `a[i] = v;` or an expression using `a[i]`;
                        // parse the index expression and check for `=`
                        let save = self.pos;
                        self.bump();
                        self.bump();
                        let idx = self.expr()?;
                        self.expect(TokKind::RBracket)?;
                        if self.eat(TokKind::Assign) {
                            let value = self.expr()?;
                            self.expect(TokKind::Semi)?;
                            return Ok(Stmt::AssignIdx {
                                name,
                                idx,
                                value,
                                line,
                            });
                        }
                        self.pos = save;
                    }
                }
                let e = self.expr()?;
                self.expect(TokKind::Semi)?;
                Ok(Stmt::Expr { e, line })
            }
            _ => {
                let e = self.expr()?;
                self.expect(TokKind::Semi)?;
                Ok(Stmt::Expr { e, line })
            }
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut l = self.and_expr()?;
        while self.at(TokKind::OrOr) {
            let line = self.line();
            self.bump();
            let r = self.and_expr()?;
            l = Expr::Binary {
                op: BinaryOp::Or,
                l: Box::new(l),
                r: Box::new(r),
                line,
            };
        }
        Ok(l)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut l = self.cmp_expr()?;
        while self.at(TokKind::AndAnd) {
            let line = self.line();
            self.bump();
            let r = self.cmp_expr()?;
            l = Expr::Binary {
                op: BinaryOp::And,
                l: Box::new(l),
                r: Box::new(r),
                line,
            };
        }
        Ok(l)
    }

    fn cmp_expr(&mut self) -> Result<Expr, CompileError> {
        let mut l = self.add_expr()?;
        loop {
            let op = match self.peek().kind {
                TokKind::EqEq => BinaryOp::Eq,
                TokKind::NotEq => BinaryOp::Ne,
                TokKind::Lt => BinaryOp::Lt,
                TokKind::Le => BinaryOp::Le,
                TokKind::Gt => BinaryOp::Gt,
                TokKind::Ge => BinaryOp::Ge,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let r = self.add_expr()?;
            l = Expr::Binary {
                op,
                l: Box::new(l),
                r: Box::new(r),
                line,
            };
        }
        Ok(l)
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        let mut l = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokKind::Plus => BinaryOp::Add,
                TokKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let r = self.mul_expr()?;
            l = Expr::Binary {
                op,
                l: Box::new(l),
                r: Box::new(r),
                line,
            };
        }
        Ok(l)
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        let mut l = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokKind::Star => BinaryOp::Mul,
                TokKind::Slash => BinaryOp::Div,
                TokKind::Percent => BinaryOp::Rem,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let r = self.unary_expr()?;
            l = Expr::Binary {
                op,
                l: Box::new(l),
                r: Box::new(r),
                line,
            };
        }
        Ok(l)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        if self.eat(TokKind::Minus) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                e: Box::new(e),
                line,
            });
        }
        if self.eat(TokKind::Bang) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                e: Box::new(e),
                line,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek().kind.clone() {
            TokKind::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v, line))
            }
            TokKind::Float(v) => {
                self.bump();
                Ok(Expr::FloatLit(v, line))
            }
            TokKind::True => {
                self.bump();
                Ok(Expr::BoolLit(true, line))
            }
            TokKind::False => {
                self.bump();
                Ok(Expr::BoolLit(false, line))
            }
            TokKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokKind::RParen)?;
                Ok(e)
            }
            // `int(x)` / `float(x)` cast syntax uses type keywords
            TokKind::KwInt | TokKind::KwFloat => {
                let name = if self.at(TokKind::KwInt) {
                    "int"
                } else {
                    "float"
                };
                self.bump();
                self.expect(TokKind::LParen)?;
                let arg = self.expr()?;
                self.expect(TokKind::RParen)?;
                Ok(Expr::Call {
                    name: name.into(),
                    args: vec![arg],
                    line,
                })
            }
            TokKind::Ident(name) => {
                self.bump();
                if self.eat(TokKind::LParen) {
                    let mut args = Vec::new();
                    if !self.at(TokKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(TokKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokKind::RParen)?;
                    Ok(Expr::Call { name, args, line })
                } else if self.eat(TokKind::LBracket) {
                    let idx = self.expr()?;
                    self.expect(TokKind::RBracket)?;
                    Ok(Expr::Index {
                        name,
                        idx: Box::new(idx),
                        line,
                    })
                } else {
                    Ok(Expr::Var(name, line))
                }
            }
            other => Err(self.err(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_function_with_params_and_ret() {
        let p = parse_src("fn f(a: int, b: [float]) -> float { return 1.0; }");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "f");
        assert_eq!(
            f.params,
            vec![("a".into(), Type::Int), ("b".into(), Type::ArrFloat)]
        );
        assert_eq!(f.ret, Some(Type::Float));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse_src("fn main() { let x = 1 + 2 * 3; }");
        let Stmt::Let { init, .. } = &p.fns[0].body.stmts[0] else {
            panic!()
        };
        let Expr::Binary {
            op: BinaryOp::Add,
            r,
            ..
        } = init
        else {
            panic!("top is +: {init:?}")
        };
        assert!(matches!(
            **r,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse_src(
            "fn main() { if a < 1 { out_i(1); } else if a < 2 { out_i(2); } else { out_i(3); } }",
        );
        let Stmt::If {
            else_b: Some(e), ..
        } = &p.fns[0].body.stmts[0]
        else {
            panic!()
        };
        assert!(matches!(e.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_for_loop() {
        let p = parse_src("fn main() { for i = 0 to 10 { out_i(i); } }");
        assert!(matches!(p.fns[0].body.stmts[0], Stmt::For { .. }));
    }

    #[test]
    fn distinguishes_indexed_assign_from_indexed_read() {
        let p = parse_src("fn main(a: [int]) { a[0] = 1; out_i(a[0]); }");
        assert!(matches!(p.fns[0].body.stmts[0], Stmt::AssignIdx { .. }));
        assert!(matches!(p.fns[0].body.stmts[1], Stmt::Expr { .. }));
    }

    #[test]
    fn parses_short_circuit_chain() {
        let p = parse_src("fn main() { let x = a && b || c; }");
        let Stmt::Let { init, .. } = &p.fns[0].body.stmts[0] else {
            panic!()
        };
        // || at the top, && nested left
        let Expr::Binary {
            op: BinaryOp::Or,
            l,
            ..
        } = init
        else {
            panic!()
        };
        assert!(matches!(
            **l,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn parses_cast_keywords_as_calls() {
        let p = parse_src("fn main() { let x = int(3.5) + 1; let y = float(2); }");
        assert_eq!(p.fns[0].body.stmts.len(), 2);
    }

    #[test]
    fn error_on_missing_semicolon() {
        let toks = lex("fn main() { let x = 1 }").unwrap();
        let e = parse(&toks).unwrap_err();
        assert!(e.msg.contains("expected `;`"), "{}", e.msg);
    }

    #[test]
    fn error_reports_correct_line() {
        let toks = lex("fn main() {\n\n  let = 1;\n}").unwrap();
        let e = parse(&toks).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn unary_minus_nests() {
        let p = parse_src("fn main() { let x = --1; }");
        let Stmt::Let { init, .. } = &p.fns[0].body.stmts[0] else {
            panic!()
        };
        let Expr::Unary { e, .. } = init else {
            panic!()
        };
        assert!(matches!(**e, Expr::Unary { .. }));
    }
}
