//! End-to-end semantics tests: compile minic source, run it on the
//! interpreter, check the output stream.

use minic::compile;
use minpsid_interp::{ExecConfig, Interp, OutputItem, ProgInput, Scalar, Stream};

fn run(src: &str, input: ProgInput) -> Vec<OutputItem> {
    let m = compile(src, "test").expect("compile");
    let r = Interp::new(&m, ExecConfig::default()).run(&input);
    assert!(r.exited(), "termination: {:?}", r.termination);
    r.output.items
}

fn run_scalars(src: &str, args: Vec<Scalar>) -> Vec<OutputItem> {
    run(src, ProgInput::scalars(args))
}

fn ints(items: &[OutputItem]) -> Vec<i64> {
    items
        .iter()
        .map(|i| match i {
            OutputItem::I(v) => *v,
            OutputItem::F(v) => panic!("expected int output, got {v}"),
        })
        .collect()
}

fn floats(items: &[OutputItem]) -> Vec<f64> {
    items
        .iter()
        .map(|i| match i {
            OutputItem::F(v) => *v,
            OutputItem::I(v) => panic!("expected float output, got {v}"),
        })
        .collect()
}

#[test]
fn arithmetic_and_precedence() {
    let out = run_scalars("fn main() { out_i(2 + 3 * 4 - 10 / 2); }", vec![]);
    assert_eq!(ints(&out), vec![9]);
}

#[test]
fn integer_division_and_remainder() {
    let out = run_scalars(
        "fn main() { out_i(17 / 5); out_i(17 % 5); out_i(-17 / 5); }",
        vec![],
    );
    assert_eq!(ints(&out), vec![3, 2, -3]);
}

#[test]
fn while_loop_with_break_and_continue() {
    let src = r#"
        fn main() {
            let i = 0;
            while true {
                i = i + 1;
                if i % 2 == 0 { continue; }
                if i > 7 { break; }
                out_i(i);
            }
        }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(ints(&out), vec![1, 3, 5, 7]);
}

#[test]
fn for_loop_bound_evaluated_once() {
    // mutating the bound variable inside the loop must not change the trip
    // count because `to` is evaluated before the loop
    let src = r#"
        fn main() {
            let n = 4;
            for i = 0 to n {
                n = 0;
                out_i(i);
            }
        }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(ints(&out), vec![0, 1, 2, 3]);
}

#[test]
fn nested_loops_and_loop_var_scoping() {
    let src = r#"
        fn main() {
            for i = 0 to 3 {
                for j = 0 to 2 {
                    out_i(i * 10 + j);
                }
            }
        }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(ints(&out), vec![0, 1, 10, 11, 20, 21]);
}

#[test]
fn short_circuit_and_skips_rhs() {
    // RHS would trap with a division by zero if evaluated
    let src = r#"
        fn main() {
            let d = 0;
            if d != 0 && 10 / d > 1 { out_i(1); } else { out_i(0); }
        }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(ints(&out), vec![0]);
}

#[test]
fn short_circuit_or_skips_rhs() {
    let src = r#"
        fn main() {
            let d = 0;
            if d == 0 || 10 / d > 1 { out_i(1); } else { out_i(0); }
        }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(ints(&out), vec![1]);
}

#[test]
fn logical_operators_evaluate_rhs_when_needed() {
    let src = r#"
        fn side(x: int) -> bool { out_i(x); return x > 0; }
        fn main() {
            if side(1) && side(2) { out_i(100); }
            if side(0) || side(3) { out_i(200); }
        }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(ints(&out), vec![1, 2, 100, 0, 3, 200]);
}

#[test]
fn recursion_fibonacci() {
    let src = r#"
        fn fib(n: int) -> int {
            if n < 2 { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { out_i(fib(arg_i(0))); }
    "#;
    let out = run_scalars(src, vec![Scalar::I(15)]);
    assert_eq!(ints(&out), vec![610]);
}

#[test]
fn arrays_store_and_load() {
    let src = r#"
        fn main() {
            let n = 5;
            let a: [int] = alloc(n);
            for i = 0 to n { a[i] = i * i; }
            let sum = 0;
            for i = 0 to n { sum = sum + a[i]; }
            out_i(sum);
        }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(ints(&out), vec![30]);
}

#[test]
fn flat_2d_matrix_multiply() {
    let src = r#"
        fn main() {
            let n = 2;
            let a: [float] = alloc(n * n);
            let b: [float] = alloc(n * n);
            let c: [float] = alloc(n * n);
            a[0] = 1.0; a[1] = 2.0; a[2] = 3.0; a[3] = 4.0;
            b[0] = 5.0; b[1] = 6.0; b[2] = 7.0; b[3] = 8.0;
            for i = 0 to n {
                for j = 0 to n {
                    let acc = 0.0;
                    for k = 0 to n {
                        acc = acc + a[i * n + k] * b[k * n + j];
                    }
                    c[i * n + j] = acc;
                }
            }
            for i = 0 to n * n { out_f(c[i]); }
        }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(floats(&out), vec![19.0, 22.0, 43.0, 50.0]);
}

#[test]
fn arrays_passed_to_functions_are_shared() {
    let src = r#"
        fn fill(a: [int], n: int, v: int) {
            for i = 0 to n { a[i] = v; }
        }
        fn main() {
            let a: [int] = alloc(3);
            fill(a, 3, 7);
            out_i(a[0] + a[1] + a[2]);
        }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(ints(&out), vec![21]);
}

#[test]
fn math_builtins() {
    let src = r#"
        fn main() {
            out_f(sqrt(16.0));
            out_f(abs(-2.5));
            out_i(abs(-3));
            out_f(min(1.5, 2));
            out_i(max(3, 7));
            out_f(floor(2.9));
            out_i(int(2.9));
            out_f(float(3));
        }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(
        out,
        vec![
            OutputItem::F(4.0),
            OutputItem::F(2.5),
            OutputItem::I(3),
            OutputItem::F(1.5),
            OutputItem::I(7),
            OutputItem::F(2.0),
            OutputItem::I(2),
            OutputItem::F(3.0),
        ]
    );
}

#[test]
fn transcendental_builtins_match_rust() {
    let src = "fn main() { out_f(sin(1.0)); out_f(cos(1.0)); out_f(exp(1.0)); out_f(log(2.718281828459045)); }";
    let out = floats(&run_scalars(src, vec![]));
    assert_eq!(out[0], 1.0f64.sin());
    assert_eq!(out[1], 1.0f64.cos());
    assert_eq!(out[2], 1.0f64.exp());
    assert!((out[3] - 1.0).abs() < 1e-12);
}

#[test]
fn else_if_chain_selects_correct_branch() {
    let src = r#"
        fn classify(x: int) -> int {
            if x < 0 { return 0; }
            else if x == 0 { return 1; }
            else if x < 10 { return 2; }
            else { return 3; }
        }
        fn main() {
            out_i(classify(-5));
            out_i(classify(0));
            out_i(classify(5));
            out_i(classify(50));
        }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(ints(&out), vec![0, 1, 2, 3]);
}

#[test]
fn data_streams_feed_computation() {
    let src = r#"
        fn main() {
            let n = data_len(0);
            let sum = 0.0;
            for i = 0 to n { sum = sum + data_f(0, i); }
            out_f(sum / float(n));
            let m = data_len(1);
            let isum = 0;
            for i = 0 to m { isum = isum + data_i(1, i); }
            out_i(isum);
        }
    "#;
    let input = ProgInput::new(
        vec![],
        vec![
            Stream::F(vec![1.0, 2.0, 3.0, 4.0]),
            Stream::I(vec![10, 20, 30]),
        ],
    );
    let out = run(src, input);
    assert_eq!(out, vec![OutputItem::F(2.5), OutputItem::I(60)]);
}

#[test]
fn mutable_bool_variables_work() {
    let src = r#"
        fn main() {
            let found = false;
            for i = 0 to 10 {
                if i == 7 { found = true; }
            }
            if found { out_i(1); } else { out_i(0); }
            let flip = true;
            flip = !flip;
            if flip { out_i(1); } else { out_i(0); }
        }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(ints(&out), vec![1, 0]);
}

#[test]
fn early_return_from_both_branches() {
    let src = r#"
        fn sign(x: float) -> int {
            if x < 0.0 { return -1; } else { return 1; }
        }
        fn main() { out_i(sign(-2.5)); out_i(sign(3)); }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(ints(&out), vec![-1, 1]);
}

#[test]
fn float_widening_in_calls_and_returns() {
    let src = r#"
        fn half(x: float) -> float { return x / 2; }
        fn main() { out_f(half(7)); }
    "#;
    let out = run_scalars(src, vec![]);
    assert_eq!(floats(&out), vec![3.5]);
}

#[test]
fn deep_loop_nest_matches_reference_model() {
    // triangular accumulation, checked against the same computation in Rust
    let src = r#"
        fn main() {
            let n = arg_i(0);
            let acc = 0;
            for i = 0 to n {
                for j = 0 to i {
                    acc = acc + i * j;
                }
            }
            out_i(acc);
        }
    "#;
    let n = 17i64;
    let mut expected = 0i64;
    for i in 0..n {
        for j in 0..i {
            expected += i * j;
        }
    }
    let out = run_scalars(src, vec![Scalar::I(n)]);
    assert_eq!(ints(&out), vec![expected]);
}

#[test]
fn program_reads_nargs() {
    let src = "fn main() { out_i(nargs()); }";
    let out = run_scalars(src, vec![Scalar::I(1), Scalar::F(2.0), Scalar::I(3)]);
    assert_eq!(ints(&out), vec![3]);
}
