//! Structural tests on minic's lowering output: the CFG shapes the
//! weighted-CFG profile depends on (Fig. 5 reasoning assumes loops lower
//! to header/body/latch/exit and conditionals to then/else/join).

use minic::compile;
use minpsid_ir::{Cfg, DomTree, InstKind, Module};

fn blocks_of(m: &Module) -> Vec<String> {
    m.func(m.entry)
        .blocks
        .iter()
        .map(|b| b.name.clone().unwrap_or_default())
        .collect()
}

#[test]
fn for_loop_lowers_to_four_block_skeleton() {
    let m = compile("fn main() { for i = 0 to 10 { out_i(i); } }", "t").unwrap();
    let names = blocks_of(&m);
    assert_eq!(
        names,
        vec!["entry", "for.header", "for.body", "for.latch", "for.exit"]
    );
    // header has two successors (body, exit); latch loops back
    let f = m.func(m.entry);
    let cfg = Cfg::build(f);
    assert_eq!(cfg.succs(minpsid_ir::BlockId(1)).len(), 2);
    assert_eq!(cfg.succs(minpsid_ir::BlockId(3)), &[minpsid_ir::BlockId(1)]);
    // the back edge is detected as a natural loop of header+body+latch
    let dom = DomTree::build(&cfg);
    let back = dom.back_edges(&cfg);
    assert_eq!(back.len(), 1);
    let body = dom.natural_loop(&cfg, back[0].0, back[0].1);
    assert_eq!(body.len(), 3, "header, body, latch");
}

#[test]
fn if_else_lowers_to_diamond() {
    let m = compile(
        "fn main() { let x = arg_i(0); if x > 0 { out_i(1); } else { out_i(2); } out_i(3); }",
        "t",
    )
    .unwrap();
    let names = blocks_of(&m);
    assert_eq!(names, vec!["entry", "if.then", "if.else", "if.join"]);
    let f = m.func(m.entry);
    let cfg = Cfg::build(f);
    let dom = DomTree::build(&cfg);
    // entry dominates everything; join is dominated by entry, not by arms
    let (e, t, el, j) = (
        minpsid_ir::BlockId(0),
        minpsid_ir::BlockId(1),
        minpsid_ir::BlockId(2),
        minpsid_ir::BlockId(3),
    );
    assert!(dom.dominates(e, j));
    assert!(!dom.dominates(t, j));
    assert!(!dom.dominates(el, j));
}

#[test]
fn early_return_branches_skip_the_join() {
    let m = compile(
        "fn f(x: int) -> int { if x > 0 { return 1; } else { return 2; } }\nfn main() { out_i(f(3)); }",
        "t",
    )
    .unwrap();
    let f = m.func_by_name("f").unwrap();
    let func = m.func(f);
    // no join block: both arms terminate
    let names: Vec<_> = func.blocks.iter().filter_map(|b| b.name.clone()).collect();
    assert!(!names.iter().any(|n| n == "if.join"), "{names:?}");
}

#[test]
fn short_circuit_creates_three_extra_blocks_per_operator() {
    let one = compile(
        "fn main() { let x = arg_i(0); if x > 0 && x < 10 { out_i(1); } }",
        "t",
    )
    .unwrap();
    let names = blocks_of(&one);
    for expected in ["sc.rhs", "sc.skip", "sc.join"] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing {expected} in {names:?}"
        );
    }
}

#[test]
fn immutable_lets_use_no_memory_traffic() {
    // a chain of immutable lets must lower to pure register arithmetic:
    // exactly one salloc (the empty frame slab) and zero loads/stores
    let m = compile(
        "fn main() { let a = arg_i(0); let b = a + 1; let c = b * 2; out_i(c); }",
        "t",
    )
    .unwrap();
    let f = m.func(m.entry);
    let loads = f
        .insts
        .iter()
        .filter(|i| matches!(i.kind, InstKind::Load { .. } | InstKind::Store { .. }))
        .count();
    assert_eq!(loads, 0, "immutable bindings must stay in registers");
}

#[test]
fn mutable_variables_get_frame_slots() {
    let m = compile("fn main() { let a = 0; a = a + 1; out_i(a); }", "t").unwrap();
    let f = m.func(m.entry);
    let stores = f
        .insts
        .iter()
        .filter(|i| matches!(i.kind, InstKind::Store { .. }))
        .count();
    assert!(stores >= 2, "init + assignment both store");
    // the frame slab is a single salloc
    let sallocs = f
        .insts
        .iter()
        .filter(|i| matches!(i.kind, InstKind::Salloc { .. }))
        .count();
    assert_eq!(sallocs, 1);
}

#[test]
fn frame_slab_size_matches_slot_demand() {
    // 2 mutable ints + 1 loop counter = 3 slots
    let m = compile(
        "fn main() { let a = 0; let b = 0; for i = 0 to 4 { a = a + i; b = b + 1; } out_i(a + b); }",
        "t",
    )
    .unwrap();
    let f = m.func(m.entry);
    let count = f.insts.iter().find_map(|i| match i.kind {
        InstKind::Salloc {
            count: minpsid_ir::Operand::ConstI(c),
        } => Some(c),
        _ => None,
    });
    assert_eq!(count, Some(3));
}
