//! Property tests for the minic front end: no input — valid, invalid, or
//! adversarial — may panic the compiler; it either produces a verified
//! module or a located error.

use proptest::prelude::*;

/// Random "token soup" built from minic's own lexemes: maximizes parser
/// coverage while staying lexically valid most of the time.
fn token_soup() -> impl Strategy<Value = String> {
    let token = prop_oneof![
        Just("fn".to_string()),
        Just("let".to_string()),
        Just("if".to_string()),
        Just("else".to_string()),
        Just("while".to_string()),
        Just("for".to_string()),
        Just("to".to_string()),
        Just("return".to_string()),
        Just("break".to_string()),
        Just("continue".to_string()),
        Just("int".to_string()),
        Just("float".to_string()),
        Just("bool".to_string()),
        Just("true".to_string()),
        Just("false".to_string()),
        Just("main".to_string()),
        Just("x".to_string()),
        Just("y".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just("[".to_string()),
        Just("]".to_string()),
        Just(";".to_string()),
        Just(":".to_string()),
        Just(",".to_string()),
        Just("=".to_string()),
        Just("+".to_string()),
        Just("-".to_string()),
        Just("*".to_string()),
        Just("/".to_string()),
        Just("%".to_string()),
        Just("==".to_string()),
        Just("!=".to_string()),
        Just("<".to_string()),
        Just("<=".to_string()),
        Just(">=".to_string()),
        Just("&&".to_string()),
        Just("||".to_string()),
        Just("->".to_string()),
        Just("!".to_string()),
        (0i64..100).prop_map(|v| v.to_string()),
        (0u32..100).prop_map(|v| format!("{}.5", v)),
    ];
    prop::collection::vec(token, 0..60).prop_map(|toks| toks.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The compiler never panics on token soup.
    #[test]
    fn compiler_never_panics_on_token_soup(src in token_soup()) {
        let _ = minic::compile(&src, "soup");
    }

    /// The compiler never panics on arbitrary bytes-ish strings.
    #[test]
    fn compiler_never_panics_on_arbitrary_strings(src in ".{0,200}") {
        let _ = minic::compile(&src, "arb");
    }

    /// Whatever compiles also verifies (compile() runs the verifier and
    /// would surface an internal error, so a plain Ok is the property).
    #[test]
    fn successful_compiles_are_verified_modules(src in token_soup()) {
        if let Ok(module) = minic::compile(&src, "soup") {
            prop_assert!(minpsid_ir::verify_module(&module).is_ok());
        }
    }

    /// Error positions point at real lines of the source.
    #[test]
    fn error_lines_are_within_the_source(src in token_soup()) {
        if let Err(e) = minic::compile(&src, "soup") {
            let lines = src.lines().count() as u32;
            prop_assert!(e.line <= lines.max(1), "line {} of {}", e.line, lines);
        }
    }
}

/// Deterministic adversarial cases that broke lesser parsers.
#[test]
fn adversarial_sources_error_gracefully() {
    let cases = [
        "",
        "fn",
        "fn main(",
        "fn main() {",
        "fn main() { let x = ; }",
        "fn main() { if { } }",
        "fn main() { for i = 0 { } }",
        "fn main() { x[0; }",
        "fn main() { out_i(((((1); }",
        "fn main() -> { }",
        "fn main() { let x: [bool] = alloc(2); }",
        "fn main() { 1 + ; }",
        "fn f(a: int, a: int) { } fn main() { }",
        "fn main() { let x = 9223372036854775808; }", // i64 overflow
    ];
    for src in cases {
        assert!(
            minic::compile(src, "adv").is_err(),
            "expected an error for {src:?}"
        );
    }
}

/// Deeply nested expressions must not blow the parser stack at sane
/// depths (recursive descent; minic programs are hand-written kernels).
#[test]
fn moderately_deep_nesting_parses() {
    let depth = 200;
    let mut expr = String::from("1");
    for _ in 0..depth {
        expr = format!("({expr} + 1)");
    }
    let src = format!("fn main() {{ out_i({expr}); }}");
    let m = minic::compile(&src, "deep").expect("compiles");
    assert!(m.num_insts() > depth);
}
