//! Wall-clock deadlines for graceful campaign degradation.
//!
//! A [`Deadline`] is a point in time past which the scheduler stops
//! *starting* work. It never aborts an injection mid-flight — outcomes
//! already earned are kept — so a deadline produces a truncated-but-valid
//! report instead of a dead process. Deadlines intentionally live outside
//! every config fingerprint: resuming a truncated journal with a looser
//! (or no) deadline must converge on the exact full-run report.

use std::time::{Duration, Instant};

/// An optional wall-clock budget. `none()` never expires.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    end: Option<Instant>,
}

impl Deadline {
    /// No deadline: `exceeded()` is always false.
    pub fn none() -> Deadline {
        Deadline { end: None }
    }

    /// Expires `budget` from now. A zero budget is already expired, which
    /// tests use to force deterministic full truncation.
    pub fn within(budget: Duration) -> Deadline {
        Deadline {
            end: Some(Instant::now() + budget),
        }
    }

    /// Convenience for CLI plumbing: `None` ⇒ no deadline.
    pub fn from_secs(secs: Option<f64>) -> Deadline {
        match secs {
            Some(s) => Deadline::within(Duration::from_secs_f64(s.max(0.0))),
            None => Deadline::none(),
        }
    }

    pub fn exceeded(&self) -> bool {
        match self.end {
            Some(end) => Instant::now() >= end,
            None => false,
        }
    }

    /// Time left, `None` when unbounded. Saturates at zero once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.end
            .map(|end| end.saturating_duration_since(Instant::now()))
    }

    pub fn is_bounded(&self) -> bool {
        self.end.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.exceeded());
        assert!(!d.is_bounded());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn zero_budget_is_already_expired() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.exceeded());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_not_expired() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.exceeded());
        assert!(d.remaining().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn from_secs_maps_none_to_unbounded() {
        assert!(!Deadline::from_secs(None).is_bounded());
        assert!(Deadline::from_secs(Some(0.0)).exceeded());
    }
}
