//! minpsid-sched: the resilient campaign scheduler.
//!
//! Fault-injection campaigns dominate a MINPSID run's wall-clock, and at
//! scale the measurement infrastructure itself misbehaves: workers panic,
//! injections blow their wall-clock budget, whole hosts run out of time.
//! This crate makes campaign execution self-healing and deadline-aware:
//!
//! * [`retry`] — exponential backoff with deterministic jitter for
//!   engine failures, bounded by a retry budget;
//! * [`Scheduler::try_quarantine`] — sites that keep failing are
//!   quarantined (excluded from rates, recorded with a reason) instead
//!   of poisoning the campaign;
//! * [`stats`] — Wilson score intervals, both for report error bars and
//!   for confidence-bounded early stopping;
//! * [`deadline`] — a global wall-clock budget under which campaigns
//!   degrade gracefully to a truncated-but-honest report with a
//!   completeness score.
//!
//! Everything is deterministic given a seed: retries, chaos plans, and
//! early-stop decisions are pure functions of per-site keys, so the same
//! seed and chaos knobs produce byte-identical reports.
//!
//! The scheduler is a *policy layer*, not an entry point: campaigns are
//! executed by the faultsim `CampaignEngine`, which consults an attached
//! [`Scheduler`] (or a default unbounded one) per attempt — there is no
//! separate "scheduled campaign" code path to keep in sync.

pub mod deadline;
pub mod retry;
mod scheduler;
pub mod stats;

pub use deadline::Deadline;
pub use retry::{backoff_ms, splitmix64, FailureKind};
pub use scheduler::{AttemptResult, SchedConfig, SchedSnapshot, Scheduler, SiteStatus, TaskResult};
pub use stats::{binomial_ci, BinomialCi};
