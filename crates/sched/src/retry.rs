//! Retry policy: exponential backoff with deterministic jitter.
//!
//! Backoff delays are real (the thread sleeps) but bounded and tiny by
//! default — engine failures here are panics and wall-clock blowouts, not
//! remote-service throttling, so the delay exists to decorrelate retries
//! from transient host pressure, not to be polite. Jitter is derived from
//! the site key with splitmix64, never from the clock or a global RNG:
//! the same campaign seed always produces the same delay schedule, which
//! keeps chaos-knob runs byte-identical across repeats.

/// Why an injection attempt failed inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The worker panicked (caught at the injection boundary).
    Panic,
    /// The per-injection wall-clock budget blew.
    Timeout,
    /// The work killed its executor *process* (abort, OOM, segfault)
    /// repeatedly: the fleet supervisor declared the shard poisoned after
    /// K consecutive worker deaths and quarantined its injections.
    PoisonedShard,
}

impl FailureKind {
    /// Stable byte encoding used by the journal's quarantine records.
    pub fn to_u8(self) -> u8 {
        match self {
            FailureKind::Panic => 0,
            FailureKind::Timeout => 1,
            FailureKind::PoisonedShard => 2,
        }
    }

    /// Inverse of [`FailureKind::to_u8`]; `None` for bytes no version
    /// ever wrote.
    pub fn from_u8(b: u8) -> Option<FailureKind> {
        match b {
            0 => Some(FailureKind::Panic),
            1 => Some(FailureKind::Timeout),
            2 => Some(FailureKind::PoisonedShard),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::PoisonedShard => "poisoned-shard",
        }
    }
}

/// splitmix64: the standard 64-bit finalizer-style mixer. Used for every
/// deterministic "random-looking" decision in the scheduler (jitter,
/// chaos failure plans) so no state is carried between calls.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Exponential backoff with deterministic jitter: attempt `a` waits
/// `min(base << a, cap)` plus a jitter in `[0, base]` keyed on
/// `(site, attempt)`. Milliseconds.
pub fn backoff_ms(base_ms: u64, cap_ms: u64, site: u64, attempt: u32) -> u64 {
    let exp = base_ms.saturating_shl(attempt);
    let jitter_span = base_ms.max(1);
    let jitter =
        splitmix64(site ^ u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03)) % jitter_span;
    exp.min(cap_ms).saturating_add(jitter)
}

trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        if n >= 64 || self > (u64::MAX >> n) {
            u64::MAX
        } else {
            self << n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_kind_bytes_round_trip() {
        for k in [
            FailureKind::Panic,
            FailureKind::Timeout,
            FailureKind::PoisonedShard,
        ] {
            assert_eq!(FailureKind::from_u8(k.to_u8()), Some(k));
        }
        assert_eq!(FailureKind::from_u8(3), None);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let b0 = backoff_ms(4, 64, 7, 0);
        let b3 = backoff_ms(4, 64, 7, 3);
        let b40 = backoff_ms(4, 64, 7, 40);
        assert!(b0 < b3, "{b0} vs {b3}");
        // cap + max jitter
        assert!(b40 <= 64 + 4, "{b40}");
    }

    #[test]
    fn backoff_is_deterministic_per_site_and_attempt() {
        assert_eq!(backoff_ms(1, 50, 42, 1), backoff_ms(1, 50, 42, 1));
        // different sites jitter differently at least somewhere
        let distinct = (0..32).any(|s| backoff_ms(8, 50, s, 0) != backoff_ms(8, 50, s + 1, 0));
        assert!(distinct);
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        assert!(backoff_ms(u64::MAX, u64::MAX, 0, 63) >= u64::MAX - 1);
        let _ = backoff_ms(2, 100, u64::MAX, u32::MAX);
    }

    #[test]
    fn splitmix_spreads_consecutive_keys() {
        assert_ne!(splitmix64(1), splitmix64(2));
        // low bits must vary across nearby keys (they drive chaos plans)
        let low: std::collections::HashSet<u64> = (0..16).map(|k| splitmix64(k) & 3).collect();
        assert!(low.len() > 1, "low bits stuck at one value");
    }
}
