//! The scheduler proper: retry loop, quarantine book-keeping, early-stop
//! decisions, and campaign-level accounting.
//!
//! One [`Scheduler`] spans one logical run (a single campaign, or a whole
//! MINPSID pipeline with its many campaigns). It is `Sync`: campaign
//! workers on many threads drive it concurrently, so every tally is an
//! atomic and every decision that must be deterministic is derived from
//! per-site keys, never from cross-thread interleaving.
//!
//! The accounting invariant the whole design hangs on: for every
//! scheduled injection, exactly one of these happens —
//!
//! * it **completes** (a real outcome, possibly after retries, possibly a
//!   final `EngineError` when the retry budget is exhausted),
//! * it is **skipped by early stop** (its site's Wilson interval got
//!   tight enough first),
//! * it is **skipped by quarantine** (its site was declared bad),
//! * it is **truncated** by the deadline.
//!
//! `SchedSnapshot::accounted()` sums the four; campaigns assert it equals
//! `planned`. "Zero lost injections" is that assertion.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::deadline::Deadline;
use crate::retry::{backoff_ms, FailureKind};
use crate::stats::{binomial_ci, BinomialCi};
use minpsid_trace as trace;
use trace::CampaignKind;

/// Knobs for retry, quarantine, and early stopping. Lives inside
/// `CampaignConfig`, so it *is* part of the config fingerprint — two runs
/// with different retry budgets are different experiments. The deadline
/// is deliberately not here (see [`crate::deadline`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedConfig {
    /// Extra attempts after the first failed one. 0 restores the
    /// pre-scheduler behaviour: first engine failure ⇒ `EngineError`.
    pub max_retries: u32,
    /// Base backoff delay in milliseconds (attempt `a` waits
    /// `min(base << a, cap)` + deterministic jitter in `[0, base]`).
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Consecutive retry-exhausted injections at one site before the
    /// site is quarantined.
    pub quarantine_after: u32,
    /// Hard cap on quarantined sites per run; once reached, further
    /// exhaustions degrade to plain `EngineError` outcomes.
    pub quarantine_cap: u64,
    /// Early-stop threshold: stop sampling a site once its Wilson
    /// interval's half-width is ≤ this. 0.0 disables early stopping.
    pub ci_half_width: f64,
    /// Confidence level in standard deviations (1.96 ⇒ 95 %).
    pub ci_z: f64,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            max_retries: 2,
            backoff_base_ms: 1,
            backoff_cap_ms: 50,
            quarantine_after: 2,
            quarantine_cap: 64,
            ci_half_width: 0.0,
            ci_z: 1.96,
        }
    }
}

/// What one injection attempt produced.
#[derive(Debug)]
pub enum AttemptResult<T> {
    Ok(T),
    Failed(FailureKind),
}

/// What [`Scheduler::run_task`] resolved an injection to.
#[derive(Debug, PartialEq, Eq)]
pub enum TaskResult<T> {
    /// A real outcome, after `retries` failed attempts (0 ⇒ first try).
    Done { value: T, retries: u32 },
    /// Every attempt failed; `reason` is the last failure.
    Exhausted { reason: FailureKind, attempts: u32 },
}

/// How a per-instruction site ended the campaign. Annotates every
/// estimate in the final report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteStatus {
    /// All planned injections produced outcomes.
    Full,
    /// Sampling stopped early: the Wilson interval converged.
    EarlyStopped,
    /// The deadline expired with injections still pending.
    Truncated,
    /// The site was quarantined after consecutive engine failures; its
    /// estimate is excluded from all rates.
    Quarantined(FailureKind),
    /// The deadline expired before the site ran at all.
    Unsampled,
}

impl SiteStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            SiteStatus::Full => "full",
            SiteStatus::EarlyStopped => "early-stopped",
            SiteStatus::Truncated => "truncated",
            SiteStatus::Quarantined(FailureKind::Panic) => "quarantined(panic)",
            SiteStatus::Quarantined(FailureKind::Timeout) => "quarantined(timeout)",
            SiteStatus::Quarantined(FailureKind::PoisonedShard) => "quarantined(poisoned-shard)",
            SiteStatus::Unsampled => "unsampled",
        }
    }

    /// Whether the site's samples participate in SDC/detection rates.
    pub fn trusted(self) -> bool {
        !matches!(self, SiteStatus::Quarantined(_))
    }
}

#[derive(Default)]
struct SchedStats {
    planned: AtomicU64,
    completed: AtomicU64,
    retries: AtomicU64,
    recovered: AtomicU64,
    exhausted: AtomicU64,
    quarantined_sites: AtomicU64,
    quarantined_injections: AtomicU64,
    early_stopped_sites: AtomicU64,
    early_stop_skipped: AtomicU64,
    truncated: AtomicU64,
}

/// Point-in-time copy of a scheduler's accounting, embedded in results
/// and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedSnapshot {
    pub planned: u64,
    pub completed: u64,
    pub retries: u64,
    pub recovered: u64,
    pub exhausted: u64,
    pub quarantined_sites: u64,
    pub quarantined_injections: u64,
    pub early_stopped_sites: u64,
    pub early_stop_skipped: u64,
    pub truncated: u64,
}

impl SchedSnapshot {
    /// Injections with a known fate. The zero-lost-injections invariant
    /// is `accounted() == planned`.
    pub fn accounted(&self) -> u64 {
        self.completed + self.quarantined_injections + self.early_stop_skipped + self.truncated
    }

    /// Fraction of planned work that yielded trustworthy information:
    /// completed and early-stopped injections count (an early stop means
    /// the estimate converged — nothing was lost), quarantined and
    /// deadline-truncated work does not. 1.0 when nothing was planned.
    pub fn completeness(&self) -> f64 {
        if self.planned == 0 {
            return 1.0;
        }
        let lost = self.truncated + self.quarantined_injections;
        (self.planned.saturating_sub(lost)) as f64 / self.planned as f64
    }

    pub fn merge(&mut self, other: &SchedSnapshot) {
        self.planned += other.planned;
        self.completed += other.completed;
        self.retries += other.retries;
        self.recovered += other.recovered;
        self.exhausted += other.exhausted;
        self.quarantined_sites += other.quarantined_sites;
        self.quarantined_injections += other.quarantined_injections;
        self.early_stopped_sites += other.early_stopped_sites;
        self.early_stop_skipped += other.early_stop_skipped;
        self.truncated += other.truncated;
    }
}

/// The run-scoped scheduler. Cheap to construct; share one per run by
/// reference (it is `Sync`).
pub struct Scheduler {
    cfg: SchedConfig,
    deadline: Deadline,
    stats: SchedStats,
}

impl Scheduler {
    pub fn new(cfg: SchedConfig, deadline: Deadline) -> Scheduler {
        Scheduler {
            cfg,
            deadline,
            stats: SchedStats::default(),
        }
    }

    /// A scheduler with default knobs and no deadline — the drop-in for
    /// call sites that predate the scheduler.
    pub fn unbounded(cfg: SchedConfig) -> Scheduler {
        Scheduler::new(cfg, Deadline::none())
    }

    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.exceeded()
    }

    pub fn deadline(&self) -> Deadline {
        self.deadline
    }

    /// Run one injection through the retry loop. `attempt_fn` is called
    /// with the attempt index (0-based); it must be deterministic in that
    /// index for campaign byte-identity to hold. Backoff sleeps are
    /// skipped once the deadline has expired (the attempt schedule — and
    /// therefore the outcome — does not change, only the waiting).
    pub fn run_task<T>(
        &self,
        kind: CampaignKind,
        site: u64,
        mut attempt_fn: impl FnMut(u32) -> AttemptResult<T>,
    ) -> TaskResult<T> {
        let mut attempt = 0u32;
        loop {
            match attempt_fn(attempt) {
                AttemptResult::Ok(value) => {
                    if attempt > 0 {
                        self.stats.recovered.fetch_add(1, Ordering::Relaxed);
                    }
                    return TaskResult::Done {
                        value,
                        retries: attempt,
                    };
                }
                AttemptResult::Failed(reason) => {
                    if attempt >= self.cfg.max_retries {
                        self.stats.exhausted.fetch_add(1, Ordering::Relaxed);
                        return TaskResult::Exhausted {
                            reason,
                            attempts: attempt + 1,
                        };
                    }
                    let delay = backoff_ms(
                        self.cfg.backoff_base_ms,
                        self.cfg.backoff_cap_ms,
                        site,
                        attempt,
                    );
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    if trace::active() {
                        trace::emit(trace::Event::RetryAttempt {
                            kind,
                            site,
                            attempt: u64::from(attempt),
                            backoff_ms: delay,
                            reason: reason.as_str().to_string(),
                        });
                    }
                    if delay > 0 && !self.deadline.exceeded() {
                        std::thread::sleep(Duration::from_millis(delay));
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Try to quarantine a site after `failures` consecutive exhausted
    /// injections. Returns `false` when the cap is reached — the caller
    /// must then record a plain `EngineError` outcome instead, so the
    /// quarantine list can never exceed the cap.
    pub fn try_quarantine(
        &self,
        kind: CampaignKind,
        site: u64,
        reason: FailureKind,
        failures: u32,
    ) -> bool {
        let mut n = self.stats.quarantined_sites.load(Ordering::Relaxed);
        loop {
            if n >= self.cfg.quarantine_cap {
                return false;
            }
            match self.stats.quarantined_sites.compare_exchange_weak(
                n,
                n + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => n = cur,
            }
        }
        if trace::active() {
            trace::emit(trace::Event::Quarantine {
                kind,
                site,
                failures: u64::from(failures),
                reason: reason.as_str().to_string(),
            });
        }
        true
    }

    /// Early-stop check for one site: `Some(half_width)` when enabled and
    /// the Wilson interval for `successes`/`trials` is tight enough.
    pub fn early_stop(&self, successes: u64, trials: u64) -> Option<f64> {
        if self.cfg.ci_half_width <= 0.0 || trials == 0 {
            return None;
        }
        let hw = binomial_ci(successes, trials, self.cfg.ci_z).half_width();
        (hw <= self.cfg.ci_half_width).then_some(hw)
    }

    /// The interval a report should print for a site.
    pub fn site_ci(&self, successes: u64, trials: u64) -> BinomialCi {
        binomial_ci(successes, trials, self.cfg.ci_z)
    }

    // -- accounting ------------------------------------------------------

    pub fn add_planned(&self, n: u64) {
        self.stats.planned.fetch_add(n, Ordering::Relaxed);
    }

    pub fn note_completed(&self, n: u64) {
        self.stats.completed.fetch_add(n, Ordering::Relaxed);
    }

    /// Injections discarded because their site was quarantined (the
    /// triggering injection plus everything not yet run there, or a whole
    /// site skipped on resume).
    pub fn note_quarantine_skipped(&self, n: u64) {
        self.stats
            .quarantined_injections
            .fetch_add(n, Ordering::Relaxed);
    }

    /// A previously-journaled quarantine honoured on resume: the site
    /// takes a cap slot (so resumed runs respect the same cap) but no
    /// fresh Quarantine event is emitted.
    pub fn note_resumed_quarantine(&self) {
        self.stats.quarantined_sites.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_early_stop(
        &self,
        kind: CampaignKind,
        site: u64,
        samples: u64,
        half_width: f64,
        skipped: u64,
    ) {
        self.stats
            .early_stopped_sites
            .fetch_add(1, Ordering::Relaxed);
        self.stats
            .early_stop_skipped
            .fetch_add(skipped, Ordering::Relaxed);
        if trace::active() {
            trace::emit(trace::Event::EarlyStop {
                kind,
                site,
                samples,
                half_width,
            });
        }
    }

    /// Deadline-truncated injections; emits one DeadlineTruncation event
    /// per call, so campaigns report their truncation once, aggregated.
    pub fn note_truncated(&self, kind: CampaignKind, n: u64) {
        if n == 0 {
            return;
        }
        self.stats.truncated.fetch_add(n, Ordering::Relaxed);
        if trace::active() {
            trace::emit(trace::Event::DeadlineTruncation { kind, truncated: n });
        }
    }

    pub fn snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            planned: self.stats.planned.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            recovered: self.stats.recovered.load(Ordering::Relaxed),
            exhausted: self.stats.exhausted.load(Ordering::Relaxed),
            quarantined_sites: self.stats.quarantined_sites.load(Ordering::Relaxed),
            quarantined_injections: self.stats.quarantined_injections.load(Ordering::Relaxed),
            early_stopped_sites: self.stats.early_stopped_sites.load(Ordering::Relaxed),
            early_stop_skipped: self.stats.early_stop_skipped.load(Ordering::Relaxed),
            truncated: self.stats.truncated.load(Ordering::Relaxed),
        }
    }

    /// Emit the run-level SchedSummary trace event from current tallies.
    pub fn emit_summary(&self) {
        if !trace::active() {
            return;
        }
        let s = self.snapshot();
        trace::emit(trace::Event::SchedSummary {
            retries: s.retries,
            recovered: s.recovered,
            exhausted: s.exhausted,
            quarantined_sites: s.quarantined_sites,
            quarantined_injections: s.quarantined_injections,
            early_stopped_sites: s.early_stopped_sites,
            early_stop_skipped: s.early_stop_skipped,
            truncated: s.truncated,
            completeness: s.completeness(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(cfg: SchedConfig) -> Scheduler {
        Scheduler::unbounded(cfg)
    }

    fn fast_cfg() -> SchedConfig {
        SchedConfig {
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            ..SchedConfig::default()
        }
    }

    #[test]
    fn first_try_success_needs_no_retries() {
        let s = sched(fast_cfg());
        let r = s.run_task(CampaignKind::PerInst, 1, |_| AttemptResult::Ok(7u32));
        assert_eq!(
            r,
            TaskResult::Done {
                value: 7,
                retries: 0
            }
        );
        assert_eq!(s.snapshot().recovered, 0);
        assert_eq!(s.snapshot().retries, 0);
    }

    #[test]
    fn transient_failure_recovers_and_counts_once() {
        let s = sched(fast_cfg());
        let r = s.run_task(CampaignKind::PerInst, 1, |attempt| {
            if attempt < 2 {
                AttemptResult::Failed(FailureKind::Panic)
            } else {
                AttemptResult::Ok(42u32)
            }
        });
        assert_eq!(
            r,
            TaskResult::Done {
                value: 42,
                retries: 2
            }
        );
        let snap = s.snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.recovered, 1);
        assert_eq!(snap.exhausted, 0);
    }

    #[test]
    fn persistent_failure_exhausts_the_budget() {
        let s = sched(fast_cfg());
        let r: TaskResult<()> = s.run_task(CampaignKind::Program, 9, |_| {
            AttemptResult::Failed(FailureKind::Timeout)
        });
        assert_eq!(
            r,
            TaskResult::Exhausted {
                reason: FailureKind::Timeout,
                attempts: 3
            }
        );
        assert_eq!(s.snapshot().exhausted, 1);
        assert_eq!(s.snapshot().retries, 2);
    }

    #[test]
    fn zero_retries_restores_fail_fast() {
        let s = sched(SchedConfig {
            max_retries: 0,
            ..fast_cfg()
        });
        let r: TaskResult<()> = s.run_task(CampaignKind::Program, 0, |_| {
            AttemptResult::Failed(FailureKind::Panic)
        });
        assert_eq!(
            r,
            TaskResult::Exhausted {
                reason: FailureKind::Panic,
                attempts: 1
            }
        );
    }

    #[test]
    fn quarantine_respects_the_cap() {
        let s = sched(SchedConfig {
            quarantine_cap: 2,
            ..fast_cfg()
        });
        assert!(s.try_quarantine(CampaignKind::PerInst, 1, FailureKind::Panic, 2));
        assert!(s.try_quarantine(CampaignKind::PerInst, 2, FailureKind::Panic, 2));
        assert!(!s.try_quarantine(CampaignKind::PerInst, 3, FailureKind::Panic, 2));
        assert_eq!(s.snapshot().quarantined_sites, 2);
    }

    #[test]
    fn early_stop_is_off_by_default() {
        let s = sched(SchedConfig::default());
        assert_eq!(s.early_stop(0, 1000), None);
    }

    #[test]
    fn early_stop_fires_once_the_interval_is_tight() {
        let s = sched(SchedConfig {
            ci_half_width: 0.05,
            ..fast_cfg()
        });
        assert_eq!(
            s.early_stop(1, 4),
            None,
            "4 samples are never enough at 5 %"
        );
        let hw = s.early_stop(0, 1000).expect("1000 clean samples converge");
        assert!(hw <= 0.05);
    }

    #[test]
    fn accounting_invariant_holds_across_paths() {
        let s = sched(fast_cfg());
        s.add_planned(100);
        s.note_completed(60);
        s.note_quarantine_skipped(10);
        s.note_early_stop(CampaignKind::PerInst, 3, 12, 0.04, 25);
        s.note_truncated(CampaignKind::PerInst, 5);
        let snap = s.snapshot();
        assert_eq!(snap.accounted(), snap.planned);
        // completeness loses the quarantined and truncated work only
        assert!((snap.completeness() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_complete() {
        let s = sched(SchedConfig::default());
        assert_eq!(s.snapshot().completeness(), 1.0);
        assert_eq!(s.snapshot().accounted(), 0);
    }

    #[test]
    fn snapshots_merge_fieldwise() {
        let s = sched(fast_cfg());
        s.add_planned(10);
        s.note_completed(10);
        let mut a = s.snapshot();
        a.merge(&s.snapshot());
        assert_eq!(a.planned, 20);
        assert_eq!(a.completed, 20);
    }
}
