//! Campaign statistics: binomial confidence intervals.
//!
//! The paper reports 95 % confidence intervals of 0.26 %–3.10 % on its FI
//! measurements (§III-A3); the same Wilson score interval is exposed here
//! so experiment reports can print comparable error bars, and so the
//! scheduler can stop sampling a site once its interval is tight enough.
//!
//! This module is the single home of the Wilson interval for the whole
//! workspace: `minpsid-faultsim` re-exports [`BinomialCi`] and
//! [`binomial_ci`] rather than keeping its own copy, so campaign reports
//! and scheduler early-stopping always agree on the arithmetic.

/// A binomial proportion with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinomialCi {
    pub estimate: f64,
    pub lo: f64,
    pub hi: f64,
}

impl BinomialCi {
    /// The vacuous interval reported when no valid trial exists (zero
    /// samples, or a quarantined site whose samples are untrusted).
    pub fn vacuous() -> BinomialCi {
        BinomialCi {
            estimate: 0.0,
            lo: 0.0,
            hi: 1.0,
        }
    }

    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// Wilson score interval for `successes` out of `trials` at confidence
/// level `z` standard deviations (1.96 ⇒ 95 %).
pub fn binomial_ci(successes: u64, trials: u64, z: f64) -> BinomialCi {
    if trials == 0 {
        return BinomialCi::vacuous();
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    BinomialCi {
        estimate: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_estimate() {
        let ci = binomial_ci(250, 1000, 1.96);
        assert!(ci.lo < ci.estimate && ci.estimate < ci.hi);
        assert!((ci.estimate - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_campaign_has_paper_scale_error_bars() {
        // 1000 injections at p=0.25 -> half width around 2.7 %, inside the
        // paper's reported 0.26 %–3.10 % band
        let ci = binomial_ci(250, 1000, 1.96);
        let hw = ci.half_width();
        assert!(hw > 0.0026 && hw < 0.031, "half width {hw}");
    }

    #[test]
    fn extreme_proportions_stay_in_unit_interval() {
        let ci = binomial_ci(0, 100, 1.96);
        assert_eq!(ci.estimate, 0.0);
        assert!(ci.lo >= 0.0);
        assert!(ci.hi > 0.0, "Wilson interval is open above zero");
        let ci = binomial_ci(100, 100, 1.96);
        assert!(ci.hi <= 1.0);
        assert!(ci.lo < 1.0);
    }

    #[test]
    fn zero_trials_is_vacuous() {
        let ci = binomial_ci(0, 0, 1.96);
        assert_eq!((ci.lo, ci.hi), (0.0, 1.0));
    }

    #[test]
    fn more_trials_narrow_the_interval() {
        let wide = binomial_ci(5, 20, 1.96);
        let narrow = binomial_ci(250, 1000, 1.96);
        assert!(narrow.half_width() < wide.half_width());
    }
}
