//! Property tests for the Wilson score interval (ISSUE 4 satellite):
//! the interval always contains the empirical rate, stays inside the
//! unit interval, and narrows monotonically as samples accumulate.

use minpsid_sched::binomial_ci;
use proptest::prelude::*;
use proptest::proptest;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn interval_contains_the_empirical_rate(
        trials in 1u64..100_000,
        frac in 0u64..=1_000,
        z_mil in 100u64..4_000,
    ) {
        let successes = trials * frac / 1_000;
        let z = z_mil as f64 / 1_000.0;
        let ci = binomial_ci(successes, trials, z);
        let p = successes as f64 / trials as f64;
        prop_assert!((ci.estimate - p).abs() < 1e-12);
        prop_assert!(ci.lo <= p + 1e-12, "lo {} above rate {}", ci.lo, p);
        prop_assert!(ci.hi >= p - 1e-12, "hi {} below rate {}", ci.hi, p);
    }

    #[test]
    fn interval_stays_inside_the_unit_interval(
        trials in 0u64..100_000,
        frac in 0u64..=1_000,
    ) {
        let successes = trials * frac / 1_000;
        let ci = binomial_ci(successes, trials, 1.96);
        prop_assert!(ci.lo >= 0.0 && ci.hi <= 1.0);
        prop_assert!(ci.lo <= ci.hi);
        prop_assert!(ci.half_width() >= 0.0);
    }

    #[test]
    fn more_samples_at_the_same_rate_narrow_the_interval(
        trials in 8u64..10_000,
        frac in 0u64..=1_000,
        growth in 2u64..=16,
    ) {
        // same empirical rate, `growth`x the samples: the interval must
        // not widen (strictly narrows away from degenerate p in {0,1})
        let s1 = trials * frac / 1_000;
        let hw1 = binomial_ci(s1, trials, 1.96).half_width();
        let hw2 = binomial_ci(s1 * growth, trials * growth, 1.96).half_width();
        prop_assert!(hw2 <= hw1 + 1e-12, "hw grew: {hw1} -> {hw2}");
    }
}
