//! 0-1 knapsack instruction selection (paper §II-C).
//!
//! Items are the duplicable instructions, weight = dynamic cycles, value =
//! benefit (Eq. 2), capacity = protection level × total cycles. The greedy
//! benefit-density heuristic is the production path (items number in the
//! thousands and weights in the millions, where exact DP is pointless);
//! the exact DP solver exists for validation and for the knapsack ablation
//! bench.

/// A selection over `n` items.
pub type Selection = Vec<bool>;

/// Greedy 0-1 knapsack by value density (value per unit weight).
///
/// `eligible[i]` masks which items may be chosen at all (non-duplicable
/// instructions are ineligible). Zero-value items are never selected:
/// duplicating an instruction with no measured SDC benefit only spends
/// budget. Zero-weight positive-value items are always selected.
pub fn greedy_select(
    weights: &[u64],
    values: &[f64],
    eligible: &[bool],
    capacity: u64,
) -> Selection {
    assert_eq!(weights.len(), values.len());
    assert_eq!(weights.len(), eligible.len());
    let mut order: Vec<usize> = (0..weights.len())
        .filter(|&i| eligible[i] && values[i] > 0.0)
        .collect();
    order.sort_by(|&a, &b| {
        let da = density(values[a], weights[a]);
        let db = density(values[b], weights[b]);
        db.partial_cmp(&da)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut selected = vec![false; weights.len()];
    let mut used: u64 = 0;
    for i in order {
        if weights[i] == 0 || used + weights[i] <= capacity {
            selected[i] = true;
            used += weights[i];
        }
    }
    selected
}

fn density(value: f64, weight: u64) -> f64 {
    if weight == 0 {
        f64::INFINITY
    } else {
        value / weight as f64
    }
}

/// Exact 0-1 knapsack via dynamic programming over a *scaled* capacity.
///
/// Weights are rescaled so the DP table has at most `max_buckets` columns;
/// with exact weights (small instances / tests) the result is optimal.
pub fn dp_select(
    weights: &[u64],
    values: &[f64],
    eligible: &[bool],
    capacity: u64,
    max_buckets: usize,
) -> Selection {
    assert_eq!(weights.len(), values.len());
    assert_eq!(weights.len(), eligible.len());
    let n = weights.len();
    let mut selected = vec![false; n];
    if capacity == 0 || max_buckets == 0 {
        // only zero-weight items fit
        for i in 0..n {
            if eligible[i] && values[i] > 0.0 && weights[i] == 0 {
                selected[i] = true;
            }
        }
        return selected;
    }
    let scale = (capacity as u128).div_ceil(max_buckets as u128).max(1) as u64;
    let cap = (capacity / scale) as usize;
    let scaled = |w: u64| -> usize { w.div_ceil(scale) as usize };

    let items: Vec<usize> = (0..n).filter(|&i| eligible[i] && values[i] > 0.0).collect();
    // dp[c] = best value with capacity c; keep predecessor bits per item
    let mut dp = vec![0.0f64; cap + 1];
    let mut take = vec![false; items.len() * (cap + 1)];
    for (k, &i) in items.iter().enumerate() {
        let w = scaled(weights[i]);
        if w > cap {
            continue;
        }
        for c in (w..=cap).rev() {
            let cand = dp[c - w] + values[i];
            if cand > dp[c] {
                dp[c] = cand;
                take[k * (cap + 1) + c] = true;
            }
        }
    }
    // reconstruct
    let mut c = cap;
    for (k, &i) in items.iter().enumerate().rev() {
        if take[k * (cap + 1) + c] {
            selected[i] = true;
            c -= scaled(weights[i]);
        }
    }
    selected
}

/// Total weight of a selection.
pub fn selection_weight(weights: &[u64], selected: &[bool]) -> u64 {
    weights
        .iter()
        .zip(selected)
        .filter(|(_, &s)| s)
        .map(|(w, _)| *w)
        .sum()
}

/// Total value of a selection.
pub fn selection_value(values: &[f64], selected: &[bool]) -> f64 {
    values
        .iter()
        .zip(selected)
        .filter(|(_, &s)| s)
        .map(|(v, _)| *v)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_respects_capacity() {
        let w = vec![5, 5, 5, 5];
        let v = vec![1.0, 2.0, 3.0, 4.0];
        let e = vec![true; 4];
        let s = greedy_select(&w, &v, &e, 10);
        assert_eq!(selection_weight(&w, &s), 10);
        // picks the two densest: items 3 and 2
        assert_eq!(s, vec![false, false, true, true]);
    }

    #[test]
    fn greedy_skips_zero_value_items() {
        let w = vec![1, 1];
        let v = vec![0.0, 0.5];
        let e = vec![true, true];
        let s = greedy_select(&w, &v, &e, 100);
        assert_eq!(s, vec![false, true]);
    }

    #[test]
    fn greedy_respects_eligibility() {
        let w = vec![1, 1];
        let v = vec![9.0, 1.0];
        let e = vec![false, true];
        let s = greedy_select(&w, &v, &e, 100);
        assert_eq!(s, vec![false, true]);
    }

    #[test]
    fn greedy_zero_weight_items_always_fit() {
        let w = vec![0, 10];
        let v = vec![0.1, 5.0];
        let e = vec![true, true];
        let s = greedy_select(&w, &v, &e, 0);
        assert_eq!(s, vec![true, false]);
    }

    #[test]
    fn dp_is_optimal_where_greedy_is_not() {
        // classic greedy trap: density favors the small item, but the
        // optimum is the two larger ones
        let w = vec![6, 5, 5];
        let v = vec![7.0, 5.0, 5.0];
        let e = vec![true; 3];
        let greedy = greedy_select(&w, &v, &e, 10);
        let dp = dp_select(&w, &v, &e, 10, 1000);
        assert!(selection_value(&v, &dp) >= selection_value(&v, &greedy));
        assert_eq!(dp, vec![false, true, true]);
        assert!((selection_value(&v, &dp) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dp_respects_capacity_after_scaling() {
        let w: Vec<u64> = (1..40).map(|i| i * 1000).collect();
        let v: Vec<f64> = (1..40).map(|i| i as f64).collect();
        let e = vec![true; w.len()];
        let cap = 50_000;
        let s = dp_select(&w, &v, &e, cap, 256);
        assert!(selection_weight(&w, &s) <= cap + 256 * 1000, "scaled slack");
        assert!(selection_value(&v, &s) > 0.0);
    }

    #[test]
    fn empty_instance() {
        let s = greedy_select(&[], &[], &[], 10);
        assert!(s.is_empty());
        let s = dp_select(&[], &[], &[], 10, 10);
        assert!(s.is_empty());
    }

    #[test]
    fn dp_and_greedy_agree_on_uniform_density() {
        let w = vec![2, 2, 2];
        let v = vec![1.0, 1.0, 1.0];
        let e = vec![true; 3];
        let g = greedy_select(&w, &v, &e, 4);
        let d = dp_select(&w, &v, &e, 4, 100);
        assert_eq!(selection_weight(&w, &g), 4);
        assert_eq!(selection_weight(&w, &d), 4);
    }
}
