//! # minpsid-sid — selective instruction duplication
//!
//! The baseline protection technique of the paper (§II-C):
//!
//! 1. **Profile** (reference input): per-instruction dynamic cycles give
//!    the knapsack *cost* (Eq. 1); per-instruction FI gives the SDC
//!    probability, and `benefit = SDC probability × cost` (Eq. 2).
//! 2. **Instruction selection**: a 0-1 knapsack with capacity
//!    `protection level × total cycles` picks the instructions to
//!    duplicate. (Both the greedy density heuristic used by SID systems in
//!    practice and an exact DP solver are provided; the ablation bench
//!    compares them.)
//! 3. **Code transformation**: each selected instruction is re-executed on
//!    its original operands and a `check` comparing the two results is
//!    placed *before the next synchronization point* (store, call, output,
//!    or control transfer), per §II-C. A transient fault hitting either
//!    copy makes the check fire → `Detected`.
//! 4. **Expected SDC coverage**: the benefit-weighted fraction of the
//!    program's SDC mass that the selection covers — the number SID
//!    reports to developers, and the red bars of Figs. 2 & 6.
//!
//! [`measure_coverage`] then does what the paper's evaluation does: FI
//! campaigns on the unprotected and protected binaries under an arbitrary
//! input, with `coverage = 1 − P_sdc(protected) / P_sdc(unprotected)`.

pub mod knapsack;
pub mod pipeline;
pub mod profile;
pub mod transform;

pub use knapsack::{dp_select, greedy_select, Selection};
pub use pipeline::{
    measure_coverage, run_sid, select_and_protect, CoverageMeasurement, SidConfig, SidResult,
};
pub use profile::CostBenefit;
pub use transform::{
    duplicable, duplicate_module, duplicate_module_with, CheckPlacement, TransformMeta,
};
