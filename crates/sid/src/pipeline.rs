//! End-to-end SID: profile → select → transform → (measure).

use crate::knapsack::{dp_select, greedy_select, Selection};
use crate::profile::CostBenefit;
use crate::transform::{duplicable, duplicate_module, TransformMeta};
use minpsid_faultsim::{
    golden_run, per_instruction_campaign, program_campaign, CampaignConfig, GoldenRun,
    OutcomeCounts, PerInstSdc,
};
use minpsid_interp::{ProgInput, Termination};
use minpsid_ir::Module;

/// SID configuration.
#[derive(Debug, Clone)]
pub struct SidConfig {
    /// Protection level in `[0, 1]` — the fraction of dynamic cycles whose
    /// instructions are duplicated (the paper evaluates 0.3 / 0.5 / 0.7).
    pub protection_level: f64,
    /// FI campaign parameters for the profiling phase.
    pub campaign: CampaignConfig,
    /// Use the exact DP knapsack instead of the greedy heuristic
    /// (ablation; greedy is the default as in deployed SID systems).
    pub use_dp: bool,
}

impl Default for SidConfig {
    fn default() -> Self {
        SidConfig {
            protection_level: 0.5,
            campaign: CampaignConfig::default(),
            use_dp: false,
        }
    }
}

/// Everything SID produces for a program.
#[derive(Debug, Clone)]
pub struct SidResult {
    /// The protected module (the "protected binary" of Fig. 4 ⑨).
    pub protected: Module,
    pub meta: TransformMeta,
    pub selection: Selection,
    /// The coverage SID promises to developers (red bars of Figs. 2/6).
    pub expected_coverage: f64,
    pub cost_benefit: CostBenefit,
    pub golden_ref: GoldenRun,
    pub per_inst: PerInstSdc,
}

/// Run the full baseline-SID pipeline on `module` with the reference
/// input (§II-C: profiling and selection both use the reference input).
pub fn run_sid(
    module: &Module,
    ref_input: &ProgInput,
    cfg: &SidConfig,
) -> Result<SidResult, Termination> {
    let golden = golden_run(module, ref_input, &cfg.campaign)?;
    let per_inst = per_instruction_campaign(module, ref_input, &golden, &cfg.campaign);
    let cb = CostBenefit::build(module, &golden, &per_inst);
    let (selection, expected_coverage, protected, meta) =
        select_and_protect(module, &cb, cfg.protection_level, cfg.use_dp);
    Ok(SidResult {
        protected,
        meta,
        selection,
        expected_coverage,
        cost_benefit: cb,
        golden_ref: golden,
        per_inst,
    })
}

/// Knapsack selection + duplication transform for an existing cost/benefit
/// profile. MINPSID re-enters here after re-prioritizing benefits.
pub fn select_and_protect(
    module: &Module,
    cb: &CostBenefit,
    protection_level: f64,
    use_dp: bool,
) -> (Selection, f64, Module, TransformMeta) {
    let eligible: Vec<bool> = module.iter_insts().map(|(_, i)| duplicable(i)).collect();
    let capacity = cb.capacity(protection_level);
    let selection = if use_dp {
        dp_select(&cb.cost, &cb.benefit, &eligible, capacity, 4096)
    } else {
        greedy_select(&cb.cost, &cb.benefit, &eligible, capacity)
    };
    let expected = cb.expected_coverage(&selection);
    let (protected, meta) = duplicate_module(module, &selection);
    if minpsid_trace::active() {
        let protected_cycles: u64 = cb
            .cost
            .iter()
            .zip(&selection)
            .filter(|(_, &s)| s)
            .map(|(c, _)| *c)
            .sum();
        minpsid_trace::emit(minpsid_trace::Event::Knapsack {
            budget: capacity,
            total_cycles: cb.total_cycles,
            eligible: eligible.iter().filter(|&&e| e).count() as u64,
            selected: selection.iter().filter(|&&s| s).count() as u64,
            protected_cycle_fraction: protected_cycles as f64 / cb.total_cycles.max(1) as f64,
            expected_coverage: expected,
        });
    }
    (selection, expected, protected, meta)
}

/// FI-measured coverage of a protected program on one input (the paper's
/// evaluation loop: 1000-fault campaigns on the unprotected and the
/// protected binary; coverage is the SDCs mitigated).
#[derive(Debug, Clone)]
pub struct CoverageMeasurement {
    pub unprotected_sdc: f64,
    pub protected_sdc: f64,
    /// `1 − P_sdc(protected) / P_sdc(unprotected)`, clamped to `[0, 1]`;
    /// defined as 1 when the unprotected program shows no SDCs at all.
    pub coverage: f64,
    pub unprotected_counts: OutcomeCounts,
    pub protected_counts: OutcomeCounts,
}

/// Measure SDC coverage of `protected` (vs `original`) under `input`.
pub fn measure_coverage(
    original: &Module,
    protected: &Module,
    input: &ProgInput,
    campaign: &CampaignConfig,
) -> Result<CoverageMeasurement, Termination> {
    let g_orig = golden_run(original, input, campaign)?;
    let g_prot = golden_run(protected, input, campaign)?;
    debug_assert_eq!(
        g_orig.output, g_prot.output,
        "protection must preserve program semantics"
    );
    let c_orig = program_campaign(original, input, &g_orig, campaign);
    let c_prot = program_campaign(protected, input, &g_prot, campaign);
    let pu = c_orig.sdc_prob();
    let pp = c_prot.sdc_prob();
    let coverage = if pu <= 0.0 {
        1.0
    } else {
        (1.0 - pp / pu).clamp(0.0, 1.0)
    };
    Ok(CoverageMeasurement {
        unprotected_sdc: pu,
        protected_sdc: pp,
        coverage,
        unprotected_counts: c_orig.counts,
        protected_counts: c_prot.counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::Scalar;

    fn kernel() -> Module {
        minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                let acc = 0.0;
                let w = 1.0;
                for i = 0 to n {
                    let x = float(i) * 0.25;
                    acc = acc + x * w;
                    if i % 8 == 0 { w = w + 0.125; }
                }
                out_f(acc);
            }
            "#,
            "sid-pipeline-test",
        )
        .unwrap()
    }

    fn quick_cfg(level: f64) -> SidConfig {
        SidConfig {
            protection_level: level,
            campaign: CampaignConfig::quick(17),
            use_dp: false,
        }
    }

    #[test]
    fn sid_selects_within_budget_and_reports_coverage() {
        let m = kernel();
        let input = ProgInput::scalars(vec![Scalar::I(48)]);
        let r = run_sid(&m, &input, &quick_cfg(0.5)).unwrap();
        assert!(r.expected_coverage > 0.0 && r.expected_coverage <= 1.0);
        let used: u64 = r
            .cost_benefit
            .cost
            .iter()
            .zip(&r.selection)
            .filter(|(_, &s)| s)
            .map(|(c, _)| *c)
            .sum();
        assert!(used <= r.cost_benefit.capacity(0.5));
        assert!(r.meta.num_dups > 0);
    }

    #[test]
    fn expected_coverage_monotone_in_level() {
        let m = kernel();
        let input = ProgInput::scalars(vec![Scalar::I(48)]);
        let lo = run_sid(&m, &input, &quick_cfg(0.3)).unwrap();
        let hi = run_sid(&m, &input, &quick_cfg(0.7)).unwrap();
        assert!(hi.expected_coverage >= lo.expected_coverage - 1e-12);
    }

    #[test]
    fn protection_preserves_output_on_other_inputs() {
        let m = kernel();
        let ref_input = ProgInput::scalars(vec![Scalar::I(48)]);
        let r = run_sid(&m, &ref_input, &quick_cfg(0.5)).unwrap();
        for n in [1, 7, 100] {
            let input = ProgInput::scalars(vec![Scalar::I(n)]);
            let a = minpsid_interp::Interp::new(&m, Default::default()).run(&input);
            let b = minpsid_interp::Interp::new(&r.protected, Default::default()).run(&input);
            assert_eq!(a.output, b.output, "n={n}");
        }
    }

    #[test]
    fn measured_coverage_on_reference_input_tracks_expected() {
        let m = kernel();
        let input = ProgInput::scalars(vec![Scalar::I(48)]);
        let mut cfg = quick_cfg(0.7);
        cfg.campaign.injections = 400;
        let r = run_sid(&m, &input, &cfg).unwrap();
        let meas = measure_coverage(&m, &r.protected, &input, &cfg.campaign).unwrap();
        assert!(
            meas.protected_sdc <= meas.unprotected_sdc,
            "protection must not increase the SDC rate: {meas:?}"
        );
        assert!(meas.coverage > 0.0, "70% level must mitigate something");
        assert!(meas.protected_counts.detected > 0);
    }

    #[test]
    fn zero_protection_level_changes_nothing() {
        let m = kernel();
        let input = ProgInput::scalars(vec![Scalar::I(32)]);
        let r = run_sid(&m, &input, &quick_cfg(0.0)).unwrap();
        assert_eq!(r.meta.num_dups, 0);
        assert_eq!(r.expected_coverage, 0.0);
    }

    #[test]
    fn dp_selection_value_at_least_greedy() {
        let m = kernel();
        let input = ProgInput::scalars(vec![Scalar::I(48)]);
        let greedy = run_sid(&m, &input, &quick_cfg(0.3)).unwrap();
        let mut dp_cfg = quick_cfg(0.3);
        dp_cfg.use_dp = true;
        let dp = run_sid(&m, &input, &dp_cfg).unwrap();
        // same profile (same seed) -> comparable benefit sums
        assert!(dp.expected_coverage >= greedy.expected_coverage - 0.05);
    }
}
