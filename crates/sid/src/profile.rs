//! Cost/benefit profile construction (paper Eqs. 1–2).

use minpsid_faultsim::{GoldenRun, PerInstSdc};
use minpsid_ir::Module;

/// Per-instruction cost and benefit, dense in module numbering order.
///
/// * `cost[i]` — dynamic cycles attributed to static instruction `i` under
///   the profiling input (the numerator of Eq. 1).
/// * `benefit[i]` — `cost_fraction(i) × sdc_prob(i)` (Eq. 2): the share of
///   the program's total SDC exposure that protecting `i` removes.
#[derive(Debug, Clone)]
pub struct CostBenefit {
    pub cost: Vec<u64>,
    pub benefit: Vec<f64>,
    pub sdc_prob: Vec<f64>,
    pub dyn_counts: Vec<u64>,
    pub total_cycles: u64,
}

impl CostBenefit {
    /// Combine a golden profile with a per-instruction FI campaign.
    pub fn build(module: &Module, golden: &GoldenRun, per_inst: &PerInstSdc) -> Self {
        let n = module.num_insts();
        assert_eq!(golden.profile.inst_cycles.len(), n);
        assert_eq!(per_inst.sdc_prob.len(), n);
        let total_cycles = golden.profile.total_cycles.max(1);
        let mut benefit = vec![0.0; n];
        for (i, b) in benefit.iter_mut().enumerate() {
            let cost_fraction = golden.profile.inst_cycles[i] as f64 / total_cycles as f64;
            *b = cost_fraction * per_inst.sdc_prob[i];
        }
        CostBenefit {
            cost: golden.profile.inst_cycles.clone(),
            benefit,
            sdc_prob: per_inst.sdc_prob.clone(),
            dyn_counts: golden.profile.inst_counts.clone(),
            total_cycles,
        }
    }

    pub fn len(&self) -> usize {
        self.cost.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cost.is_empty()
    }

    /// Total benefit mass (the denominator of expected-coverage).
    pub fn total_benefit(&self) -> f64 {
        self.benefit.iter().sum()
    }

    /// Expected SDC coverage of a selection: the benefit-weighted share of
    /// SDC mass covered (§II-C "expected SDC coverage"). A program with no
    /// measured SDC mass is trivially fully covered.
    pub fn expected_coverage(&self, selected: &[bool]) -> f64 {
        let total = self.total_benefit();
        if total <= 0.0 {
            return 1.0;
        }
        let covered: f64 = self
            .benefit
            .iter()
            .zip(selected)
            .filter(|(_, &s)| s)
            .map(|(b, _)| *b)
            .sum();
        covered / total
    }

    /// Knapsack capacity for a protection level in `[0, 1]`.
    pub fn capacity(&self, protection_level: f64) -> u64 {
        (protection_level.clamp(0.0, 1.0) * self.total_cycles as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_faultsim::{golden_run, per_instruction_campaign, CampaignConfig};
    use minpsid_interp::{ProgInput, Scalar};

    fn setup() -> (Module, CostBenefit) {
        let m = minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                let acc = 0.0;
                for i = 0 to n {
                    acc = acc + sqrt(float(i));
                }
                out_f(acc);
            }
            "#,
            "cb-test",
        )
        .unwrap();
        let input = ProgInput::scalars(vec![Scalar::I(40)]);
        let cfg = CampaignConfig::quick(1);
        let g = golden_run(&m, &input, &cfg).unwrap();
        let p = per_instruction_campaign(&m, &input, &g, &cfg);
        let cb = CostBenefit::build(&m, &g, &p);
        (m, cb)
    }

    #[test]
    fn benefit_is_cost_fraction_times_sdc_prob() {
        let (_, cb) = setup();
        for i in 0..cb.len() {
            let expected = cb.cost[i] as f64 / cb.total_cycles as f64 * cb.sdc_prob[i];
            assert!((cb.benefit[i] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn expected_coverage_bounds() {
        let (_, cb) = setup();
        let none = vec![false; cb.len()];
        let all = vec![true; cb.len()];
        assert_eq!(cb.expected_coverage(&none), 0.0);
        assert!((cb.expected_coverage(&all) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_scales_with_level() {
        let (_, cb) = setup();
        assert_eq!(cb.capacity(0.0), 0);
        assert!(cb.capacity(0.5) > 0);
        assert!(cb.capacity(0.5) <= cb.capacity(0.7));
        assert_eq!(cb.capacity(1.0), cb.total_cycles);
        // out-of-range levels are clamped
        assert_eq!(cb.capacity(2.0), cb.total_cycles);
    }

    #[test]
    fn unexecuted_instructions_have_zero_benefit() {
        let (m, cb) = setup();
        for i in 0..cb.len() {
            if cb.dyn_counts[i] == 0 {
                assert_eq!(cb.benefit[i], 0.0);
            }
        }
        let _ = m;
    }
}
