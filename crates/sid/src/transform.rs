//! The duplication code transform (paper Fig. 1c).
//!
//! Each selected instruction is cloned right after itself, recomputing the
//! same operands; a `check` comparing original and duplicate is inserted
//! *before the next synchronization point* (store, call, output, control
//! transfer — §II-C), which is where a corrupted value could escape the
//! protected data-flow. Because a transient fault affects only one
//! instruction at a time, the immediate re-execution is fault-free and the
//! mismatch is detected at the check.

use minpsid_ir::module::is_sync_point;
use minpsid_ir::{Block, FuncId, Function, GlobalInstId, Inst, InstId, InstKind, Module};

/// What a static instruction in the *protected* module is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Carried over from the original module (dense original index).
    Original(usize),
    /// Duplicate of an original instruction (dense original index).
    Dup(usize),
    /// A comparison check inserted by the transform.
    Check,
}

/// Mapping between the original and the protected module.
#[derive(Debug, Clone)]
pub struct TransformMeta {
    /// Dense original index → id in the protected module.
    pub orig_to_new: Vec<GlobalInstId>,
    /// Role of every static instruction of the protected module (dense in
    /// the protected module's numbering).
    pub roles: Vec<Role>,
    pub num_dups: usize,
    pub num_checks: usize,
}

impl TransformMeta {
    /// Fraction of *dynamic* instructions in a protected-run profile that
    /// are duplicates — the paper's §VIII-A "amount of dynamic instructions
    /// duplicated" measurement.
    pub fn dynamic_dup_fraction(&self, protected_inst_counts: &[u64]) -> f64 {
        assert_eq!(self.roles.len(), protected_inst_counts.len());
        let mut orig = 0u64;
        let mut dup = 0u64;
        for (role, &count) in self.roles.iter().zip(protected_inst_counts) {
            match role {
                Role::Original(_) => orig += count,
                Role::Dup(_) => dup += count,
                Role::Check => {}
            }
        }
        if orig == 0 {
            0.0
        } else {
            dup as f64 / orig as f64
        }
    }

    /// Fraction of dynamic cycles added by duplication + checks relative
    /// to the original instructions' cycles (performance overhead proxy).
    pub fn dynamic_cycle_overhead(&self, protected_inst_cycles: &[u64]) -> f64 {
        assert_eq!(self.roles.len(), protected_inst_cycles.len());
        let mut orig = 0u64;
        let mut added = 0u64;
        for (role, &cycles) in self.roles.iter().zip(protected_inst_cycles) {
            match role {
                Role::Original(_) => orig += cycles,
                Role::Dup(_) | Role::Check => added += cycles,
            }
        }
        if orig == 0 {
            0.0
        } else {
            added as f64 / orig as f64
        }
    }
}

/// Whether the transform can duplicate this instruction: pure
/// value-producing operations. Calls (side effects), allocations (distinct
/// result by design), params, and control flow are not duplicable —
/// matching what IR-level SID systems duplicate in practice.
pub fn duplicable(inst: &Inst) -> bool {
    if inst.ty.is_none() {
        return false;
    }
    matches!(
        inst.kind,
        InstKind::Bin { .. }
            | InstKind::Un { .. }
            | InstKind::Cmp { .. }
            | InstKind::Select { .. }
            | InstKind::Cast { .. }
            | InstKind::Load { .. }
            | InstKind::NArgs
            | InstKind::ArgI { .. }
            | InstKind::ArgF { .. }
            | InstKind::DataLen { .. }
            | InstKind::DataI { .. }
            | InstKind::DataF { .. }
    )
}

/// Where the transform places duplication checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckPlacement {
    /// Before the next synchronization point (paper §II-C) — checks are
    /// batched, so consecutive duplicated instructions share no extra
    /// control overhead until a value could escape.
    #[default]
    BeforeSyncPoint,
    /// Immediately after each duplicate (ablation): lowest detection
    /// latency, one check per duplicate at the same position.
    Immediate,
}

/// Duplicate the selected instructions (dense mask over the original
/// module) and insert checks. Returns the protected module plus the
/// original↔protected mapping.
pub fn duplicate_module(module: &Module, selected: &[bool]) -> (Module, TransformMeta) {
    duplicate_module_with(module, selected, CheckPlacement::BeforeSyncPoint)
}

/// [`duplicate_module`] with an explicit check-placement policy.
pub fn duplicate_module_with(
    module: &Module,
    selected: &[bool],
    placement: CheckPlacement,
) -> (Module, TransformMeta) {
    let numbering = module.numbering();
    assert_eq!(selected.len(), numbering.len());

    let mut out = Module::new(format!("{}+sid", module.name));
    out.entry = module.entry;
    let mut orig_to_new = vec![
        GlobalInstId {
            func: FuncId(0),
            inst: InstId(0)
        };
        numbering.len()
    ];
    let mut roles_per_func: Vec<Vec<Role>> = Vec::with_capacity(module.funcs.len());
    let mut num_dups = 0usize;
    let mut num_checks = 0usize;

    for (fid, func) in module.iter_funcs() {
        let mut new_func = Function::new(func.name.clone(), func.params.clone(), func.ret);
        let mut roles: Vec<Role> = Vec::with_capacity(func.insts.len());
        // old local inst id -> new local inst id
        let mut map: Vec<Option<InstId>> = vec![None; func.insts.len()];

        for (_bid, block) in func.iter_blocks() {
            let mut new_block = Block {
                insts: Vec::with_capacity(block.insts.len()),
                name: block.name.clone(),
            };
            // (orig_new, dup_new) pairs awaiting their check
            let mut pending: Vec<(InstId, InstId)> = Vec::new();

            let push =
                |f: &mut Function, b: &mut Block, roles: &mut Vec<Role>, inst: Inst, role: Role| {
                    let id = InstId(f.insts.len() as u32);
                    f.insts.push(inst);
                    b.insts.push(id);
                    roles.push(role);
                    id
                };

            for &old_id in &block.insts {
                let old_inst = func.inst(old_id);
                let dense = numbering.index(GlobalInstId {
                    func: fid,
                    inst: old_id,
                });

                // remap operands
                let mut kind = old_inst.kind.clone();
                for op in kind.operands_mut() {
                    if let minpsid_ir::Operand::Value(v) = op {
                        *v = map[v.index()].expect("operand defined before use");
                    }
                }

                // flush pending checks before a synchronization point
                if is_sync_point(&kind) {
                    for (orig, dup) in pending.drain(..) {
                        push(
                            &mut new_func,
                            &mut new_block,
                            &mut roles,
                            Inst::new(
                                InstKind::Check {
                                    a: orig.into(),
                                    b: dup.into(),
                                },
                                None,
                            ),
                            Role::Check,
                        );
                        num_checks += 1;
                    }
                }

                let dup_kind = kind.clone();
                let mut new_inst = Inst::new(kind, old_inst.ty);
                new_inst.name = old_inst.name.clone();
                let new_id = push(
                    &mut new_func,
                    &mut new_block,
                    &mut roles,
                    new_inst,
                    Role::Original(dense),
                );
                map[old_id.index()] = Some(new_id);

                if selected[dense] && duplicable(old_inst) {
                    let dup_id = push(
                        &mut new_func,
                        &mut new_block,
                        &mut roles,
                        Inst::new(dup_kind, old_inst.ty),
                        Role::Dup(dense),
                    );
                    num_dups += 1;
                    match placement {
                        CheckPlacement::BeforeSyncPoint => pending.push((new_id, dup_id)),
                        CheckPlacement::Immediate => {
                            push(
                                &mut new_func,
                                &mut new_block,
                                &mut roles,
                                Inst::new(
                                    InstKind::Check {
                                        a: new_id.into(),
                                        b: dup_id.into(),
                                    },
                                    None,
                                ),
                                Role::Check,
                            );
                            num_checks += 1;
                        }
                    }
                }
            }
            debug_assert!(
                pending.is_empty(),
                "terminator (a sync point) must flush all checks"
            );
            new_func.blocks.push(new_block);
        }

        // record the global mapping
        for (old_local, new_local) in map.iter().enumerate() {
            let dense = numbering.index(GlobalInstId {
                func: fid,
                inst: InstId(old_local as u32),
            });
            orig_to_new[dense] = GlobalInstId {
                func: fid,
                inst: new_local.expect("every instruction was emitted"),
            };
        }
        roles_per_func.push(roles);
        out.funcs.push(new_func);
    }

    let roles: Vec<Role> = roles_per_func.into_iter().flatten().collect();
    (
        out,
        TransformMeta {
            orig_to_new,
            roles,
            num_dups,
            num_checks,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{ExecConfig, Interp, ProgInput, Scalar};
    use minpsid_ir::verify_module;

    fn kernel() -> Module {
        minic::compile(
            r#"
            fn main() {
                let n = arg_i(0);
                let acc = 0;
                for i = 0 to n {
                    acc = acc + i * i;
                }
                out_i(acc);
            }
            "#,
            "dup-test",
        )
        .unwrap()
    }

    #[test]
    fn immediate_placement_preserves_semantics_and_adds_one_check_per_dup() {
        let m = kernel();
        let all = vec![true; m.num_insts()];
        let (protected, meta) = duplicate_module_with(&m, &all, CheckPlacement::Immediate);
        verify_module(&protected).expect("verifies");
        assert_eq!(meta.num_checks, meta.num_dups);
        let input = ProgInput::scalars(vec![Scalar::I(15)]);
        let a = Interp::new(&m, ExecConfig::default()).run(&input);
        let b = Interp::new(&protected, ExecConfig::default()).run(&input);
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn sync_placement_batches_checks() {
        let m = kernel();
        let all = vec![true; m.num_insts()];
        let (_, sync_meta) = duplicate_module_with(&m, &all, CheckPlacement::BeforeSyncPoint);
        let (_, imm_meta) = duplicate_module_with(&m, &all, CheckPlacement::Immediate);
        assert_eq!(sync_meta.num_dups, imm_meta.num_dups);
        assert_eq!(sync_meta.num_checks, imm_meta.num_checks);
    }

    #[test]
    fn full_duplication_preserves_semantics() {
        let m = kernel();
        let all = vec![true; m.num_insts()];
        let (protected, meta) = duplicate_module(&m, &all);
        verify_module(&protected).expect("protected module verifies");
        assert!(meta.num_dups > 0);
        assert!(meta.num_checks > 0);

        let input = ProgInput::scalars(vec![Scalar::I(20)]);
        let a = Interp::new(&m, ExecConfig::default()).run(&input);
        let b = Interp::new(&protected, ExecConfig::default()).run(&input);
        assert!(b.exited(), "{:?}", b.termination);
        assert_eq!(a.output, b.output, "duplication must not change output");
        assert!(b.steps > a.steps, "duplication adds dynamic instructions");
    }

    #[test]
    fn empty_selection_is_identity_modulo_name() {
        let m = kernel();
        let none = vec![false; m.num_insts()];
        let (protected, meta) = duplicate_module(&m, &none);
        assert_eq!(meta.num_dups, 0);
        assert_eq!(meta.num_checks, 0);
        assert_eq!(protected.num_insts(), m.num_insts());
        let input = ProgInput::scalars(vec![Scalar::I(7)]);
        let a = Interp::new(&m, ExecConfig::default()).run(&input);
        let b = Interp::new(&protected, ExecConfig::default()).run(&input);
        assert_eq!(a.output, b.output);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn roles_align_with_protected_numbering() {
        let m = kernel();
        let all = vec![true; m.num_insts()];
        let (protected, meta) = duplicate_module(&m, &all);
        assert_eq!(meta.roles.len(), protected.num_insts());
        let originals = meta
            .roles
            .iter()
            .filter(|r| matches!(r, Role::Original(_)))
            .count();
        assert_eq!(originals, m.num_insts());
        // every original maps to an instruction whose role says Original
        let numbering = protected.numbering();
        for (dense, gid) in meta.orig_to_new.iter().enumerate() {
            let new_dense = numbering.index(*gid);
            assert_eq!(meta.roles[new_dense], Role::Original(dense));
        }
    }

    #[test]
    fn checks_are_placed_before_sync_points() {
        let m = kernel();
        let all = vec![true; m.num_insts()];
        let (protected, _) = duplicate_module(&m, &all);
        // in every block, scan: no Check may appear after a store/out/call
        // with a pending dup before it — weaker invariant checked here:
        // every block's checks precede its terminator
        for (_, f) in protected.iter_funcs() {
            for (_, b) in f.iter_blocks() {
                let term_pos = b.insts.len() - 1;
                for (pos, &iid) in b.insts.iter().enumerate() {
                    if matches!(f.inst(iid).kind, InstKind::Check { .. }) {
                        assert!(pos < term_pos);
                    }
                }
            }
        }
    }

    #[test]
    fn faults_on_duplicated_instructions_are_detected() {
        use minpsid_faultsim::{golden_run, program_campaign, CampaignConfig};
        let m = kernel();
        let all = vec![true; m.num_insts()];
        let (protected, _) = duplicate_module(&m, &all);
        let input = ProgInput::scalars(vec![Scalar::I(30)]);
        let cfg = CampaignConfig {
            injections: 300,
            seed: 5,
            ..CampaignConfig::default()
        };
        let g = golden_run(&protected, &input, &cfg).unwrap();
        let c = program_campaign(&protected, &input, &g, &cfg);
        assert!(
            c.counts.detected > 0,
            "full duplication must detect faults: {:?}",
            c.counts
        );
        // under full duplication, SDCs should be rare compared to the
        // detected count (only non-duplicable instructions leak)
        assert!(c.counts.detected > c.counts.sdc);
    }

    #[test]
    fn dynamic_dup_fraction_is_selection_dependent() {
        let m = kernel();
        let input = ProgInput::scalars(vec![Scalar::I(25)]);
        let exec = ExecConfig {
            profile: true,
            ..ExecConfig::default()
        };

        let all = vec![true; m.num_insts()];
        let (p_all, meta_all) = duplicate_module(&m, &all);
        let r = Interp::new(&p_all, exec.clone()).run(&input);
        let frac_all = meta_all.dynamic_dup_fraction(&r.profile.unwrap().inst_counts);

        let none = vec![false; m.num_insts()];
        let (p_none, meta_none) = duplicate_module(&m, &none);
        let r = Interp::new(&p_none, exec).run(&input);
        let frac_none = meta_none.dynamic_dup_fraction(&r.profile.unwrap().inst_counts);

        assert_eq!(frac_none, 0.0);
        assert!(
            frac_all > 0.3,
            "most dynamic instructions duplicable: {frac_all}"
        );
    }
}
