//! Self-verifying content-addressed artifact store.
//!
//! Every artifact is keyed by the SHA-256 of its bytes and lives at
//! `objects/<first 2 hex>/<64 hex>.obj`. Publishing is a crash-safe
//! two-phase write (hidden tmp sibling + fsync + rename + directory
//! fsync), so a partial publish is never visible under its final name.
//! Every load re-hashes the bytes and compares against the requested
//! digest: a mismatch is *never* returned to the caller — the object is
//! moved to `corrupt/` (quarantined) and surfaced as
//! [`StoreError::Corrupt`], and the caller falls back to recomputing the
//! artifact (goldens, checkpoints, spool segments, and compacted WALs
//! are all re-derivable). A flipped bit on disk therefore costs one
//! recomputation instead of a silently wrong campaign report.
//!
//! Human-readable names map onto digests through `refs/<kind>/<name>.ref`
//! files (one hex digest per file, also written two-phase), which is what
//! makes cross-invocation lookups (“the golden for fingerprint X”)
//! possible without trusting anything but the digest.
//!
//! `scrub` walks every object and verifies it in place; `gc` drops
//! objects no ref points at; `ls` lists objects with their back-refs.
//! The `--chaos-flip-artifact-one-in` knob (wired through [`chaos`] and
//! [`ArtifactStore::set_chaos_flip`]) flips one bit in every Nth freshly
//! published object — between write and read — to prove end to end that
//! corruption is detected, quarantined, and recomputed, never consumed.

mod digest;
pub use digest::{sha256, Digest};

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const OBJECTS: &str = "objects";
const CORRUPT: &str = "corrupt";
const REFS: &str = "refs";
const CHAOS: &str = "chaos";
const OBJ_EXT: &str = "obj";

/// Process-global default for the chaos bit-flip knob. The CLI arms it
/// once from `--chaos-flip-artifact-one-in`; every store opened afterward
/// inherits it (workers re-exec the CLI, so the flag forwards naturally).
/// Tests that need chaos should prefer [`ArtifactStore::set_chaos_flip`]
/// on their own store instance — the global would leak across parallel
/// tests in the same process.
pub mod chaos {
    use std::sync::atomic::{AtomicU64, Ordering};

    static DEFAULT_FLIP_ONE_IN: AtomicU64 = AtomicU64::new(0);

    /// Arm (n > 0) or disarm (n = 0) the default flip rate for stores
    /// opened after this call.
    pub fn set_flip_one_in(n: u64) {
        DEFAULT_FLIP_ONE_IN.store(n, Ordering::Relaxed);
    }

    /// Current default flip rate (0 = disabled).
    pub fn flip_one_in() -> u64 {
        DEFAULT_FLIP_ONE_IN.load(Ordering::Relaxed)
    }
}

/// Typed load failure. `Corrupt` is the one callers must handle: the
/// object failed digest verification, has already been moved to
/// `corrupt/`, and the artifact must be recomputed.
#[derive(Debug)]
pub enum StoreError {
    Io(io::Error),
    /// Digest verification failed; the object was quarantined to
    /// `quarantined` and will never be served.
    Corrupt {
        digest: Digest,
        quarantined: PathBuf,
    },
    /// No object with this digest exists (never published, garbage
    /// collected, or previously quarantined).
    Missing(Digest),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o: {e}"),
            StoreError::Corrupt {
                digest,
                quarantined,
            } => write!(
                f,
                "object {digest} failed digest verification; quarantined to {}",
                quarantined.display()
            ),
            StoreError::Missing(d) => write!(f, "object {d} not in store"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// What a full-store verification pass found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Objects examined (verified or quarantined).
    pub objects: u64,
    /// Total bytes hashed.
    pub bytes: u64,
    /// Objects that failed verification and were quarantined:
    /// `(hex digest, artifact class from refs — "object" if unreferenced)`.
    pub quarantined: Vec<(String, String)>,
    /// Refs whose target object does not exist (earlier quarantine or
    /// gc); the next campaign run recomputes these.
    pub dangling_refs: Vec<String>,
}

impl ScrubReport {
    /// True when this pass itself found and quarantined corruption.
    pub fn found_corruption(&self) -> bool {
        !self.quarantined.is_empty()
    }
}

/// What a garbage-collection pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    pub kept: u64,
    pub removed: u64,
    pub bytes_freed: u64,
    /// Stale two-phase tmp files swept (crashed publishes).
    pub tmp_swept: u64,
}

/// One `ls` row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsEntry {
    pub digest: Digest,
    pub bytes: u64,
    /// Back-references as `kind/name`, sorted.
    pub refs: Vec<String>,
}

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Crash-safe two-phase file write: the bytes land in a hidden tmp
/// sibling (`.{name}.tmp.{pid}.{seq}`), are fsynced, then renamed over
/// the final path, and the directory entry is fsynced too. A crash at
/// any point leaves either the old file or the new one — never a torn
/// mix — plus at worst a stale tmp sibling (swept by [`ArtifactStore::gc`]).
///
/// Exported because the journal's WAL compaction publishes through the
/// same machinery.
pub fn two_phase_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "two_phase_write: no file name")
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    // Test-only crash point: park between the durable tmp write and the
    // rename so a SIGKILL here must leave the final path untouched.
    if std::env::var_os("MINPSID_STORE_CRASH").is_some_and(|v| v == "hang-before-rename") {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    fs::rename(&tmp, path)?;
    File::open(&dir)?.sync_all()?;
    Ok(())
}

/// FNV-1a 64 over raw bytes — only used to pick a deterministic bit to
/// flip under chaos, never for integrity.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn emit(op: &str, artifact: &str, bytes: u64) {
    minpsid_trace::emit(minpsid_trace::Event::StoreEvent {
        op: op.to_string(),
        artifact: artifact.to_string(),
        bytes,
    });
}

/// A content-addressed store rooted at one directory. Cheap to open;
/// safe to share across threads (all mutation happens through atomic
/// filesystem operations) and across processes (fleet workers and the
/// supervisor open the same root independently).
pub struct ArtifactStore {
    root: PathBuf,
    /// Chaos: flip one bit in every Nth freshly published object
    /// (0 = off). Each distinct digest is flipped at most once, enforced
    /// cross-process by a marker file, so recomputed artifacts republish
    /// clean instead of looping forever.
    flip_one_in: AtomicU64,
    publishes: AtomicU64,
}

impl ArtifactStore {
    /// Open (creating if needed) a store rooted at `root`. Inherits the
    /// process-wide [`chaos`] flip rate.
    pub fn open(root: &Path) -> io::Result<ArtifactStore> {
        fs::create_dir_all(root.join(OBJECTS))?;
        fs::create_dir_all(root.join(CORRUPT))?;
        fs::create_dir_all(root.join(REFS))?;
        Ok(ArtifactStore {
            root: root.to_path_buf(),
            flip_one_in: AtomicU64::new(chaos::flip_one_in()),
            publishes: AtomicU64::new(0),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Override the chaos flip rate for this store instance (0 = off).
    pub fn set_chaos_flip(&self, one_in: u64) {
        self.flip_one_in.store(one_in, Ordering::Relaxed);
    }

    fn object_path(&self, digest: &Digest) -> PathBuf {
        let hex = digest.hex();
        self.root
            .join(OBJECTS)
            .join(&hex[..2])
            .join(format!("{hex}.{OBJ_EXT}"))
    }

    /// Publish `bytes` as an object of artifact class `kind` (the class
    /// only labels trace events and `ls`; the address is the digest).
    /// Idempotent: republishing existing content is a no-op, and two
    /// racing publishers of the same bytes both succeed with intact
    /// content (atomic rename, identical payloads). The no-op path still
    /// verifies the resident object — if it rotted in place since it was
    /// published, it is quarantined and replaced with the fresh bytes
    /// rather than trusted by name.
    pub fn publish(&self, kind: &str, bytes: &[u8]) -> io::Result<Digest> {
        let digest = sha256(bytes);
        let path = self.object_path(&digest);
        match fs::read(&path) {
            Ok(existing) if sha256(&existing) == digest => {
                self.maybe_flip(kind, &digest, &path)?;
                return Ok(digest);
            }
            Ok(existing) => {
                self.quarantine_file(&path, &digest.hex())?;
                emit("quarantine", kind, existing.len() as u64);
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        fs::create_dir_all(path.parent().unwrap())?;
        two_phase_write(&path, bytes)?;
        emit("publish", kind, bytes.len() as u64);
        self.maybe_flip(kind, &digest, &path)?;
        Ok(digest)
    }

    /// Load and *verify* an object. A digest mismatch quarantines the
    /// object and returns [`StoreError::Corrupt`]; corrupt bytes are
    /// never returned.
    pub fn load(&self, kind: &str, digest: &Digest) -> Result<Vec<u8>, StoreError> {
        let path = self.object_path(digest);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(StoreError::Missing(*digest))
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        if sha256(&bytes) != *digest {
            let quarantined = self.quarantine_file(&path, &digest.hex())?;
            emit("quarantine", kind, bytes.len() as u64);
            return Err(StoreError::Corrupt {
                digest: *digest,
                quarantined,
            });
        }
        emit("load", kind, bytes.len() as u64);
        Ok(bytes)
    }

    /// True if an object with this digest is currently present (no
    /// verification; use [`ArtifactStore::load`] before trusting it).
    pub fn contains(&self, digest: &Digest) -> bool {
        self.object_path(digest).exists()
    }

    fn ref_path(&self, kind: &str, name: &str) -> PathBuf {
        self.root.join(REFS).join(kind).join(format!("{name}.ref"))
    }

    /// Point `refs/<kind>/<name>` at `digest` (two-phase, so a crash
    /// leaves either the old ref or the new one).
    pub fn set_ref(&self, kind: &str, name: &str, digest: &Digest) -> io::Result<()> {
        let path = self.ref_path(kind, name);
        fs::create_dir_all(path.parent().unwrap())?;
        two_phase_write(&path, format!("{}\n", digest.hex()).as_bytes())
    }

    /// Resolve a ref. A malformed ref file is itself quarantined and
    /// reads as absent (the caller recomputes and rewrites it).
    pub fn read_ref(&self, kind: &str, name: &str) -> io::Result<Option<Digest>> {
        let path = self.ref_path(kind, name);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        match Digest::parse(&text) {
            Some(d) => Ok(Some(d)),
            None => {
                let tag = format!("ref-{kind}-{name}");
                self.quarantine_file(&path, &tag)?;
                emit("quarantine", kind, text.len() as u64);
                Ok(None)
            }
        }
    }

    /// Resolve `refs/<kind>/<name>` and load its object, verified.
    /// `Ok(None)` means "not cached" (no ref, or the object is gone —
    /// e.g. previously quarantined); `Err(Corrupt)` means this load
    /// detected and quarantined corruption. Either way the caller's move
    /// is the same: recompute and republish.
    pub fn load_named(
        &self,
        kind: &str,
        name: &str,
    ) -> Result<Option<(Digest, Vec<u8>)>, StoreError> {
        let Some(digest) = self.read_ref(kind, name)? else {
            return Ok(None);
        };
        match self.load(kind, &digest) {
            Ok(bytes) => Ok(Some((digest, bytes))),
            Err(StoreError::Missing(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Move a failed file into `corrupt/`, never clobbering an earlier
    /// quarantined generation. Returns the quarantine path.
    fn quarantine_file(&self, path: &Path, tag: &str) -> io::Result<PathBuf> {
        let dir = self.root.join(CORRUPT);
        fs::create_dir_all(&dir)?;
        for n in 0u32.. {
            let candidate = if n == 0 {
                dir.join(tag)
            } else {
                dir.join(format!("{tag}.{n}"))
            };
            if candidate.exists() {
                continue;
            }
            match fs::rename(path, &candidate) {
                Ok(()) => return Ok(candidate),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
        unreachable!("u32 quarantine generations exhausted")
    }

    fn maybe_flip(&self, kind: &str, digest: &Digest, path: &Path) -> io::Result<()> {
        let one_in = self.flip_one_in.load(Ordering::Relaxed);
        if one_in == 0 {
            return Ok(());
        }
        let draw = self.publishes.fetch_add(1, Ordering::Relaxed) + 1;
        if !draw.is_multiple_of(one_in) {
            return Ok(());
        }
        // At most one flip per digest, ever, across all processes: the
        // recomputed artifact must republish clean or corruption-recovery
        // would loop forever. `create_new` is the cross-process lock.
        let markers = self.root.join(CHAOS);
        fs::create_dir_all(&markers)?;
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(markers.join(digest.hex()))
        {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => return Ok(()),
            Err(e) => return Err(e),
        }
        let mut bytes = fs::read(path)?;
        if bytes.is_empty() {
            return Ok(());
        }
        let bit = (fnv64(&digest.0) as usize) % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        // Deliberately NOT two-phase: this simulates in-place bit rot.
        fs::write(path, &bytes)?;
        emit("chaos_flip", kind, bytes.len() as u64);
        Ok(())
    }

    /// All refs as `(kind, name, digest)`; malformed refs are skipped
    /// (they quarantine on read through [`ArtifactStore::read_ref`]).
    fn walk_refs(&self) -> io::Result<Vec<(String, String, Digest)>> {
        let mut out = Vec::new();
        let refs_root = self.root.join(REFS);
        for kind_entry in read_dir_sorted(&refs_root)? {
            if !kind_entry.is_dir() {
                continue;
            }
            let kind = file_name_string(&kind_entry);
            for ref_entry in read_dir_sorted(&kind_entry)? {
                let fname = file_name_string(&ref_entry);
                if fname.starts_with('.') {
                    continue; // stale two-phase tmp
                }
                let Some(name) = fname.strip_suffix(".ref") else {
                    continue;
                };
                if let Ok(text) = fs::read_to_string(&ref_entry) {
                    if let Some(d) = Digest::parse(&text) {
                        out.push((kind.clone(), name.to_string(), d));
                    }
                }
            }
        }
        Ok(out)
    }

    /// All object files as `(path, hex stem, bytes)`. Dot-files (stale
    /// two-phase tmps) are skipped.
    fn walk_objects(&self) -> io::Result<Vec<(PathBuf, String, u64)>> {
        let mut out = Vec::new();
        for fan in read_dir_sorted(&self.root.join(OBJECTS))? {
            if !fan.is_dir() {
                continue;
            }
            for obj in read_dir_sorted(&fan)? {
                let fname = file_name_string(&obj);
                if fname.starts_with('.') {
                    continue;
                }
                let Some(stem) = fname.strip_suffix(&format!(".{OBJ_EXT}")) else {
                    continue;
                };
                let len = fs::metadata(&obj)?.len();
                out.push((obj, stem.to_string(), len));
            }
        }
        Ok(out)
    }

    /// Walk every object, re-hash it, and quarantine mismatches. Also
    /// reports refs whose target object has gone missing. Emits one
    /// `quarantine` event per corrupt object and a summary `scrub` event.
    pub fn scrub(&self) -> io::Result<ScrubReport> {
        let refs = self.walk_refs()?;
        let mut kind_of: HashMap<Digest, String> = HashMap::new();
        for (kind, _, d) in &refs {
            kind_of.entry(*d).or_insert_with(|| kind.clone());
        }
        let mut report = ScrubReport::default();
        for (path, stem, len) in self.walk_objects()? {
            report.objects += 1;
            report.bytes += len;
            let bytes = fs::read(&path)?;
            let expected = Digest::parse(&stem);
            let ok = expected.is_some_and(|d| sha256(&bytes) == d);
            if !ok {
                let artifact = expected
                    .and_then(|d| kind_of.get(&d).cloned())
                    .unwrap_or_else(|| "object".to_string());
                self.quarantine_file(&path, &stem)?;
                emit("quarantine", &artifact, len);
                report.quarantined.push((stem, artifact));
            }
        }
        for (kind, name, d) in &refs {
            if !self.contains(d) {
                report.dangling_refs.push(format!("{kind}/{name}"));
            }
        }
        emit("scrub", "*", report.objects);
        Ok(report)
    }

    /// Remove objects no ref points at, and sweep stale two-phase tmp
    /// files left behind by crashed publishes.
    pub fn gc(&self) -> io::Result<GcReport> {
        let live: HashSet<Digest> = self.walk_refs()?.into_iter().map(|(_, _, d)| d).collect();
        let mut report = GcReport::default();
        for (path, stem, len) in self.walk_objects()? {
            match Digest::parse(&stem) {
                Some(d) if live.contains(&d) => report.kept += 1,
                _ => {
                    fs::remove_file(&path)?;
                    report.removed += 1;
                    report.bytes_freed += len;
                }
            }
        }
        for dir in [self.root.join(OBJECTS), self.root.join(REFS)] {
            report.tmp_swept += sweep_tmp(&dir)?;
        }
        emit("gc", "*", report.removed);
        Ok(report)
    }

    /// Every object with its size and back-refs, sorted by digest.
    pub fn ls(&self) -> io::Result<Vec<LsEntry>> {
        let mut back: BTreeMap<Digest, Vec<String>> = BTreeMap::new();
        for (kind, name, d) in self.walk_refs()? {
            back.entry(d).or_default().push(format!("{kind}/{name}"));
        }
        let mut out = Vec::new();
        for (_, stem, len) in self.walk_objects()? {
            let Some(digest) = Digest::parse(&stem) else {
                continue;
            };
            let mut refs = back.get(&digest).cloned().unwrap_or_default();
            refs.sort();
            out.push(LsEntry {
                digest,
                bytes: len,
                refs,
            });
        }
        out.sort_by_key(|e| e.digest);
        Ok(out)
    }

    /// Number of quarantined files currently in `corrupt/`.
    pub fn quarantined_count(&self) -> io::Result<u64> {
        Ok(read_dir_sorted(&self.root.join(CORRUPT))?.len() as u64)
    }
}

/// Recursively sweep `.{name}.tmp.*` files under `dir`; returns how many.
fn sweep_tmp(dir: &Path) -> io::Result<u64> {
    let mut n = 0;
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            n += sweep_tmp(&entry)?;
        } else if file_name_string(&entry).starts_with('.') {
            fs::remove_file(&entry)?;
            n += 1;
        }
    }
    Ok(n)
}

/// Directory entries, sorted by name for deterministic walk order.
/// A missing directory reads as empty.
fn read_dir_sorted(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let rd = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out: Vec<PathBuf> = rd.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    out.sort();
    Ok(out)
}

fn file_name_string(path: &Path) -> String {
    path.file_name()
        .unwrap_or_default()
        .to_string_lossy()
        .into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> (PathBuf, ArtifactStore) {
        let d = std::env::temp_dir().join(format!(
            "minpsid-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        let store = ArtifactStore::open(&d).unwrap();
        (d, store)
    }

    #[test]
    fn publish_load_round_trip() {
        let (d, store) = tmp_store("rt");
        let payload = b"golden bytes".to_vec();
        let digest = store.publish("golden", &payload).unwrap();
        assert_eq!(digest, sha256(&payload));
        assert_eq!(store.load("golden", &digest).unwrap(), payload);
        // idempotent republish
        assert_eq!(store.publish("golden", &payload).unwrap(), digest);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_object_is_typed() {
        let (d, store) = tmp_store("missing");
        let digest = sha256(b"never published");
        assert!(matches!(
            store.load("golden", &digest),
            Err(StoreError::Missing(m)) if m == digest
        ));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn corrupt_object_is_quarantined_never_served() {
        let (d, store) = tmp_store("corrupt");
        let digest = store.publish("ckpt", b"checkpoint payload").unwrap();
        // rot one bit in place
        let path = store.object_path(&digest);
        let mut bytes = fs::read(&path).unwrap();
        bytes[3] ^= 0x10;
        fs::write(&path, &bytes).unwrap();

        let err = store.load("ckpt", &digest).unwrap_err();
        let StoreError::Corrupt {
            digest: cd,
            quarantined,
        } = err
        else {
            panic!("expected Corrupt, got {err}");
        };
        assert_eq!(cd, digest);
        assert!(quarantined.starts_with(d.join(CORRUPT)));
        assert!(quarantined.exists(), "rotten bytes moved, not copied");
        assert!(!path.exists(), "object gone from objects/");
        // recompute path: subsequent load is a clean Missing
        assert!(matches!(
            store.load("ckpt", &digest),
            Err(StoreError::Missing(_))
        ));
        // republish writes fresh bytes and loads verify again
        store.publish("ckpt", b"checkpoint payload").unwrap();
        assert_eq!(
            store.load("ckpt", &digest).unwrap(),
            b"checkpoint payload".to_vec()
        );
        assert_eq!(store.quarantined_count().unwrap(), 1);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn refs_resolve_and_malformed_refs_quarantine() {
        let (d, store) = tmp_store("refs");
        let digest = store.publish("golden", b"ref target").unwrap();
        store.set_ref("golden", "mfp-ifp-cfp", &digest).unwrap();
        assert_eq!(
            store.read_ref("golden", "mfp-ifp-cfp").unwrap(),
            Some(digest)
        );
        let (got, bytes) = store.load_named("golden", "mfp-ifp-cfp").unwrap().unwrap();
        assert_eq!(got, digest);
        assert_eq!(bytes, b"ref target".to_vec());
        assert_eq!(store.read_ref("golden", "absent").unwrap(), None);

        // malformed ref: quarantined, reads as absent thereafter
        let rp = store.ref_path("golden", "mangled");
        fs::create_dir_all(rp.parent().unwrap()).unwrap();
        fs::write(&rp, b"not a digest").unwrap();
        assert_eq!(store.read_ref("golden", "mangled").unwrap(), None);
        assert!(!rp.exists());
        assert_eq!(store.read_ref("golden", "mangled").unwrap(), None);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn scrub_clean_then_corrupt() {
        let (d, store) = tmp_store("scrub");
        let d1 = store.publish("golden", b"first").unwrap();
        let d2 = store.publish("spool", b"second").unwrap();
        store.set_ref("golden", "g1", &d1).unwrap();

        let clean = store.scrub().unwrap();
        assert_eq!(clean.objects, 2);
        assert!(!clean.found_corruption());
        assert!(clean.dangling_refs.is_empty());

        // rot the *referenced* one so scrub can attribute its class
        let p1 = store.object_path(&d1);
        let mut bytes = fs::read(&p1).unwrap();
        bytes[0] ^= 0x01;
        fs::write(&p1, &bytes).unwrap();

        let dirty = store.scrub().unwrap();
        assert_eq!(dirty.objects, 2);
        assert!(dirty.found_corruption());
        assert_eq!(dirty.quarantined, vec![(d1.hex(), "golden".to_string())]);

        // next pass: object gone, ref dangles, no new corruption
        let after = store.scrub().unwrap();
        assert_eq!(after.objects, 1);
        assert!(!after.found_corruption());
        assert_eq!(after.dangling_refs, vec!["golden/g1".to_string()]);
        assert!(store.contains(&d2));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn gc_drops_unreferenced_and_sweeps_tmp() {
        let (d, store) = tmp_store("gc");
        let live = store.publish("golden", b"live").unwrap();
        let dead = store.publish("golden", b"dead").unwrap();
        store.set_ref("golden", "keep", &live).unwrap();
        // a stale tmp from a crashed publish
        let fan = d.join(OBJECTS).join("ab");
        fs::create_dir_all(&fan).unwrap();
        fs::write(fan.join(".x.obj.tmp.1.2"), b"partial").unwrap();

        let report = store.gc().unwrap();
        assert_eq!(report.kept, 1);
        assert_eq!(report.removed, 1);
        assert_eq!(report.bytes_freed, 4);
        assert_eq!(report.tmp_swept, 1);
        assert!(store.contains(&live));
        assert!(!store.contains(&dead));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn ls_lists_objects_with_back_refs() {
        let (d, store) = tmp_store("ls");
        let d1 = store.publish("golden", b"one").unwrap();
        let d2 = store.publish("spool", b"two").unwrap();
        store.set_ref("golden", "a", &d1).unwrap();
        store.set_ref("ckpt", "b", &d1).unwrap();
        let entries = store.ls().unwrap();
        assert_eq!(entries.len(), 2);
        let e1 = entries.iter().find(|e| e.digest == d1).unwrap();
        assert_eq!(e1.refs, vec!["ckpt/b".to_string(), "golden/a".to_string()]);
        assert_eq!(e1.bytes, 3);
        let e2 = entries.iter().find(|e| e.digest == d2).unwrap();
        assert!(e2.refs.is_empty());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn chaos_flip_corrupts_each_object_exactly_once() {
        let (d, store) = tmp_store("chaos");
        store.set_chaos_flip(1);
        let digest = store.publish("golden", b"will be flipped").unwrap();
        let err = store.load("golden", &digest).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        // recompute: republish identical bytes — the flip marker must
        // prevent a second flip, so the reload verifies
        let again = store.publish("golden", b"will be flipped").unwrap();
        assert_eq!(again, digest);
        assert_eq!(
            store.load("golden", &digest).unwrap(),
            b"will be flipped".to_vec()
        );
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn chaos_flip_respects_rate() {
        let (d, store) = tmp_store("chaos-rate");
        store.set_chaos_flip(3);
        let mut corrupt = 0;
        for i in 0..9u32 {
            let digest = store
                .publish("golden", format!("obj {i}").as_bytes())
                .unwrap();
            if store.load("golden", &digest).is_err() {
                corrupt += 1;
            }
        }
        assert_eq!(corrupt, 3, "every 3rd publish flips");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn concurrent_same_key_publish_is_idempotent_and_untorn() {
        let (d, store) = tmp_store("race");
        let store = std::sync::Arc::new(store);
        let payload: Vec<u8> = (0..32_768u32).flat_map(|i| i.to_le_bytes()).collect();
        let expected = sha256(&payload);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = store.clone();
            let payload = payload.clone();
            handles.push(std::thread::spawn(move || {
                store.publish("golden", &payload).unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
        assert_eq!(store.load("golden", &expected).unwrap(), payload);
        let _ = fs::remove_dir_all(&d);
    }

    /// Helper for `sigkill_mid_publish_never_exposes_partial_object`:
    /// only acts when re-invoked as a child with the crash env armed.
    #[test]
    fn sigkill_child_publish_hang() {
        let Ok(dir) = std::env::var("MINPSID_STORE_SIGKILL_DIR") else {
            return;
        };
        let store = ArtifactStore::open(Path::new(&dir)).unwrap();
        // hangs inside two_phase_write (MINPSID_STORE_CRASH armed by parent)
        let _ = store.publish("golden", &vec![0xa5u8; 1 << 16]);
        unreachable!("publish must park before rename");
    }

    #[test]
    fn sigkill_mid_publish_never_exposes_partial_object() {
        let (d, store) = tmp_store("sigkill");
        let exe = std::env::current_exe().unwrap();
        let mut child = std::process::Command::new(exe)
            .args([
                "sigkill_child_publish_hang",
                "--nocapture",
                "--test-threads=1",
            ])
            .env("MINPSID_STORE_SIGKILL_DIR", &d)
            .env("MINPSID_STORE_CRASH", "hang-before-rename")
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();

        // Wait until the child's durable tmp sibling exists — the instant
        // before rename — then SIGKILL it there.
        let objects = d.join(OBJECTS);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let tmp_visible = || -> bool {
            let Ok(fans) = fs::read_dir(&objects) else {
                return false;
            };
            for fan in fans.flatten() {
                if let Ok(files) = fs::read_dir(fan.path()) {
                    for f in files.flatten() {
                        if f.file_name().to_string_lossy().starts_with('.') {
                            return true;
                        }
                    }
                }
            }
            false
        };
        while !tmp_visible() {
            assert!(
                std::time::Instant::now() < deadline,
                "child never reached the crash point"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        child.kill().unwrap(); // SIGKILL on unix
        child.wait().unwrap();

        // No partial object is visible: the store has zero objects and a
        // scrub agrees; the payload reads as Missing, not as torn bytes.
        let digest = sha256(&vec![0xa5u8; 1 << 16]);
        assert!(matches!(
            store.load("golden", &digest),
            Err(StoreError::Missing(_))
        ));
        let scrubbed = store.scrub().unwrap();
        assert_eq!(scrubbed.objects, 0);
        assert!(!scrubbed.found_corruption());
        // gc sweeps the orphaned tmp, and a fresh publish of the same
        // content succeeds end to end.
        let swept = store.gc().unwrap();
        assert!(swept.tmp_swept >= 1);
        store.publish("golden", &vec![0xa5u8; 1 << 16]).unwrap();
        assert_eq!(store.load("golden", &digest).unwrap().len(), 1 << 16);
        let _ = fs::remove_dir_all(&d);
    }
}
