//! Property tests for the content-addressed store: publish→load is the
//! identity and always digest-verified, racing publishers of one key
//! never tear an object, and corruption is always quarantine-then-
//! recompute, never served.

use minpsid_store::{sha256, ArtifactStore, StoreError};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static CASE: AtomicU64 = AtomicU64::new(0);

fn fresh_store(tag: &str) -> (PathBuf, ArtifactStore) {
    let d = std::env::temp_dir().join(format!(
        "minpsid-store-prop-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    let store = ArtifactStore::open(&d).unwrap();
    (d, store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// publish → load returns the exact bytes, and the returned digest
    /// is the content hash (so equal payloads share one object).
    #[test]
    fn publish_load_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let (d, store) = fresh_store("rt");
        let digest = store.publish("golden", &payload).unwrap();
        prop_assert_eq!(digest, sha256(&payload));
        prop_assert_eq!(store.load("golden", &digest).unwrap(), payload.clone());
        // republish is idempotent
        prop_assert_eq!(store.publish("golden", &payload).unwrap(), digest);
        prop_assert_eq!(store.load("golden", &digest).unwrap(), payload);
        let _ = std::fs::remove_dir_all(&d);
    }

    /// N racing publishers of the same content all succeed, and the
    /// stored object verifies afterward — no torn interleaving.
    #[test]
    fn concurrent_same_key_publish_is_untorn(
        payload in proptest::collection::vec(any::<u8>(), 1..4096),
        racers in 2usize..6,
    ) {
        let (d, store) = fresh_store("race");
        let store = Arc::new(store);
        let expected = sha256(&payload);
        let handles: Vec<_> = (0..racers)
            .map(|_| {
                let store = store.clone();
                let payload = payload.clone();
                std::thread::spawn(move || store.publish("spool", &payload).unwrap())
            })
            .collect();
        for h in handles {
            prop_assert_eq!(h.join().unwrap(), expected);
        }
        prop_assert_eq!(store.load("spool", &expected).unwrap(), payload);
        let _ = std::fs::remove_dir_all(&d);
    }

    /// Any single corrupted byte anywhere in the object is detected on
    /// load, quarantined, and recoverable by republishing (recompute).
    #[test]
    fn quarantine_then_recompute(
        payload in proptest::collection::vec(any::<u8>(), 1..2048),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let (d, store) = fresh_store("rot");
        let digest = store.publish("ckpt", &payload).unwrap();
        // rot one byte in place
        let hex = digest.hex();
        let obj = d
            .join("objects")
            .join(&hex[..2])
            .join(format!("{hex}.obj"));
        let mut bytes = std::fs::read(&obj).unwrap();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= xor;
        std::fs::write(&obj, &bytes).unwrap();

        match store.load("ckpt", &digest) {
            Err(StoreError::Corrupt { digest: cd, quarantined }) => {
                prop_assert_eq!(cd, digest);
                prop_assert!(quarantined.exists());
                prop_assert!(!obj.exists());
            }
            other => prop_assert!(false, "corruption served or mistyped: {:?}", other.map(|b| b.len())),
        }
        // recompute: republish and the store is whole again
        store.publish("ckpt", &payload).unwrap();
        prop_assert_eq!(store.load("ckpt", &digest).unwrap(), payload);
        prop_assert!(!store.scrub().unwrap().found_corruption());
        let _ = std::fs::remove_dir_all(&d);
    }
}
