//! Trace → metrics bridge: an in-process [`crate::sink`] observer that
//! mirrors the event stream into a [`Registry`] (for `/metrics`) and a
//! [`StatusBoard`] (for `/status`).
//!
//! The bridge is the only place that knows both vocabularies. Events are
//! already flowing for the JSONL trace; translating them here means the
//! engine, scheduler, and interpreter need no second instrumentation
//! path, and the live endpoints stay byte-for-byte irrelevant to the
//! trace itself (the observer only *reads* events).
//!
//! Outcome tallies arrive as absolute snapshots (`CampaignProgress`
//! carries the workers' cumulative counts), while Prometheus counters
//! must only ever move forward by increments — the bridge keeps the
//! previous tally per campaign kind and feeds the registry deltas.

use crate::event::{CampaignKind, Event, OutcomeTally, TimedEvent};
use minpsid_metrics::{CampaignView, QuarantineEntry, Registry, StatusBoard};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Buckets for stage-span durations (seconds): campaign stages range from
/// sub-millisecond golden runs to multi-minute execute phases.
const SPAN_BOUNDS: [f64; 8] = [0.001, 0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0];

struct KindState {
    prev: OutcomeTally,
    prev_done: u64,
    view: CampaignView,
}

struct BridgeState {
    per_kind: BTreeMap<&'static str, KindState>,
}

/// Install an observer on the global sink that forwards every event into
/// `registry` and `board`. `workload` labels the campaign views and
/// per-outcome series (the event stream itself only carries the campaign
/// *kind*; the caller knows which workload is being screened).
///
/// The observer lives until [`crate::sink::shutdown`] clears it.
pub fn install(registry: Arc<Registry>, board: Arc<StatusBoard>, workload: &str) {
    let workload = workload.to_string();
    let state = Mutex::new(BridgeState {
        per_kind: BTreeMap::new(),
    });
    crate::sink::add_observer(move |ev| {
        let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
        apply(&mut st, ev, &registry, &board, &workload);
    });
}

fn outcome_counter(
    registry: &Registry,
    workload: &str,
    kind: &'static str,
    outcome: &str,
    delta: u64,
) {
    if delta == 0 {
        return;
    }
    registry
        .counter(
            "minpsid_injections_total",
            "Finished fault injections by campaign kind and outcome.",
            &[("workload", workload), ("kind", kind), ("outcome", outcome)],
        )
        .add(delta);
}

#[allow(clippy::too_many_arguments)]
fn apply_tally(
    st: &mut BridgeState,
    registry: &Registry,
    workload: &str,
    kind: CampaignKind,
    counts: &OutcomeTally,
    done: u64,
    total: u64,
    elapsed_us: u64,
    finished: bool,
) {
    let kind_str = kind.as_str();
    let entry = st.per_kind.entry(kind_str).or_insert_with(|| KindState {
        prev: OutcomeTally::default(),
        prev_done: 0,
        view: CampaignView {
            workload: workload.to_string(),
            kind: kind_str.to_string(),
            ..CampaignView::default()
        },
    });
    // Counters advance by delta from the previous absolute snapshot.
    let p = entry.prev;
    outcome_counter(
        registry,
        workload,
        kind_str,
        "benign",
        counts.benign - p.benign,
    );
    outcome_counter(registry, workload, kind_str, "sdc", counts.sdc - p.sdc);
    outcome_counter(
        registry,
        workload,
        kind_str,
        "crash",
        counts.crash - p.crash,
    );
    outcome_counter(registry, workload, kind_str, "hang", counts.hang - p.hang);
    outcome_counter(
        registry,
        workload,
        kind_str,
        "detected",
        counts.detected - p.detected,
    );
    outcome_counter(
        registry,
        workload,
        kind_str,
        "engine_error",
        counts.engine_error - p.engine_error,
    );
    entry.prev = *counts;
    entry.prev_done = done;

    let labels = [("workload", workload), ("kind", kind_str)];
    registry
        .gauge(
            "minpsid_campaign_done",
            "Injections finished so far in the campaign.",
            &labels,
        )
        .set(done as f64);
    registry
        .gauge(
            "minpsid_campaign_total",
            "Injections planned for the campaign.",
            &labels,
        )
        .set(total as f64);
    registry
        .gauge(
            "minpsid_campaign_elapsed_seconds",
            "Wall-clock time spent in the campaign so far.",
            &labels,
        )
        .set(elapsed_us as f64 / 1e6);

    let v = &mut entry.view;
    v.done = done;
    v.total = total;
    v.sdc = counts.sdc;
    v.benign = counts.benign;
    v.crash = counts.crash;
    v.timeout = counts.hang;
    v.elapsed_us = elapsed_us;
    v.finished = finished;
    v.eta_us = if finished {
        Some(0)
    } else if done > 0 && total > done {
        // Linear extrapolation from the throughput so far.
        Some((elapsed_us as u128 * (total - done) as u128 / done as u128) as u64)
    } else {
        None
    };
}

fn apply(
    st: &mut BridgeState,
    ev: &TimedEvent,
    registry: &Registry,
    board: &StatusBoard,
    workload: &str,
) {
    match &ev.event {
        Event::TraceStart { tool } => board.set_tool(tool),
        Event::SpanEnd { name, dur_us, .. } => {
            registry
                .histogram(
                    "minpsid_span_duration_seconds",
                    "Duration of named pipeline stages.",
                    &[("stage", name)],
                    &SPAN_BOUNDS,
                )
                .observe(*dur_us as f64 / 1e6);
        }
        Event::CampaignProgress {
            kind,
            done,
            total,
            counts,
            elapsed_us,
        } => {
            apply_tally(
                st,
                registry,
                workload,
                *kind,
                counts,
                *done,
                *total,
                *elapsed_us,
                false,
            );
            board.upsert_campaign(st.per_kind[kind.as_str()].view.clone());
        }
        Event::CampaignEnd {
            kind,
            injections,
            elapsed_us,
            counts,
            ..
        } => {
            // `total` is not carried by the end event; the final plan size
            // equals the injections actually finished plus whatever the
            // scheduler skipped, which the view already holds from the
            // last progress sample — keep the larger of the two.
            let prev_total = st
                .per_kind
                .get(kind.as_str())
                .map_or(0, |k| k.view.total)
                .max(*injections);
            apply_tally(
                st,
                registry,
                workload,
                *kind,
                counts,
                *injections,
                prev_total,
                *elapsed_us,
                true,
            );
            board.upsert_campaign(st.per_kind[kind.as_str()].view.clone());
        }
        Event::RetryAttempt { .. } => {
            board.add_retry();
            registry
                .counter(
                    "minpsid_sched_retries_total",
                    "Scheduler retry attempts across all campaigns.",
                    &[],
                )
                .inc();
        }
        Event::Quarantine {
            kind,
            site,
            failures,
            ..
        } => {
            board.push_quarantine(QuarantineEntry {
                workload: workload.to_string(),
                site: format!("{}#{site}", kind.as_str()),
                failures: *failures,
            });
            registry
                .counter(
                    "minpsid_sched_quarantined_sites_total",
                    "Injection sites quarantined after exhausting retries.",
                    &[],
                )
                .inc();
        }
        Event::EarlyStop { .. } => {
            board.add_early_stop();
            registry
                .counter(
                    "minpsid_sched_early_stopped_sites_total",
                    "Sites stopped early after their Wilson interval narrowed.",
                    &[],
                )
                .inc();
        }
        Event::DeadlineTruncation { .. } => {
            board.add_deadline_truncation();
            registry
                .counter(
                    "minpsid_sched_deadline_truncations_total",
                    "Campaigns truncated by the wall-clock deadline.",
                    &[],
                )
                .inc();
        }
        Event::SchedSummary { completeness, .. } => {
            registry
                .gauge(
                    "minpsid_campaign_completeness",
                    "Scheduler-reported completeness score in [0, 1].",
                    &[("workload", workload)],
                )
                .set(*completeness);
            // Stamp completeness onto every live view so `/status` shows it.
            for k in st.per_kind.values_mut() {
                k.view.completeness = Some(*completeness);
                board.upsert_campaign(k.view.clone());
            }
        }
        Event::FleetWorker { event, .. } => match event.as_str() {
            "spawned" => {
                registry
                    .counter(
                        "minpsid_fleet_worker_spawns_total",
                        "Fleet worker processes spawned (including restarts).",
                        &[],
                    )
                    .inc();
            }
            "died" | "killed" => {
                board.add_fleet_restart();
                registry
                    .counter(
                        "minpsid_fleet_worker_deaths_total",
                        "Fleet worker processes that died or were killed.",
                        &[],
                    )
                    .inc();
            }
            _ => {}
        },
        Event::FleetShard { event, .. } => match event.as_str() {
            "reassigned" => {
                registry
                    .counter(
                        "minpsid_fleet_shards_reassigned_total",
                        "Shards reassigned after a worker death or lease expiry.",
                        &[],
                    )
                    .inc();
            }
            "poisoned" => {
                board.add_fleet_poisoned_shard();
                registry
                    .counter(
                        "minpsid_fleet_poisoned_shards_total",
                        "Shards quarantined after killing consecutive workers.",
                        &[],
                    )
                    .inc();
            }
            _ => {}
        },
        Event::FleetSummary { workers, .. } => {
            board.set_fleet_workers(*workers);
            registry
                .gauge(
                    "minpsid_fleet_workers",
                    "Fleet worker slots in the supervisor.",
                    &[],
                )
                .set(*workers as f64);
        }
        Event::StoreEvent { op, artifact, .. } => {
            registry
                .counter(
                    "minpsid_store_ops_total",
                    "Artifact-store operations (publish/load/quarantine/scrub/…) by artifact class.",
                    &[("workload", workload), ("op", op), ("artifact", artifact)],
                )
                .inc();
        }
        Event::SectionEvent { action, units, .. } => {
            registry
                .counter(
                    "minpsid_section_events_total",
                    "Incremental-campaign section-table dispositions (hit/miss/recompute/compose).",
                    &[("workload", workload), ("action", action.as_str())],
                )
                .inc();
            if matches!(action, crate::event::SectionAction::Hit) {
                registry
                    .counter(
                        "minpsid_section_injections_served_total",
                        "Injection outcomes served from sealed section tables instead of executing.",
                        &[("workload", workload)],
                    )
                    .add(*units);
            }
        }
        Event::InterpProfile {
            sample_every,
            total_samples,
            fused_samples,
            ..
        } => {
            registry
                .counter(
                    "minpsid_interp_profile_samples_total",
                    "Interpreter profiler samples taken.",
                    &[],
                )
                .add(*total_samples);
            registry
                .counter(
                    "minpsid_interp_profile_fused_samples_total",
                    "Interpreter profiler samples landing on fused superinstructions.",
                    &[],
                )
                .add(*fused_samples);
            registry
                .gauge(
                    "minpsid_interp_profile_sample_interval_steps",
                    "Dynamic steps between profiler samples.",
                    &[],
                )
                .set(*sample_every as f64);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_metrics::SampleValue;

    fn tally(benign: u64, sdc: u64) -> OutcomeTally {
        OutcomeTally {
            benign,
            sdc,
            ..OutcomeTally::default()
        }
    }

    fn ev(event: Event) -> TimedEvent {
        TimedEvent { ts_us: 0, event }
    }

    /// Drives `apply` directly (not through the global sink) so this test
    /// does not fight other tests over process-wide observer state.
    #[test]
    fn bridge_translates_events_into_registry_and_board() {
        let registry = Registry::new();
        let board = StatusBoard::new();
        let mut st = BridgeState {
            per_kind: BTreeMap::new(),
        };
        let mut feed = |e: Event| apply(&mut st, &ev(e), &registry, &board, "hpccg");

        feed(Event::TraceStart {
            tool: "minpsid test".into(),
        });
        feed(Event::CampaignProgress {
            kind: CampaignKind::Program,
            done: 10,
            total: 40,
            counts: tally(8, 2),
            elapsed_us: 1_000_000,
        });
        // Second absolute snapshot: counters must advance by the delta,
        // not re-add the cumulative totals.
        feed(Event::CampaignProgress {
            kind: CampaignKind::Program,
            done: 20,
            total: 40,
            counts: tally(15, 5),
            elapsed_us: 2_000_000,
        });
        feed(Event::RetryAttempt {
            kind: CampaignKind::Program,
            site: 7,
            attempt: 1,
            backoff_ms: 10,
            reason: "panic".into(),
        });
        feed(Event::Quarantine {
            kind: CampaignKind::Program,
            site: 7,
            failures: 3,
            reason: "panic".into(),
        });
        feed(Event::SchedSummary {
            retries: 1,
            recovered: 0,
            exhausted: 1,
            quarantined_sites: 1,
            quarantined_injections: 2,
            early_stopped_sites: 0,
            early_stop_skipped: 0,
            truncated: 0,
            completeness: 0.95,
        });
        feed(Event::CampaignEnd {
            kind: CampaignKind::Program,
            injections: 38,
            elapsed_us: 4_000_000,
            counts: tally(30, 8),
            steps_executed: 1000,
            steps_skipped: 500,
            restores: 38,
        });

        let snap = registry.snapshot();
        let find = |name: &str, label: Option<(&str, &str)>| -> SampleValue {
            snap.iter()
                .find(|f| f.name == name)
                .unwrap_or_else(|| panic!("family {name} registered"))
                .series
                .iter()
                .find(|s| {
                    label.is_none_or(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
                })
                .unwrap_or_else(|| panic!("series in {name}"))
                .value
                .clone()
        };
        assert_eq!(
            find("minpsid_injections_total", Some(("outcome", "benign"))),
            SampleValue::Counter(30),
            "cumulative snapshots fed as deltas"
        );
        assert_eq!(
            find("minpsid_injections_total", Some(("outcome", "sdc"))),
            SampleValue::Counter(8)
        );
        assert_eq!(
            find("minpsid_sched_retries_total", None),
            SampleValue::Counter(1)
        );
        assert_eq!(
            find("minpsid_sched_quarantined_sites_total", None),
            SampleValue::Counter(1)
        );
        assert_eq!(
            find("minpsid_campaign_done", None),
            SampleValue::Gauge(38.0)
        );

        let doc = board.render_json_at(0);
        assert!(doc.contains("\"tool\":\"minpsid test\""), "{doc}");
        assert!(doc.contains("\"workload\":\"hpccg\""), "{doc}");
        assert!(doc.contains("\"done\":38"), "{doc}");
        assert!(doc.contains("\"finished\":true"), "{doc}");
        assert!(doc.contains("\"completeness\":0.95"), "{doc}");
        assert!(doc.contains("\"site\":\"program#7\""), "{doc}");
        assert!(doc.contains("\"retries\":1"), "{doc}");
    }

    #[test]
    fn bridge_translates_fleet_events() {
        let registry = Registry::new();
        let board = StatusBoard::new();
        let mut st = BridgeState {
            per_kind: BTreeMap::new(),
        };
        let mut feed = |e: Event| apply(&mut st, &ev(e), &registry, &board, "hpccg");
        feed(Event::FleetWorker {
            worker: 0,
            event: "spawned".into(),
            restarts: 0,
        });
        feed(Event::FleetWorker {
            worker: 0,
            event: "died".into(),
            restarts: 0,
        });
        feed(Event::FleetWorker {
            worker: 0,
            event: "spawned".into(),
            restarts: 1,
        });
        feed(Event::FleetShard {
            shard: 1,
            worker: 0,
            attempt: 1,
            event: "reassigned".into(),
        });
        feed(Event::FleetShard {
            shard: 2,
            worker: 3,
            attempt: 3,
            event: "poisoned".into(),
        });
        feed(Event::FleetSummary {
            workers: 4,
            spawns: 2,
            deaths: 1,
            reassigned: 1,
            poisoned_shards: 1,
        });

        let snap = registry.snapshot();
        let count = |name: &str| -> SampleValue {
            snap.iter()
                .find(|f| f.name == name)
                .unwrap_or_else(|| panic!("family {name} registered"))
                .series[0]
                .value
                .clone()
        };
        assert_eq!(
            count("minpsid_fleet_worker_spawns_total"),
            SampleValue::Counter(2)
        );
        assert_eq!(
            count("minpsid_fleet_worker_deaths_total"),
            SampleValue::Counter(1)
        );
        assert_eq!(
            count("minpsid_fleet_shards_reassigned_total"),
            SampleValue::Counter(1)
        );
        assert_eq!(
            count("minpsid_fleet_poisoned_shards_total"),
            SampleValue::Counter(1)
        );
        assert_eq!(count("minpsid_fleet_workers"), SampleValue::Gauge(4.0));
        let doc = board.render_json_at(0);
        assert!(
            doc.contains("\"fleet\":{\"workers\":4,\"restarts\":1,\"poisoned_shards\":1}"),
            "{doc}"
        );
    }

    #[test]
    fn bridge_counts_store_ops_by_op_and_artifact() {
        let registry = Registry::new();
        let board = StatusBoard::new();
        let mut st = BridgeState {
            per_kind: BTreeMap::new(),
        };
        let mut feed = |e: Event| apply(&mut st, &ev(e), &registry, &board, "hpccg");
        feed(Event::StoreEvent {
            op: "publish".into(),
            artifact: "golden".into(),
            bytes: 100,
        });
        feed(Event::StoreEvent {
            op: "publish".into(),
            artifact: "golden".into(),
            bytes: 100,
        });
        feed(Event::StoreEvent {
            op: "quarantine".into(),
            artifact: "ckpt".into(),
            bytes: 64,
        });

        let snap = registry.snapshot();
        let fam = snap
            .iter()
            .find(|f| f.name == "minpsid_store_ops_total")
            .expect("store counter family registered");
        let value = |op: &str, artifact: &str| {
            fam.series
                .iter()
                .find(|s| {
                    s.labels.iter().any(|(k, v)| k == "op" && v == op)
                        && s.labels
                            .iter()
                            .any(|(k, v)| k == "artifact" && v == artifact)
                })
                .map(|s| s.value.clone())
        };
        assert_eq!(value("publish", "golden"), Some(SampleValue::Counter(2)));
        assert_eq!(value("quarantine", "ckpt"), Some(SampleValue::Counter(1)));
    }

    #[test]
    fn section_events_become_hit_rate_counters() {
        use crate::event::SectionAction;
        let registry = Registry::new();
        let board = StatusBoard::new();
        let mut st = BridgeState {
            per_kind: BTreeMap::new(),
        };
        let mut feed = |action: SectionAction, units: u64| {
            apply(
                &mut st,
                &ev(Event::SectionEvent {
                    fp: 0xabcd,
                    action,
                    units,
                }),
                &registry,
                &board,
                "hpccg",
            )
        };
        feed(SectionAction::Hit, 100);
        feed(SectionAction::Hit, 20);
        feed(SectionAction::Miss, 0);
        feed(SectionAction::Recompute, 0);
        feed(SectionAction::Compose, 3);

        let snap = registry.snapshot();
        let fam = snap
            .iter()
            .find(|f| f.name == "minpsid_section_events_total")
            .expect("section counter family registered");
        let by_action = |a: &str| {
            fam.series
                .iter()
                .find(|s| s.labels.iter().any(|(k, v)| k == "action" && v == a))
                .map(|s| s.value.clone())
        };
        assert_eq!(by_action("hit"), Some(SampleValue::Counter(2)));
        assert_eq!(by_action("miss"), Some(SampleValue::Counter(1)));
        assert_eq!(by_action("recompute"), Some(SampleValue::Counter(1)));
        assert_eq!(by_action("compose"), Some(SampleValue::Counter(1)));
        let served = snap
            .iter()
            .find(|f| f.name == "minpsid_section_injections_served_total")
            .expect("served counter registered");
        assert_eq!(served.series[0].value, SampleValue::Counter(120));
    }

    #[test]
    fn eta_extrapolates_linearly_then_zeroes_at_finish() {
        let registry = Registry::new();
        let board = StatusBoard::new();
        let mut st = BridgeState {
            per_kind: BTreeMap::new(),
        };
        let mut feed = |e: Event| apply(&mut st, &ev(e), &registry, &board, "fft");
        feed(Event::CampaignProgress {
            kind: CampaignKind::PerInst,
            done: 25,
            total: 100,
            counts: tally(25, 0),
            elapsed_us: 1_000_000,
        });
        // 25 done in 1s -> 75 remaining at the same rate = 3s.
        assert!(board.render_json_at(0).contains("\"eta_us\":3000000"));
        feed(Event::CampaignEnd {
            kind: CampaignKind::PerInst,
            injections: 100,
            elapsed_us: 4_000_000,
            counts: tally(100, 0),
            steps_executed: 0,
            steps_skipped: 0,
            restores: 0,
        });
        let doc = board.render_json_at(0);
        assert!(doc.contains("\"eta_us\":0"), "{doc}");
        assert!(doc.contains("\"finished\":true"), "{doc}");
    }
}
