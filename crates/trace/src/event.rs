//! The versioned trace event schema.
//!
//! Every JSONL line is one [`TimedEvent`]: `{"v":6,"ts_us":…,"kind":…,…}`.
//! `v` is [`SCHEMA_VERSION`]; the parser rejects lines whose version it
//! does not understand, so a report can never silently misparse a log
//! written by a different schema. Serialization is hand-rolled over
//! [`crate::json`] (no serde in the dependency budget) and round-trip
//! tested, both example-based and property-based.

use crate::json::{parse, Json, JsonError};

/// Version stamped into every line. Bump on any incompatible field change.
/// v2: outcome tallies carry `engine_error`, and the crash-safe journal
/// emits `journal_recovery`/`journal_stats` events.
/// v3: outcome tallies carry `transient_recovered`/`quarantined`, and the
/// resilient scheduler emits `retry_attempt`/`quarantine`/`early_stop`/
/// `deadline_truncation`/`sched_summary` events.
/// v4: the interpreter sampling profiler emits `interp_profile`, and the
/// engine wraps plan/execute/reduce (plus golden runs and checkpoint
/// capture) in span begin/end pairs so reports render a stage waterfall.
/// v5: the process-isolated fleet emits `fleet_worker`/`fleet_shard`
/// lifecycle events and a `fleet_summary` at the end of a `--workers` run.
/// v6: the content-addressed artifact store emits `store_event`
/// (publish/load/quarantine/scrub per artifact class), and
/// `journal_recovery` carries `dropped_records` — the count of intact
/// suffix records lost to a checksum mismatch in the *middle* of the WAL
/// (0 for a plain torn tail).
/// v7: incremental campaigns emit `section_event` — per-section outcome
/// table dispositions (hit/miss/recompute) and the final compose step.
pub const SCHEMA_VERSION: u32 = 7;

/// Which campaign shape produced a progress/end event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// Whole-program campaign (`program_campaign`).
    Program,
    /// Per-static-instruction campaign (`per_instruction_campaign`).
    PerInst,
}

impl CampaignKind {
    pub fn as_str(self) -> &'static str {
        match self {
            CampaignKind::Program => "program",
            CampaignKind::PerInst => "per_inst",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "program" => Some(CampaignKind::Program),
            "per_inst" => Some(CampaignKind::PerInst),
            _ => None,
        }
    }
}

/// FI outcome tallies carried by campaign events (mirrors
/// `minpsid_faultsim::OutcomeCounts`, re-declared here so the trace crate
/// sits at the bottom of the dependency graph).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    pub benign: u64,
    pub sdc: u64,
    pub crash: u64,
    pub hang: u64,
    pub detected: u64,
    /// Injections whose final attempt panicked or blew its wall-clock
    /// budget — a harness failure, not a program outcome; kept out of SDC
    /// rates. An injection that failed but then succeeded on retry is
    /// *not* here (it counts once, under its real outcome).
    pub engine_error: u64,
    /// Injections that failed at least once but produced a real outcome
    /// after retry. A side-tally: these injections are already counted
    /// once under their final outcome, so `total()` excludes this field.
    pub transient_recovered: u64,
    /// Injections skipped because their site was quarantined. Not
    /// outcomes — excluded from `total()` and from all rates.
    pub quarantined: u64,
}

impl OutcomeTally {
    pub fn total(&self) -> u64 {
        self.benign + self.sdc + self.crash + self.hang + self.detected + self.engine_error
    }

    fn to_json(self) -> Json {
        let mut o = Json::obj();
        o.set("benign", Json::U64(self.benign));
        o.set("sdc", Json::U64(self.sdc));
        o.set("crash", Json::U64(self.crash));
        o.set("hang", Json::U64(self.hang));
        o.set("detected", Json::U64(self.detected));
        o.set("engine_error", Json::U64(self.engine_error));
        o.set("transient_recovered", Json::U64(self.transient_recovered));
        o.set("quarantined", Json::U64(self.quarantined));
        o
    }

    fn from_json(v: &Json) -> Result<Self, SchemaError> {
        Ok(OutcomeTally {
            benign: field_u64(v, "benign")?,
            sdc: field_u64(v, "sdc")?,
            crash: field_u64(v, "crash")?,
            hang: field_u64(v, "hang")?,
            detected: field_u64(v, "detected")?,
            engine_error: field_u64(v, "engine_error")?,
            transient_recovered: field_u64(v, "transient_recovered")?,
            quarantined: field_u64(v, "quarantined")?,
        })
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// First line of every trace: identifies the producing tool.
    TraceStart { tool: String },
    /// Last line written by a clean shutdown.
    TraceEnd { dur_us: u64 },
    /// A named stage began. `id` pairs it with its `SpanEnd`.
    SpanBegin { id: u64, name: String },
    /// A named stage finished after `dur_us` microseconds.
    SpanEnd { id: u64, name: String, dur_us: u64 },
    /// A monotonic counter sample.
    Counter { name: String, value: u64 },
    /// A power-of-two-bucketed histogram snapshot: `(bucket_lo, count)`
    /// pairs for the non-empty buckets.
    Histogram {
        name: String,
        buckets: Vec<(u64, u64)>,
    },
    /// Periodic mid-campaign sample taken from the workers' lock-free
    /// counters by the sampler thread.
    CampaignProgress {
        kind: CampaignKind,
        done: u64,
        total: u64,
        counts: OutcomeTally,
        elapsed_us: u64,
    },
    /// Campaign summary: final outcome tallies plus checkpoint-restore
    /// accounting (dynamic steps actually executed vs skipped by resuming
    /// from golden-run snapshots).
    CampaignEnd {
        kind: CampaignKind,
        injections: u64,
        elapsed_us: u64,
        counts: OutcomeTally,
        steps_executed: u64,
        steps_skipped: u64,
        restores: u64,
    },
    /// Per-function outcome distribution of a per-instruction campaign.
    FunctionOutcomes { func: String, counts: OutcomeTally },
    /// One GA generation inside an input search.
    GaGeneration {
        /// How many inputs were already in the search history when this
        /// GA round started (0 = the round that produced input #1).
        input_index: u64,
        generation: u64,
        best_fitness: f64,
        mean_fitness: f64,
        population: u64,
        evals: u64,
    },
    /// One accepted search input, after its FI campaign.
    SearchInput {
        index: u64,
        fitness: f64,
        new_incubative: u64,
        total_incubative: u64,
    },
    /// Knapsack selection summary (budget in dynamic cycles).
    Knapsack {
        budget: u64,
        total_cycles: u64,
        eligible: u64,
        selected: u64,
        protected_cycle_fraction: f64,
        expected_coverage: f64,
    },
    /// Golden-run cache tallies.
    CacheStats {
        hits: u64,
        misses: u64,
        entries: u64,
    },
    /// Crash-safe journal opened: how much prior state was recovered and
    /// how many bytes of torn/corrupt tail were truncated.
    /// `dropped_records` counts intact-looking records found *after* the
    /// first corrupt frame: nonzero means mid-file corruption (bit rot),
    /// not an ordinary torn tail, and those records will be recomputed.
    JournalRecovery {
        records: u64,
        truncated_bytes: u64,
        dropped_records: u64,
    },
    /// End-of-run journal usage: injections served from the journal
    /// (recovered) vs executed fresh and appended (replayed).
    JournalStats { recovered: u64, appended: u64 },
    /// One scheduler retry: attempt `attempt` at injection site `site`
    /// failed (`reason`) and will be retried after `backoff_ms`.
    RetryAttempt {
        kind: CampaignKind,
        site: u64,
        attempt: u64,
        backoff_ms: u64,
        reason: String,
    },
    /// A site exhausted `failures` consecutive retry budgets and was
    /// quarantined: excluded from rates for the rest of the run.
    Quarantine {
        kind: CampaignKind,
        site: u64,
        failures: u64,
        reason: String,
    },
    /// A site's Wilson interval narrowed below the configured half-width
    /// after `samples` injections; the rest were skipped.
    EarlyStop {
        kind: CampaignKind,
        site: u64,
        samples: u64,
        half_width: f64,
    },
    /// The wall-clock deadline expired with `truncated` injections still
    /// pending in this campaign.
    DeadlineTruncation { kind: CampaignKind, truncated: u64 },
    /// Accumulated interpreter sampling-profiler state: per-op sample
    /// counts (descending), fusion coverage, and checkpoint
    /// encode/restore cost totals. Emitted once at shutdown when the
    /// profiler ran.
    InterpProfile {
        sample_every: u64,
        total_samples: u64,
        fused_samples: u64,
        fused_sites: u64,
        total_sites: u64,
        encode_ns: u64,
        encode_ops: u64,
        restore_ns: u64,
        restore_ops: u64,
        /// `(op name, samples)` pairs, nonzero only.
        samples: Vec<(String, u64)>,
    },
    /// Run-level scheduler accounting, emitted once at the end.
    SchedSummary {
        retries: u64,
        recovered: u64,
        exhausted: u64,
        quarantined_sites: u64,
        quarantined_injections: u64,
        early_stopped_sites: u64,
        early_stop_skipped: u64,
        truncated: u64,
        completeness: f64,
    },
    /// Fleet worker lifecycle: `event` is one of `spawned`, `ready`,
    /// `died`, `killed` (lease expiry or kill chaos), `stopped`.
    /// `restarts` is how many times this worker slot has been respawned.
    FleetWorker {
        worker: u64,
        event: String,
        restarts: u64,
    },
    /// Fleet shard lifecycle: `event` is one of `leased`, `done`,
    /// `reassigned`, `poisoned`. `attempt` counts lease grants for this
    /// shard (0 = first).
    FleetShard {
        shard: u64,
        worker: u64,
        attempt: u64,
        event: String,
    },
    /// End-of-run fleet accounting, emitted once by the supervisor.
    FleetSummary {
        workers: u64,
        spawns: u64,
        deaths: u64,
        reassigned: u64,
        poisoned_shards: u64,
    },
    /// Artifact-store operation. `op` is one of `publish`, `load`,
    /// `quarantine`, `chaos_flip`, `scrub`, `gc`; `artifact` is the
    /// artifact class (`golden`, `ckpt`, `spool`, `wal`, …— `*` for
    /// store-wide ops); `bytes` is the object size (for `scrub`/`gc`,
    /// the number of objects examined).
    StoreEvent {
        op: String,
        artifact: String,
        bytes: u64,
    },
    /// Per-section outcome-table disposition in an incremental campaign.
    /// `fp` is the section's content fingerprint; `units` is the number
    /// of memoized injection outcomes involved (served outcomes for
    /// `hit`, composed sections for `compose`, 0 for `miss`/`recompute`).
    SectionEvent {
        fp: u64,
        action: SectionAction,
        units: u64,
    },
}

/// How the table memo disposed of one section (or, for `Compose`, how the
/// reducer assembled the campaign report from per-section tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionAction {
    /// A sealed, complete table matched and its outcomes were served.
    Hit,
    /// No usable table: absent, stale signature, or sealed incomplete.
    Miss,
    /// The table failed store verification, was quarantined, and the
    /// section re-ran.
    Recompute,
    /// The reducer composed per-section results into the final report.
    Compose,
}

impl SectionAction {
    pub fn as_str(self) -> &'static str {
        match self {
            SectionAction::Hit => "hit",
            SectionAction::Miss => "miss",
            SectionAction::Recompute => "recompute",
            SectionAction::Compose => "compose",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "hit" => Some(SectionAction::Hit),
            "miss" => Some(SectionAction::Miss),
            "recompute" => Some(SectionAction::Recompute),
            "compose" => Some(SectionAction::Compose),
            _ => None,
        }
    }
}

impl Event {
    pub fn kind(&self) -> &'static str {
        match self {
            Event::TraceStart { .. } => "trace_start",
            Event::TraceEnd { .. } => "trace_end",
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
            Event::Counter { .. } => "counter",
            Event::Histogram { .. } => "histogram",
            Event::CampaignProgress { .. } => "campaign_progress",
            Event::CampaignEnd { .. } => "campaign_end",
            Event::FunctionOutcomes { .. } => "function_outcomes",
            Event::GaGeneration { .. } => "ga_generation",
            Event::SearchInput { .. } => "search_input",
            Event::Knapsack { .. } => "knapsack",
            Event::CacheStats { .. } => "cache_stats",
            Event::JournalRecovery { .. } => "journal_recovery",
            Event::JournalStats { .. } => "journal_stats",
            Event::RetryAttempt { .. } => "retry_attempt",
            Event::Quarantine { .. } => "quarantine",
            Event::EarlyStop { .. } => "early_stop",
            Event::DeadlineTruncation { .. } => "deadline_truncation",
            Event::InterpProfile { .. } => "interp_profile",
            Event::SchedSummary { .. } => "sched_summary",
            Event::FleetWorker { .. } => "fleet_worker",
            Event::FleetShard { .. } => "fleet_shard",
            Event::FleetSummary { .. } => "fleet_summary",
            Event::StoreEvent { .. } => "store_event",
            Event::SectionEvent { .. } => "section_event",
        }
    }
}

/// An event plus its timestamp (microseconds since trace start).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    pub ts_us: u64,
    pub event: Event,
}

/// Schema-level (as opposed to JSON-level) decode failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    Json(JsonError),
    /// The line's `v` is not [`SCHEMA_VERSION`].
    Version(u64),
    UnknownKind(String),
    MissingField(&'static str),
    BadField(&'static str),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::Json(e) => write!(f, "{e}"),
            SchemaError::Version(v) => {
                write!(
                    f,
                    "schema version {v} (this analyzer reads {SCHEMA_VERSION})"
                )
            }
            SchemaError::UnknownKind(k) => write!(f, "unknown event kind `{k}`"),
            SchemaError::MissingField(k) => write!(f, "missing field `{k}`"),
            SchemaError::BadField(k) => write!(f, "malformed field `{k}`"),
        }
    }
}

impl std::error::Error for SchemaError {}

fn field<'a>(v: &'a Json, key: &'static str) -> Result<&'a Json, SchemaError> {
    v.get(key).ok_or(SchemaError::MissingField(key))
}

fn field_u64(v: &Json, key: &'static str) -> Result<u64, SchemaError> {
    field(v, key)?.as_u64().ok_or(SchemaError::BadField(key))
}

fn field_f64(v: &Json, key: &'static str) -> Result<f64, SchemaError> {
    field(v, key)?.as_f64().ok_or(SchemaError::BadField(key))
}

fn field_str(v: &Json, key: &'static str) -> Result<String, SchemaError> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or(SchemaError::BadField(key))
}

fn field_kind(v: &Json) -> Result<CampaignKind, SchemaError> {
    CampaignKind::from_str(&field_str(v, "campaign")?).ok_or(SchemaError::BadField("campaign"))
}

impl TimedEvent {
    /// Serialize as one compact JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut o = Json::obj();
        o.set("v", Json::U64(SCHEMA_VERSION as u64));
        o.set("ts_us", Json::U64(self.ts_us));
        o.set("kind", Json::Str(self.event.kind().to_string()));
        match &self.event {
            Event::TraceStart { tool } => o.set("tool", Json::Str(tool.clone())),
            Event::TraceEnd { dur_us } => o.set("dur_us", Json::U64(*dur_us)),
            Event::SpanBegin { id, name } => {
                o.set("id", Json::U64(*id));
                o.set("name", Json::Str(name.clone()));
            }
            Event::SpanEnd { id, name, dur_us } => {
                o.set("id", Json::U64(*id));
                o.set("name", Json::Str(name.clone()));
                o.set("dur_us", Json::U64(*dur_us));
            }
            Event::Counter { name, value } => {
                o.set("name", Json::Str(name.clone()));
                o.set("value", Json::U64(*value));
            }
            Event::Histogram { name, buckets } => {
                o.set("name", Json::Str(name.clone()));
                o.set(
                    "buckets",
                    Json::Array(
                        buckets
                            .iter()
                            .map(|&(lo, n)| Json::Array(vec![Json::U64(lo), Json::U64(n)]))
                            .collect(),
                    ),
                );
            }
            Event::CampaignProgress {
                kind,
                done,
                total,
                counts,
                elapsed_us,
            } => {
                o.set("campaign", Json::Str(kind.as_str().to_string()));
                o.set("done", Json::U64(*done));
                o.set("total", Json::U64(*total));
                o.set("counts", counts.to_json());
                o.set("elapsed_us", Json::U64(*elapsed_us));
            }
            Event::CampaignEnd {
                kind,
                injections,
                elapsed_us,
                counts,
                steps_executed,
                steps_skipped,
                restores,
            } => {
                o.set("campaign", Json::Str(kind.as_str().to_string()));
                o.set("injections", Json::U64(*injections));
                o.set("elapsed_us", Json::U64(*elapsed_us));
                o.set("counts", counts.to_json());
                o.set("steps_executed", Json::U64(*steps_executed));
                o.set("steps_skipped", Json::U64(*steps_skipped));
                o.set("restores", Json::U64(*restores));
            }
            Event::FunctionOutcomes { func, counts } => {
                o.set("func", Json::Str(func.clone()));
                o.set("counts", counts.to_json());
            }
            Event::GaGeneration {
                input_index,
                generation,
                best_fitness,
                mean_fitness,
                population,
                evals,
            } => {
                o.set("input_index", Json::U64(*input_index));
                o.set("generation", Json::U64(*generation));
                o.set("best_fitness", Json::F64(*best_fitness));
                o.set("mean_fitness", Json::F64(*mean_fitness));
                o.set("population", Json::U64(*population));
                o.set("evals", Json::U64(*evals));
            }
            Event::SearchInput {
                index,
                fitness,
                new_incubative,
                total_incubative,
            } => {
                o.set("index", Json::U64(*index));
                o.set("fitness", Json::F64(*fitness));
                o.set("new_incubative", Json::U64(*new_incubative));
                o.set("total_incubative", Json::U64(*total_incubative));
            }
            Event::Knapsack {
                budget,
                total_cycles,
                eligible,
                selected,
                protected_cycle_fraction,
                expected_coverage,
            } => {
                o.set("budget", Json::U64(*budget));
                o.set("total_cycles", Json::U64(*total_cycles));
                o.set("eligible", Json::U64(*eligible));
                o.set("selected", Json::U64(*selected));
                o.set(
                    "protected_cycle_fraction",
                    Json::F64(*protected_cycle_fraction),
                );
                o.set("expected_coverage", Json::F64(*expected_coverage));
            }
            Event::CacheStats {
                hits,
                misses,
                entries,
            } => {
                o.set("hits", Json::U64(*hits));
                o.set("misses", Json::U64(*misses));
                o.set("entries", Json::U64(*entries));
            }
            Event::JournalRecovery {
                records,
                truncated_bytes,
                dropped_records,
            } => {
                o.set("records", Json::U64(*records));
                o.set("truncated_bytes", Json::U64(*truncated_bytes));
                o.set("dropped_records", Json::U64(*dropped_records));
            }
            Event::JournalStats {
                recovered,
                appended,
            } => {
                o.set("recovered", Json::U64(*recovered));
                o.set("appended", Json::U64(*appended));
            }
            Event::RetryAttempt {
                kind,
                site,
                attempt,
                backoff_ms,
                reason,
            } => {
                o.set("campaign", Json::Str(kind.as_str().to_string()));
                o.set("site", Json::U64(*site));
                o.set("attempt", Json::U64(*attempt));
                o.set("backoff_ms", Json::U64(*backoff_ms));
                o.set("reason", Json::Str(reason.clone()));
            }
            Event::Quarantine {
                kind,
                site,
                failures,
                reason,
            } => {
                o.set("campaign", Json::Str(kind.as_str().to_string()));
                o.set("site", Json::U64(*site));
                o.set("failures", Json::U64(*failures));
                o.set("reason", Json::Str(reason.clone()));
            }
            Event::EarlyStop {
                kind,
                site,
                samples,
                half_width,
            } => {
                o.set("campaign", Json::Str(kind.as_str().to_string()));
                o.set("site", Json::U64(*site));
                o.set("samples", Json::U64(*samples));
                o.set("half_width", Json::F64(*half_width));
            }
            Event::DeadlineTruncation { kind, truncated } => {
                o.set("campaign", Json::Str(kind.as_str().to_string()));
                o.set("truncated", Json::U64(*truncated));
            }
            Event::InterpProfile {
                sample_every,
                total_samples,
                fused_samples,
                fused_sites,
                total_sites,
                encode_ns,
                encode_ops,
                restore_ns,
                restore_ops,
                samples,
            } => {
                o.set("sample_every", Json::U64(*sample_every));
                o.set("total_samples", Json::U64(*total_samples));
                o.set("fused_samples", Json::U64(*fused_samples));
                o.set("fused_sites", Json::U64(*fused_sites));
                o.set("total_sites", Json::U64(*total_sites));
                o.set("encode_ns", Json::U64(*encode_ns));
                o.set("encode_ops", Json::U64(*encode_ops));
                o.set("restore_ns", Json::U64(*restore_ns));
                o.set("restore_ops", Json::U64(*restore_ops));
                o.set(
                    "samples",
                    Json::Array(
                        samples
                            .iter()
                            .map(|(name, n)| {
                                Json::Array(vec![Json::Str(name.clone()), Json::U64(*n)])
                            })
                            .collect(),
                    ),
                );
            }
            Event::SchedSummary {
                retries,
                recovered,
                exhausted,
                quarantined_sites,
                quarantined_injections,
                early_stopped_sites,
                early_stop_skipped,
                truncated,
                completeness,
            } => {
                o.set("retries", Json::U64(*retries));
                o.set("recovered", Json::U64(*recovered));
                o.set("exhausted", Json::U64(*exhausted));
                o.set("quarantined_sites", Json::U64(*quarantined_sites));
                o.set("quarantined_injections", Json::U64(*quarantined_injections));
                o.set("early_stopped_sites", Json::U64(*early_stopped_sites));
                o.set("early_stop_skipped", Json::U64(*early_stop_skipped));
                o.set("truncated", Json::U64(*truncated));
                o.set("completeness", Json::F64(*completeness));
            }
            Event::FleetWorker {
                worker,
                event,
                restarts,
            } => {
                o.set("worker", Json::U64(*worker));
                o.set("event", Json::Str(event.clone()));
                o.set("restarts", Json::U64(*restarts));
            }
            Event::FleetShard {
                shard,
                worker,
                attempt,
                event,
            } => {
                o.set("shard", Json::U64(*shard));
                o.set("worker", Json::U64(*worker));
                o.set("attempt", Json::U64(*attempt));
                o.set("event", Json::Str(event.clone()));
            }
            Event::FleetSummary {
                workers,
                spawns,
                deaths,
                reassigned,
                poisoned_shards,
            } => {
                o.set("workers", Json::U64(*workers));
                o.set("spawns", Json::U64(*spawns));
                o.set("deaths", Json::U64(*deaths));
                o.set("reassigned", Json::U64(*reassigned));
                o.set("poisoned_shards", Json::U64(*poisoned_shards));
            }
            Event::StoreEvent {
                op,
                artifact,
                bytes,
            } => {
                o.set("op", Json::Str(op.clone()));
                o.set("artifact", Json::Str(artifact.clone()));
                o.set("bytes", Json::U64(*bytes));
            }
            Event::SectionEvent { fp, action, units } => {
                o.set("fp", Json::U64(*fp));
                o.set("action", Json::Str(action.as_str().to_string()));
                o.set("units", Json::U64(*units));
            }
        }
        o.render()
    }

    /// Parse one JSONL line. Strict: unknown versions, unknown kinds, and
    /// missing/malformed fields are all errors.
    pub fn parse_line(line: &str) -> Result<TimedEvent, SchemaError> {
        let v = parse(line.trim()).map_err(SchemaError::Json)?;
        let version = field_u64(&v, "v")?;
        if version != SCHEMA_VERSION as u64 {
            return Err(SchemaError::Version(version));
        }
        let ts_us = field_u64(&v, "ts_us")?;
        let kind = field_str(&v, "kind")?;
        let event = match kind.as_str() {
            "trace_start" => Event::TraceStart {
                tool: field_str(&v, "tool")?,
            },
            "trace_end" => Event::TraceEnd {
                dur_us: field_u64(&v, "dur_us")?,
            },
            "span_begin" => Event::SpanBegin {
                id: field_u64(&v, "id")?,
                name: field_str(&v, "name")?,
            },
            "span_end" => Event::SpanEnd {
                id: field_u64(&v, "id")?,
                name: field_str(&v, "name")?,
                dur_us: field_u64(&v, "dur_us")?,
            },
            "counter" => Event::Counter {
                name: field_str(&v, "name")?,
                value: field_u64(&v, "value")?,
            },
            "histogram" => {
                let raw = field(&v, "buckets")?
                    .as_array()
                    .ok_or(SchemaError::BadField("buckets"))?;
                let mut buckets = Vec::with_capacity(raw.len());
                for pair in raw {
                    let pair = pair.as_array().ok_or(SchemaError::BadField("buckets"))?;
                    match pair {
                        [lo, n] => buckets.push((
                            lo.as_u64().ok_or(SchemaError::BadField("buckets"))?,
                            n.as_u64().ok_or(SchemaError::BadField("buckets"))?,
                        )),
                        _ => return Err(SchemaError::BadField("buckets")),
                    }
                }
                Event::Histogram {
                    name: field_str(&v, "name")?,
                    buckets,
                }
            }
            "campaign_progress" => Event::CampaignProgress {
                kind: field_kind(&v)?,
                done: field_u64(&v, "done")?,
                total: field_u64(&v, "total")?,
                counts: OutcomeTally::from_json(field(&v, "counts")?)?,
                elapsed_us: field_u64(&v, "elapsed_us")?,
            },
            "campaign_end" => Event::CampaignEnd {
                kind: field_kind(&v)?,
                injections: field_u64(&v, "injections")?,
                elapsed_us: field_u64(&v, "elapsed_us")?,
                counts: OutcomeTally::from_json(field(&v, "counts")?)?,
                steps_executed: field_u64(&v, "steps_executed")?,
                steps_skipped: field_u64(&v, "steps_skipped")?,
                restores: field_u64(&v, "restores")?,
            },
            "function_outcomes" => Event::FunctionOutcomes {
                func: field_str(&v, "func")?,
                counts: OutcomeTally::from_json(field(&v, "counts")?)?,
            },
            "ga_generation" => Event::GaGeneration {
                input_index: field_u64(&v, "input_index")?,
                generation: field_u64(&v, "generation")?,
                best_fitness: field_f64(&v, "best_fitness")?,
                mean_fitness: field_f64(&v, "mean_fitness")?,
                population: field_u64(&v, "population")?,
                evals: field_u64(&v, "evals")?,
            },
            "search_input" => Event::SearchInput {
                index: field_u64(&v, "index")?,
                fitness: field_f64(&v, "fitness")?,
                new_incubative: field_u64(&v, "new_incubative")?,
                total_incubative: field_u64(&v, "total_incubative")?,
            },
            "knapsack" => Event::Knapsack {
                budget: field_u64(&v, "budget")?,
                total_cycles: field_u64(&v, "total_cycles")?,
                eligible: field_u64(&v, "eligible")?,
                selected: field_u64(&v, "selected")?,
                protected_cycle_fraction: field_f64(&v, "protected_cycle_fraction")?,
                expected_coverage: field_f64(&v, "expected_coverage")?,
            },
            "cache_stats" => Event::CacheStats {
                hits: field_u64(&v, "hits")?,
                misses: field_u64(&v, "misses")?,
                entries: field_u64(&v, "entries")?,
            },
            "journal_recovery" => Event::JournalRecovery {
                records: field_u64(&v, "records")?,
                truncated_bytes: field_u64(&v, "truncated_bytes")?,
                dropped_records: field_u64(&v, "dropped_records")?,
            },
            "journal_stats" => Event::JournalStats {
                recovered: field_u64(&v, "recovered")?,
                appended: field_u64(&v, "appended")?,
            },
            "retry_attempt" => Event::RetryAttempt {
                kind: field_kind(&v)?,
                site: field_u64(&v, "site")?,
                attempt: field_u64(&v, "attempt")?,
                backoff_ms: field_u64(&v, "backoff_ms")?,
                reason: field_str(&v, "reason")?,
            },
            "quarantine" => Event::Quarantine {
                kind: field_kind(&v)?,
                site: field_u64(&v, "site")?,
                failures: field_u64(&v, "failures")?,
                reason: field_str(&v, "reason")?,
            },
            "early_stop" => Event::EarlyStop {
                kind: field_kind(&v)?,
                site: field_u64(&v, "site")?,
                samples: field_u64(&v, "samples")?,
                half_width: field_f64(&v, "half_width")?,
            },
            "deadline_truncation" => Event::DeadlineTruncation {
                kind: field_kind(&v)?,
                truncated: field_u64(&v, "truncated")?,
            },
            "interp_profile" => {
                let raw = field(&v, "samples")?
                    .as_array()
                    .ok_or(SchemaError::BadField("samples"))?;
                let mut samples = Vec::with_capacity(raw.len());
                for pair in raw {
                    let pair = pair.as_array().ok_or(SchemaError::BadField("samples"))?;
                    match pair {
                        [name, n] => samples.push((
                            name.as_str()
                                .ok_or(SchemaError::BadField("samples"))?
                                .to_string(),
                            n.as_u64().ok_or(SchemaError::BadField("samples"))?,
                        )),
                        _ => return Err(SchemaError::BadField("samples")),
                    }
                }
                Event::InterpProfile {
                    sample_every: field_u64(&v, "sample_every")?,
                    total_samples: field_u64(&v, "total_samples")?,
                    fused_samples: field_u64(&v, "fused_samples")?,
                    fused_sites: field_u64(&v, "fused_sites")?,
                    total_sites: field_u64(&v, "total_sites")?,
                    encode_ns: field_u64(&v, "encode_ns")?,
                    encode_ops: field_u64(&v, "encode_ops")?,
                    restore_ns: field_u64(&v, "restore_ns")?,
                    restore_ops: field_u64(&v, "restore_ops")?,
                    samples,
                }
            }
            "sched_summary" => Event::SchedSummary {
                retries: field_u64(&v, "retries")?,
                recovered: field_u64(&v, "recovered")?,
                exhausted: field_u64(&v, "exhausted")?,
                quarantined_sites: field_u64(&v, "quarantined_sites")?,
                quarantined_injections: field_u64(&v, "quarantined_injections")?,
                early_stopped_sites: field_u64(&v, "early_stopped_sites")?,
                early_stop_skipped: field_u64(&v, "early_stop_skipped")?,
                truncated: field_u64(&v, "truncated")?,
                completeness: field_f64(&v, "completeness")?,
            },
            "fleet_worker" => Event::FleetWorker {
                worker: field_u64(&v, "worker")?,
                event: field_str(&v, "event")?,
                restarts: field_u64(&v, "restarts")?,
            },
            "fleet_shard" => Event::FleetShard {
                shard: field_u64(&v, "shard")?,
                worker: field_u64(&v, "worker")?,
                attempt: field_u64(&v, "attempt")?,
                event: field_str(&v, "event")?,
            },
            "fleet_summary" => Event::FleetSummary {
                workers: field_u64(&v, "workers")?,
                spawns: field_u64(&v, "spawns")?,
                deaths: field_u64(&v, "deaths")?,
                reassigned: field_u64(&v, "reassigned")?,
                poisoned_shards: field_u64(&v, "poisoned_shards")?,
            },
            "store_event" => Event::StoreEvent {
                op: field_str(&v, "op")?,
                artifact: field_str(&v, "artifact")?,
                bytes: field_u64(&v, "bytes")?,
            },
            "section_event" => Event::SectionEvent {
                fp: field_u64(&v, "fp")?,
                action: SectionAction::from_str(&field_str(&v, "action")?)
                    .ok_or(SchemaError::BadField("action"))?,
                units: field_u64(&v, "units")?,
            },
            other => return Err(SchemaError::UnknownKind(other.to_string())),
        };
        Ok(TimedEvent { ts_us, event })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(ev: Event) {
        let t = TimedEvent {
            ts_us: 123,
            event: ev,
        };
        let line = t.to_line();
        let back = TimedEvent::parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(back, t, "line: {line}");
    }

    #[test]
    fn every_variant_round_trips() {
        rt(Event::TraceStart {
            tool: "minpsid 0.1".into(),
        });
        rt(Event::TraceEnd { dur_us: 9 });
        rt(Event::SpanBegin {
            id: 1,
            name: "ref_fi".into(),
        });
        rt(Event::SpanEnd {
            id: 1,
            name: "ref_fi".into(),
            dur_us: 42,
        });
        rt(Event::Counter {
            name: "cache.hits".into(),
            value: u64::MAX,
        });
        rt(Event::Histogram {
            name: "restore.suffix_steps".into(),
            buckets: vec![(0, 3), (1024, 17)],
        });
        rt(Event::CampaignProgress {
            kind: CampaignKind::Program,
            done: 10,
            total: 100,
            counts: OutcomeTally {
                benign: 5,
                sdc: 2,
                crash: 1,
                hang: 1,
                detected: 1,
                engine_error: 1,
                transient_recovered: 2,
                quarantined: 3,
            },
            elapsed_us: 7,
        });
        rt(Event::CampaignEnd {
            kind: CampaignKind::PerInst,
            injections: 100,
            elapsed_us: 88,
            counts: OutcomeTally {
                benign: 90,
                sdc: 10,
                ..OutcomeTally::default()
            },
            steps_executed: 1000,
            steps_skipped: 5000,
            restores: 99,
        });
        rt(Event::FunctionOutcomes {
            func: "main".into(),
            counts: OutcomeTally {
                sdc: 3,
                ..OutcomeTally::default()
            },
        });
        rt(Event::GaGeneration {
            input_index: 2,
            generation: 4,
            best_fitness: 12.5,
            mean_fitness: 3.25,
            population: 10,
            evals: 14,
        });
        rt(Event::SearchInput {
            index: 3,
            fitness: 0.5,
            new_incubative: 2,
            total_incubative: 7,
        });
        rt(Event::Knapsack {
            budget: 500,
            total_cycles: 1000,
            eligible: 80,
            selected: 40,
            protected_cycle_fraction: 0.5,
            expected_coverage: 0.875,
        });
        rt(Event::CacheStats {
            hits: 4,
            misses: 2,
            entries: 2,
        });
        rt(Event::JournalRecovery {
            records: 321,
            truncated_bytes: 13,
            dropped_records: 2,
        });
        rt(Event::JournalStats {
            recovered: 200,
            appended: 121,
        });
        rt(Event::RetryAttempt {
            kind: CampaignKind::PerInst,
            site: 17,
            attempt: 1,
            backoff_ms: 3,
            reason: "panic".into(),
        });
        rt(Event::Quarantine {
            kind: CampaignKind::PerInst,
            site: 17,
            failures: 2,
            reason: "timeout".into(),
        });
        rt(Event::EarlyStop {
            kind: CampaignKind::PerInst,
            site: 5,
            samples: 40,
            half_width: 0.05,
        });
        rt(Event::DeadlineTruncation {
            kind: CampaignKind::Program,
            truncated: 12,
        });
        rt(Event::InterpProfile {
            sample_every: 1024,
            total_samples: 4096,
            fused_samples: 3000,
            fused_sites: 120,
            total_sites: 400,
            encode_ns: 1_000_000,
            encode_ops: 10,
            restore_ns: 2_000_000,
            restore_ops: 99,
            samples: vec![("LoadBinStoreBr".into(), 2500), ("BinII".into(), 500)],
        });
        rt(Event::SchedSummary {
            retries: 9,
            recovered: 7,
            exhausted: 2,
            quarantined_sites: 1,
            quarantined_injections: 20,
            early_stopped_sites: 3,
            early_stop_skipped: 55,
            truncated: 12,
            completeness: 0.875,
        });
        rt(Event::FleetWorker {
            worker: 2,
            event: "died".into(),
            restarts: 3,
        });
        rt(Event::FleetShard {
            shard: 5,
            worker: 1,
            attempt: 2,
            event: "reassigned".into(),
        });
        rt(Event::FleetSummary {
            workers: 4,
            spawns: 7,
            deaths: 3,
            reassigned: 3,
            poisoned_shards: 1,
        });
        rt(Event::StoreEvent {
            op: "quarantine".into(),
            artifact: "golden".into(),
            bytes: 4096,
        });
        for action in [
            SectionAction::Hit,
            SectionAction::Miss,
            SectionAction::Recompute,
            SectionAction::Compose,
        ] {
            rt(Event::SectionEvent {
                fp: u64::MAX,
                action,
                units: 120,
            });
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let line = TimedEvent {
            ts_us: 0,
            event: Event::TraceEnd { dur_us: 0 },
        }
        .to_line()
        .replace("\"v\":7", "\"v\":999");
        assert!(matches!(
            TimedEvent::parse_line(&line),
            Err(SchemaError::Version(999))
        ));
    }

    #[test]
    fn unknown_kind_and_missing_fields_are_rejected() {
        assert!(matches!(
            TimedEvent::parse_line(r#"{"v":7,"ts_us":0,"kind":"mystery"}"#),
            Err(SchemaError::UnknownKind(_))
        ));
        assert!(matches!(
            TimedEvent::parse_line(r#"{"v":7,"ts_us":0,"kind":"counter","name":"x"}"#),
            Err(SchemaError::MissingField("value"))
        ));
        assert!(matches!(
            TimedEvent::parse_line("not json at all"),
            Err(SchemaError::Json(_))
        ));
    }
}
