//! Minimal JSON value, writer, and parser.
//!
//! The dependency budget has no `serde`/`serde_json`, and the trace
//! schema only needs objects, arrays, strings, integers, floats, and
//! booleans — so a ~200-line hand-rolled codec is used instead. Objects
//! preserve insertion order, which keeps emitted lines byte-deterministic
//! for a given event.

use std::fmt::Write as _;

/// A JSON value. Numbers are split into `U64`/`I64`/`F64` so `u64`
/// counters round-trip bit-exactly (an `f64` mantissa cannot hold them).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Json>),
    /// Insertion-ordered object.
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Object(Vec::new())
    }

    /// Append a field to an object (panics on non-objects; builder use only).
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Object(fields) => fields.push((key.to_string(), value)),
            _ => panic!("Json::set on a non-object"),
        }
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(v) => Some(v),
            Json::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::F64(v) => Some(v),
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Render as compact JSON (no whitespace), suitable for one JSONL line.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                // JSON has no NaN/Inf; clamp to null (the parser treats a
                // null numeric field as absent). Finite floats use Rust's
                // shortest round-trip formatting, but always with a decimal
                // marker so the parser reads them back as F64.
                if v.is_finite() {
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // surrogate pairs are not emitted by the writer;
                            // map lone surrogates to U+FFFD on read
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| self.err("bad float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|_| self.err("bad integer"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| self.err("bad integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (src, val) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::U64(0)),
            ("18446744073709551615", Json::U64(u64::MAX)),
            ("-42", Json::I64(-42)),
            ("1.5", Json::F64(1.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(src).unwrap(), val, "{src}");
            assert_eq!(parse(&val.render()).unwrap(), val, "{src}");
        }
    }

    #[test]
    fn floats_always_render_with_marker() {
        // 3.0 must not render as `3` (which would parse back as U64)
        assert_eq!(Json::F64(3.0).render(), "3.0");
        assert_eq!(parse("3.0").unwrap(), Json::F64(3.0));
        assert_eq!(parse("2.5e3").unwrap(), Json::F64(2500.0));
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}f — δ".into());
        assert_eq!(parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut o = Json::obj();
        o.set(
            "k",
            Json::Array(vec![Json::U64(1), Json::Null, Json::obj()]),
        );
        o.set("s", Json::Str("x".into()));
        let line = o.render();
        assert_eq!(parse(&line).unwrap(), o);
        assert!(!line.contains(' '), "compact rendering");
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("12 34").unwrap_err().message.contains("trailing"));
    }

    #[test]
    fn object_lookup_and_coercions() {
        let v = parse(r#"{"a":1,"b":-2,"c":1.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_i64(), Some(-2));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("missing"), None);
    }
}
