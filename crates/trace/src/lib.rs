//! # minpsid-trace — structured tracing + metrics for the MINPSID pipeline
//!
//! Production SDC-screening fleets treat telemetry as a first-class output
//! ("Silent Data Corruptions at Scale", Dixit et al.); this crate gives
//! the reproduction the same substrate, in the `tlparse` idiom: the run
//! emits a structured JSONL trace, and an offline analyzer turns the log
//! into a human-readable report.
//!
//! Three layers:
//!
//! * **Schema** ([`event`]): versioned event structs ([`Event`], wrapped
//!   in [`TimedEvent`]) with hand-rolled JSON round-tripping over
//!   [`json`] — every line carries `"v": SCHEMA_VERSION` and the parser
//!   rejects anything it does not understand, so reports never silently
//!   misparse.
//! * **Sink** ([`sink`]): a `Sync`, process-wide sink that is a no-op
//!   static until a file ([`init_file`]) or observer ([`add_observer`])
//!   is attached — the disabled cost is one relaxed atomic load. Hot
//!   paths use lock-free primitives ([`CampaignCounters`], [`Histogram`])
//!   that a sampler thread ([`sample_campaign`]) turns into events at a
//!   fixed low rate; [`span`] guards mark pipeline stages.
//! * **Analyzer** ([`report`]): `minpsid trace report <log>` parses the
//!   JSONL into a [`TraceSummary`] and renders markdown/HTML with stage
//!   time breakdowns, FI throughput + outcome distributions, checkpoint
//!   restore savings, golden-cache hit rates, and per-generation GA
//!   fitness curves.
//!
//! The crate sits at the bottom of the workspace dependency graph (it
//! depends on nothing), so every layer — interp, faultsim, sid, core,
//! CLI, bench — can emit events.

pub mod bridge;
pub mod event;
pub mod json;
pub mod report;
pub mod sink;

pub use event::{
    CampaignKind, Event, OutcomeTally, SchemaError, SectionAction, TimedEvent, SCHEMA_VERSION,
};
pub use report::{
    parse_log, render_html, render_markdown, summarize, CampaignStat, JournalStat, SchedStat,
    TraceSummary,
};
pub use sink::{
    active, add_observer, emit, flush, init_file, init_writer, sample_campaign, shutdown, span,
    CampaignCounters, Histogram, OutcomeKind, Span,
};
