//! Offline trace analyzer (the `tlparse` idiom): parse a JSONL trace log
//! into a [`TraceSummary`] and render it as markdown or HTML.
//!
//! Parsing is strict — the first malformed line fails the whole log with
//! its line number, so a schema drift is loud instead of producing a
//! silently wrong report.

use crate::event::{CampaignKind, Event, OutcomeTally, SchemaError, SectionAction, TimedEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parse every line of a JSONL trace log. Blank lines are ignored;
/// anything else must decode. On failure returns (1-based line number,
/// error).
pub fn parse_log(text: &str) -> Result<Vec<TimedEvent>, (usize, SchemaError)> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(TimedEvent::parse_line(line).map_err(|e| (i + 1, e))?);
    }
    Ok(events)
}

/// Aggregate per-stage span statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStat {
    pub name: String,
    pub calls: u64,
    pub total_us: u64,
}

/// One completed span instance, for the stage waterfall: begin/end pairs
/// matched by span id.
#[derive(Debug, Clone, PartialEq)]
pub struct WaterfallEntry {
    pub name: String,
    /// Timestamp of the span's begin event (µs since trace start).
    pub start_us: u64,
    pub dur_us: u64,
}

/// Cap on rendered waterfall rows: the first slice of a long run is what
/// shows the plan/execute/reduce shape; the full span set is still in
/// the stage table.
const WATERFALL_CAP: usize = 48;

/// Accumulated interpreter sampling-profiler state (v4 `interp_profile`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InterpProfileStat {
    pub sample_every: u64,
    pub total_samples: u64,
    pub fused_samples: u64,
    pub fused_sites: u64,
    pub total_sites: u64,
    pub encode_ns: u64,
    pub encode_ops: u64,
    pub restore_ns: u64,
    pub restore_ops: u64,
    /// `(op name, samples)`, descending.
    pub samples: Vec<(String, u64)>,
}

impl InterpProfileStat {
    pub fn fused_sample_rate(&self) -> f64 {
        if self.total_samples == 0 {
            0.0
        } else {
            self.fused_samples as f64 / self.total_samples as f64
        }
    }

    fn mean_us(ns: u64, ops: u64) -> f64 {
        if ops == 0 {
            0.0
        } else {
            ns as f64 / ops as f64 / 1e3
        }
    }

    /// Flamegraph-compatible folded stacks (`minpsid;interp;<op> <n>`).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (name, n) in &self.samples {
            let _ = writeln!(out, "minpsid;interp;{name} {n}");
        }
        out
    }
}

/// Aggregate statistics of one campaign shape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignStat {
    pub campaigns: u64,
    pub injections: u64,
    pub elapsed_us: u64,
    pub counts: OutcomeTally,
    pub steps_executed: u64,
    pub steps_skipped: u64,
    pub restores: u64,
}

impl CampaignStat {
    pub fn throughput(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.injections as f64 / (self.elapsed_us as f64 / 1e6)
        }
    }

    /// Fraction of golden-run-equivalent work skipped via restores.
    pub fn savings(&self) -> f64 {
        let total = self.steps_executed + self.steps_skipped;
        if total == 0 {
            0.0
        } else {
            self.steps_skipped as f64 / total as f64
        }
    }
}

/// One GA generation data point.
#[derive(Debug, Clone, PartialEq)]
pub struct GaPoint {
    pub input_index: u64,
    pub generation: u64,
    pub best_fitness: f64,
    pub mean_fitness: f64,
}

/// One accepted search input.
#[derive(Debug, Clone, PartialEq)]
pub struct InputPoint {
    pub index: u64,
    pub fitness: f64,
    pub new_incubative: u64,
    pub total_incubative: u64,
}

/// Everything the report renders, extracted in one pass.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    pub tool: Option<String>,
    pub events: usize,
    /// Wall time covered: `trace_end.dur_us`, or the last timestamp.
    pub wall_us: u64,
    pub stages: Vec<StageStat>,
    pub program: CampaignStat,
    pub per_inst: CampaignStat,
    pub functions: Vec<(String, OutcomeTally)>,
    pub ga: Vec<GaPoint>,
    pub inputs: Vec<InputPoint>,
    pub knapsack: Option<KnapsackStat>,
    pub cache: Option<CacheStat>,
    pub journal: Option<JournalStat>,
    /// Artifact-store accounting aggregated over `store_event`s.
    pub store: Option<StoreStat>,
    /// Section-cache accounting aggregated over `section_event`s.
    pub sections: Option<SectionStat>,
    /// Run-level scheduler accounting (last `sched_summary` event).
    pub sched: Option<SchedStat>,
    /// Raw resilience event counts, present even when the run died
    /// before emitting its `sched_summary`.
    pub retry_events: u64,
    pub quarantine_events: u64,
    pub early_stop_events: u64,
    pub truncation_events: u64,
    /// End-of-run fleet accounting (last `fleet_summary` event).
    pub fleet: Option<FleetStat>,
    /// Raw fleet lifecycle event counts, present even when the
    /// supervisor died before emitting its summary.
    pub fleet_worker_events: u64,
    pub fleet_shard_events: u64,
    /// Last sample of each named counter.
    pub counters: BTreeMap<String, u64>,
    /// Last sample of each named histogram.
    pub histograms: BTreeMap<String, Vec<(u64, u64)>>,
    /// Spans that began but never ended (crashed / truncated trace).
    pub open_spans: u64,
    /// Interpreter sampling profile (last `interp_profile` event).
    pub interp_profile: Option<InterpProfileStat>,
    /// Completed span instances in begin order, capped at
    /// [`WATERFALL_CAP`] rows.
    pub waterfall: Vec<WaterfallEntry>,
    /// Completed spans beyond the cap (not in `waterfall`).
    pub waterfall_dropped: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnapsackStat {
    pub budget: u64,
    pub total_cycles: u64,
    pub eligible: u64,
    pub selected: u64,
    pub protected_cycle_fraction: f64,
    pub expected_coverage: f64,
}

/// Crash-safe journal accounting: what recovery found when the log was
/// opened, and how much of the run it then served vs executed fresh.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStat {
    pub recovered_records: u64,
    pub truncated_bytes: u64,
    /// Intact records dropped past a mid-file checksum mismatch
    /// (nonzero = bit rot inside the WAL, not a torn tail).
    pub dropped_records: u64,
    pub served: u64,
    pub appended: u64,
}

/// Content-addressed artifact store accounting: per-op event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStat {
    pub publishes: u64,
    pub loads: u64,
    pub quarantines: u64,
    pub chaos_flips: u64,
}

/// Section-level memoization accounting aggregated over
/// `section_event`s: how much of the campaign was served from cached
/// per-section outcome tables vs executed fresh.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectionStat {
    pub hits: u64,
    pub misses: u64,
    pub recomputes: u64,
    pub composes: u64,
    /// Injections served from cached tables (sum of `units` on hits).
    pub served_injections: u64,
}

/// Process-isolated fleet accounting: worker spawns/deaths, shard
/// reassignment, and poisoned shards.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetStat {
    pub workers: u64,
    pub spawns: u64,
    pub deaths: u64,
    pub reassigned: u64,
    pub poisoned_shards: u64,
}

/// Resilient-scheduler accounting: retries, quarantine, early stopping,
/// and deadline truncation, plus the campaign-level completeness score.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedStat {
    pub retries: u64,
    pub recovered: u64,
    pub exhausted: u64,
    pub quarantined_sites: u64,
    pub quarantined_injections: u64,
    pub early_stopped_sites: u64,
    pub early_stop_skipped: u64,
    pub truncated: u64,
    pub completeness: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStat {
    pub hits: u64,
    pub misses: u64,
    pub entries: u64,
}

impl CacheStat {
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

fn add_tally(into: &mut OutcomeTally, from: &OutcomeTally) {
    into.benign += from.benign;
    into.sdc += from.sdc;
    into.crash += from.crash;
    into.hang += from.hang;
    into.detected += from.detected;
    into.engine_error += from.engine_error;
    into.transient_recovered += from.transient_recovered;
    into.quarantined += from.quarantined;
}

/// Fold a parsed event stream into a [`TraceSummary`].
pub fn summarize(events: &[TimedEvent]) -> TraceSummary {
    let mut s = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    let mut stage_order: Vec<String> = Vec::new();
    let mut stages: BTreeMap<String, StageStat> = BTreeMap::new();
    let mut begun: u64 = 0;
    let mut ended: u64 = 0;
    let mut func_order: Vec<String> = Vec::new();
    let mut funcs: BTreeMap<String, OutcomeTally> = BTreeMap::new();
    // open spans by id, for waterfall begin/end pairing
    let mut open: BTreeMap<u64, u64> = BTreeMap::new();

    for te in events {
        s.wall_us = s.wall_us.max(te.ts_us);
        match &te.event {
            Event::TraceStart { tool } => s.tool = Some(tool.clone()),
            Event::TraceEnd { dur_us } => s.wall_us = s.wall_us.max(*dur_us),
            Event::SpanBegin { id, .. } => {
                begun += 1;
                open.insert(*id, te.ts_us);
            }
            Event::SpanEnd { id, name, dur_us } => {
                ended += 1;
                let st = stages.entry(name.clone()).or_insert_with(|| {
                    stage_order.push(name.clone());
                    StageStat {
                        name: name.clone(),
                        calls: 0,
                        total_us: 0,
                    }
                });
                st.calls += 1;
                st.total_us += dur_us;
                // waterfall entry: begin ts if paired, else derive from
                // the end event (pre-v4 logs may lack the begin line)
                let start_us = open
                    .remove(id)
                    .unwrap_or_else(|| te.ts_us.saturating_sub(*dur_us));
                if s.waterfall.len() < WATERFALL_CAP {
                    s.waterfall.push(WaterfallEntry {
                        name: name.clone(),
                        start_us,
                        dur_us: *dur_us,
                    });
                } else {
                    s.waterfall_dropped += 1;
                }
            }
            Event::Counter { name, value } => {
                s.counters.insert(name.clone(), *value);
            }
            Event::Histogram { name, buckets } => {
                s.histograms.insert(name.clone(), buckets.clone());
            }
            Event::CampaignProgress { .. } => {}
            Event::CampaignEnd {
                kind,
                injections,
                elapsed_us,
                counts,
                steps_executed,
                steps_skipped,
                restores,
            } => {
                let stat = match kind {
                    CampaignKind::Program => &mut s.program,
                    CampaignKind::PerInst => &mut s.per_inst,
                };
                stat.campaigns += 1;
                stat.injections += injections;
                stat.elapsed_us += elapsed_us;
                add_tally(&mut stat.counts, counts);
                stat.steps_executed += steps_executed;
                stat.steps_skipped += steps_skipped;
                stat.restores += restores;
            }
            Event::FunctionOutcomes { func, counts } => {
                let t = funcs.entry(func.clone()).or_insert_with(|| {
                    func_order.push(func.clone());
                    OutcomeTally::default()
                });
                add_tally(t, counts);
            }
            Event::GaGeneration {
                input_index,
                generation,
                best_fitness,
                mean_fitness,
                ..
            } => s.ga.push(GaPoint {
                input_index: *input_index,
                generation: *generation,
                best_fitness: *best_fitness,
                mean_fitness: *mean_fitness,
            }),
            Event::SearchInput {
                index,
                fitness,
                new_incubative,
                total_incubative,
            } => s.inputs.push(InputPoint {
                index: *index,
                fitness: *fitness,
                new_incubative: *new_incubative,
                total_incubative: *total_incubative,
            }),
            Event::Knapsack {
                budget,
                total_cycles,
                eligible,
                selected,
                protected_cycle_fraction,
                expected_coverage,
            } => {
                s.knapsack = Some(KnapsackStat {
                    budget: *budget,
                    total_cycles: *total_cycles,
                    eligible: *eligible,
                    selected: *selected,
                    protected_cycle_fraction: *protected_cycle_fraction,
                    expected_coverage: *expected_coverage,
                });
            }
            Event::CacheStats {
                hits,
                misses,
                entries,
            } => {
                s.cache = Some(CacheStat {
                    hits: *hits,
                    misses: *misses,
                    entries: *entries,
                });
            }
            Event::JournalRecovery {
                records,
                truncated_bytes,
                dropped_records,
            } => {
                let j = s.journal.get_or_insert_with(JournalStat::default);
                j.recovered_records = *records;
                j.truncated_bytes = *truncated_bytes;
                j.dropped_records = *dropped_records;
            }
            Event::JournalStats {
                recovered,
                appended,
            } => {
                let j = s.journal.get_or_insert_with(JournalStat::default);
                j.served = *recovered;
                j.appended = *appended;
            }
            Event::InterpProfile {
                sample_every,
                total_samples,
                fused_samples,
                fused_sites,
                total_sites,
                encode_ns,
                encode_ops,
                restore_ns,
                restore_ops,
                samples,
            } => {
                s.interp_profile = Some(InterpProfileStat {
                    sample_every: *sample_every,
                    total_samples: *total_samples,
                    fused_samples: *fused_samples,
                    fused_sites: *fused_sites,
                    total_sites: *total_sites,
                    encode_ns: *encode_ns,
                    encode_ops: *encode_ops,
                    restore_ns: *restore_ns,
                    restore_ops: *restore_ops,
                    samples: samples.clone(),
                });
            }
            Event::RetryAttempt { .. } => s.retry_events += 1,
            Event::Quarantine { .. } => s.quarantine_events += 1,
            Event::EarlyStop { .. } => s.early_stop_events += 1,
            Event::DeadlineTruncation { .. } => s.truncation_events += 1,
            Event::SchedSummary {
                retries,
                recovered,
                exhausted,
                quarantined_sites,
                quarantined_injections,
                early_stopped_sites,
                early_stop_skipped,
                truncated,
                completeness,
            } => {
                s.sched = Some(SchedStat {
                    retries: *retries,
                    recovered: *recovered,
                    exhausted: *exhausted,
                    quarantined_sites: *quarantined_sites,
                    quarantined_injections: *quarantined_injections,
                    early_stopped_sites: *early_stopped_sites,
                    early_stop_skipped: *early_stop_skipped,
                    truncated: *truncated,
                    completeness: *completeness,
                });
            }
            Event::FleetWorker { .. } => s.fleet_worker_events += 1,
            Event::FleetShard { .. } => s.fleet_shard_events += 1,
            Event::StoreEvent { op, .. } => {
                let st = s.store.get_or_insert_with(StoreStat::default);
                match op.as_str() {
                    "publish" => st.publishes += 1,
                    "load" => st.loads += 1,
                    "quarantine" => st.quarantines += 1,
                    "chaos_flip" => st.chaos_flips += 1,
                    _ => {}
                }
            }
            Event::SectionEvent { action, units, .. } => {
                let st = s.sections.get_or_insert_with(SectionStat::default);
                match action {
                    SectionAction::Hit => {
                        st.hits += 1;
                        st.served_injections += units;
                    }
                    SectionAction::Miss => st.misses += 1,
                    SectionAction::Recompute => st.recomputes += 1,
                    SectionAction::Compose => st.composes += 1,
                }
            }
            Event::FleetSummary {
                workers,
                spawns,
                deaths,
                reassigned,
                poisoned_shards,
            } => {
                s.fleet = Some(FleetStat {
                    workers: *workers,
                    spawns: *spawns,
                    deaths: *deaths,
                    reassigned: *reassigned,
                    poisoned_shards: *poisoned_shards,
                });
            }
        }
    }
    s.open_spans = begun.saturating_sub(ended);
    s.stages = stage_order
        .into_iter()
        .map(|n| stages.remove(&n).unwrap())
        .collect();
    s.functions = func_order
        .into_iter()
        .map(|n| {
            let t = funcs.remove(&n).unwrap();
            (n, t)
        })
        .collect();
    s
}

fn secs(us: u64) -> f64 {
    us as f64 / 1e6
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64 * 100.0
    }
}

fn tally_row(t: &OutcomeTally) -> String {
    let total = t.total();
    format!(
        "{} | {} ({:.1}%) | {} ({:.1}%) | {} ({:.1}%) | {} ({:.1}%) | {} ({:.1}%) | {} ({:.1}%)",
        total,
        t.benign,
        pct(t.benign, total),
        t.sdc,
        pct(t.sdc, total),
        t.crash,
        pct(t.crash, total),
        t.hang,
        pct(t.hang, total),
        t.detected,
        pct(t.detected, total),
        t.engine_error,
        pct(t.engine_error, total),
    )
}

fn campaign_section(out: &mut String, title: &str, c: &CampaignStat) {
    if c.campaigns == 0 {
        return;
    }
    let _ = writeln!(out, "### {title}\n");
    let _ = writeln!(out, "- campaigns: {}", c.campaigns);
    let _ = writeln!(out, "- injections: {}", c.injections);
    let _ = writeln!(
        out,
        "- throughput: {:.0} injections/s (cumulative campaign time {:.2} s)",
        c.throughput(),
        secs(c.elapsed_us)
    );
    let _ = writeln!(
        out,
        "\n| total | benign | sdc | crash | hang | detected | engine-err |\n|---|---|---|---|---|---|---|"
    );
    let _ = writeln!(out, "| {} |", tally_row(&c.counts));
    let _ = writeln!(
        out,
        "\ncheckpoint restores: {} of {} injections resumed from a snapshot; \
         {} dynamic steps executed, {} skipped (**{:.1}% replay work saved**)\n",
        c.restores,
        c.injections,
        c.steps_executed,
        c.steps_skipped,
        c.savings() * 100.0
    );
    if c.counts.transient_recovered + c.counts.quarantined > 0 {
        let _ = writeln!(
            out,
            "resilience: {} injection(s) recovered via retry (counted once above), \
             {} skipped by quarantine (excluded from rates)\n",
            c.counts.transient_recovered, c.counts.quarantined
        );
    }
}

/// Render the summary as a markdown report.
pub fn render_markdown(s: &TraceSummary) -> String {
    let mut out = String::with_capacity(4096);
    let _ = writeln!(out, "# minpsid trace report\n");
    if let Some(tool) = &s.tool {
        let _ = writeln!(out, "- tool: {tool}");
    }
    let _ = writeln!(out, "- events: {}", s.events);
    let _ = writeln!(out, "- wall time: {:.2} s", secs(s.wall_us));
    if s.open_spans > 0 {
        let _ = writeln!(
            out,
            "- **warning**: {} span(s) never ended — truncated or crashed run",
            s.open_spans
        );
    }
    let _ = writeln!(out);

    if !s.stages.is_empty() {
        let _ = writeln!(out, "## Stage time breakdown\n");
        let _ = writeln!(
            out,
            "| stage | calls | total s | share |\n|---|---|---|---|"
        );
        let denom: u64 = s.stages.iter().map(|st| st.total_us).sum();
        for st in &s.stages {
            let _ = writeln!(
                out,
                "| {} | {} | {:.3} | {:.1}% |",
                st.name,
                st.calls,
                secs(st.total_us),
                pct(st.total_us, denom)
            );
        }
        let _ = writeln!(out);
    }

    if !s.waterfall.is_empty() {
        let _ = writeln!(out, "## Stage waterfall\n");
        // scale bars to the covered interval: offset spaces + duration █
        let t0 = s.waterfall.iter().map(|w| w.start_us).min().unwrap_or(0);
        let t1 = s
            .waterfall
            .iter()
            .map(|w| w.start_us + w.dur_us)
            .max()
            .unwrap_or(1)
            .max(t0 + 1);
        let span = (t1 - t0).max(1);
        const W: u64 = 40;
        let _ = writeln!(
            out,
            "| stage | start s | dur s | timeline |\n|---|---|---|---|"
        );
        for w in &s.waterfall {
            let off = ((w.start_us - t0) * W / span).min(W - 1);
            let len = ((w.dur_us * W).div_ceil(span)).clamp(1, W - off);
            let _ = writeln!(
                out,
                "| {} | {:.3} | {:.3} | `{}{}` |",
                w.name,
                secs(w.start_us),
                secs(w.dur_us),
                "·".repeat(off as usize),
                "█".repeat(len as usize),
            );
        }
        if s.waterfall_dropped > 0 {
            let _ = writeln!(
                out,
                "\n({} later span(s) omitted; totals in the stage table above)",
                s.waterfall_dropped
            );
        }
        let _ = writeln!(out);
    }

    if let Some(p) = &s.interp_profile {
        let _ = writeln!(out, "## Interpreter profile\n");
        let _ = writeln!(
            out,
            "- {} samples, one every {} steps (~{} steps covered)",
            p.total_samples,
            p.sample_every,
            p.total_samples * p.sample_every
        );
        let _ = writeln!(
            out,
            "- fusion: {:.1}% of dynamic samples in superinstructions; {} of {} static slots are fused carriers ({:.1}%)",
            p.fused_sample_rate() * 100.0,
            p.fused_sites,
            p.total_sites,
            pct(p.fused_sites, p.total_sites)
        );
        if p.encode_ops + p.restore_ops > 0 {
            let _ = writeln!(
                out,
                "- snapshots: {} encode(s) at {:.1} µs mean, {} restore(s) at {:.1} µs mean",
                p.encode_ops,
                InterpProfileStat::mean_us(p.encode_ns, p.encode_ops),
                p.restore_ops,
                InterpProfileStat::mean_us(p.restore_ns, p.restore_ops),
            );
        }
        let _ = writeln!(out, "\n| op | samples | share | |\n|---|---|---|---|");
        let peak = p.samples.first().map(|&(_, n)| n).unwrap_or(1).max(1);
        for (name, n) in &p.samples {
            let bar = "█".repeat(((n * 24).div_ceil(peak)) as usize);
            let _ = writeln!(
                out,
                "| {} | {} | {:.1}% | {} |",
                name,
                n,
                pct(*n, p.total_samples),
                bar
            );
        }
        let _ = writeln!(out);
    }

    if s.program.campaigns + s.per_inst.campaigns > 0 {
        let _ = writeln!(out, "## FI campaigns\n");
        campaign_section(&mut out, "Whole-program campaigns", &s.program);
        campaign_section(&mut out, "Per-instruction campaigns", &s.per_inst);
    }

    if !s.functions.is_empty() {
        let _ = writeln!(out, "### Outcomes per function\n");
        let _ = writeln!(
            out,
            "| function | total | benign | sdc | crash | hang | detected | engine-err |\n|---|---|---|---|---|---|---|---|"
        );
        for (name, t) in &s.functions {
            let _ = writeln!(out, "| {} | {} |", name, tally_row(t));
        }
        let _ = writeln!(out);
    }

    if let Some(c) = &s.cache {
        let _ = writeln!(out, "## Golden-run cache\n");
        let _ = writeln!(
            out,
            "{} hits / {} misses ({:.1}% hit rate), {} entries\n",
            c.hits,
            c.misses,
            c.hit_rate() * 100.0,
            c.entries
        );
    }

    if let Some(j) = &s.journal {
        let _ = writeln!(out, "## Crash-safe journal\n");
        let _ = writeln!(
            out,
            "- recovery: {} record(s) replayed from the log, {} byte(s) of torn tail truncated",
            j.recovered_records, j.truncated_bytes
        );
        if j.dropped_records > 0 {
            let _ = writeln!(
                out,
                "- **mid-file corruption**: {} intact record(s) dropped past a checksum mismatch and recomputed",
                j.dropped_records
            );
        }
        let _ = writeln!(
            out,
            "- injections served from the journal: {} recovered vs {} executed fresh ({:.1}% of the run skipped)\n",
            j.served,
            j.appended,
            pct(j.served, j.served + j.appended)
        );
    }

    if let Some(st) = &s.store {
        let _ = writeln!(out, "## Artifact store\n");
        let _ = writeln!(
            out,
            "- {} publish(es), {} verified load(s), {} quarantine(s), {} chaos flip(s)\n",
            st.publishes, st.loads, st.quarantines, st.chaos_flips
        );
    }

    if let Some(sec) = &s.sections {
        let _ = writeln!(out, "## Section cache\n");
        let _ = writeln!(
            out,
            "- sections: {} hit, {} miss, {} recompute(d) after corruption; \
             {} composed report(s)",
            sec.hits, sec.misses, sec.recomputes, sec.composes
        );
        let _ = writeln!(
            out,
            "- {} injection(s) served from cached outcome tables ({} section hit rate)\n",
            sec.served_injections,
            pct(sec.hits, sec.hits + sec.misses + sec.recomputes)
        );
    }

    let any_resilience = s.sched.is_some()
        || s.retry_events + s.quarantine_events + s.early_stop_events + s.truncation_events > 0;
    if any_resilience {
        let _ = writeln!(out, "## Resilient scheduling\n");
        let _ = writeln!(
            out,
            "- events: {} retry, {} quarantine, {} early-stop, {} deadline-truncation",
            s.retry_events, s.quarantine_events, s.early_stop_events, s.truncation_events
        );
        if let Some(r) = &s.sched {
            let _ = writeln!(
                out,
                "- retries: {} attempts retried; {} injection(s) recovered, {} exhausted their budget",
                r.retries, r.recovered, r.exhausted
            );
            let _ = writeln!(
                out,
                "- quarantine: {} site(s) quarantined, {} injection(s) excluded from rates",
                r.quarantined_sites, r.quarantined_injections
            );
            let _ = writeln!(
                out,
                "- early stop: {} site(s) converged early, {} injection(s) skipped with confidence",
                r.early_stopped_sites, r.early_stop_skipped
            );
            let _ = writeln!(out, "- deadline: {} injection(s) truncated", r.truncated);
            let _ = writeln!(out, "- **campaign completeness: {:.3}**", r.completeness);
        } else {
            let _ = writeln!(
                out,
                "- **warning**: no sched_summary event — run died before final accounting"
            );
        }
        let _ = writeln!(out);
    }

    let any_fleet = s.fleet.is_some() || s.fleet_worker_events + s.fleet_shard_events > 0;
    if any_fleet {
        let _ = writeln!(out, "## Process-isolated fleet\n");
        let _ = writeln!(
            out,
            "- events: {} worker lifecycle, {} shard lifecycle",
            s.fleet_worker_events, s.fleet_shard_events
        );
        if let Some(f) = &s.fleet {
            let _ = writeln!(
                out,
                "- workers: {} slot(s), {} spawn(s), {} death(s)",
                f.workers, f.spawns, f.deaths
            );
            let _ = writeln!(
                out,
                "- shards: {} reassigned after a worker death, {} poisoned",
                f.reassigned, f.poisoned_shards
            );
        } else {
            let _ = writeln!(
                out,
                "- **warning**: no fleet_summary event — supervisor died before final accounting"
            );
        }
        let _ = writeln!(out);
    }

    if !s.ga.is_empty() {
        let _ = writeln!(out, "## GA search: fitness per generation\n");
        let _ = writeln!(
            out,
            "| input # | generation | best fitness | mean fitness |\n|---|---|---|---|"
        );
        for g in &s.ga {
            let _ = writeln!(
                out,
                "| {} | {} | {:.4} | {:.4} |",
                g.input_index, g.generation, g.best_fitness, g.mean_fitness
            );
        }
        let _ = writeln!(out);
    }

    if !s.inputs.is_empty() {
        let _ = writeln!(out, "## Accepted search inputs\n");
        let _ = writeln!(
            out,
            "| input # | fitness (distance) | new incubative | cumulative incubative |\n|---|---|---|---|"
        );
        for p in &s.inputs {
            let _ = writeln!(
                out,
                "| {} | {:.4} | {} | {} |",
                p.index, p.fitness, p.new_incubative, p.total_incubative
            );
        }
        let _ = writeln!(out);
    }

    if let Some(k) = &s.knapsack {
        let _ = writeln!(out, "## Knapsack selection\n");
        let _ = writeln!(
            out,
            "- budget: {} of {} dynamic cycles ({:.1}%)",
            k.budget,
            k.total_cycles,
            pct(k.budget, k.total_cycles)
        );
        let _ = writeln!(
            out,
            "- selected: {} of {} eligible instructions",
            k.selected, k.eligible
        );
        let _ = writeln!(
            out,
            "- protected cycle fraction: {:.1}%",
            k.protected_cycle_fraction * 100.0
        );
        let _ = writeln!(
            out,
            "- expected SDC coverage: {:.2}%\n",
            k.expected_coverage * 100.0
        );
    }

    if !s.counters.is_empty() {
        let _ = writeln!(out, "## Counters\n");
        let _ = writeln!(out, "| counter | value |\n|---|---|");
        for (name, v) in &s.counters {
            let _ = writeln!(out, "| {name} | {v} |");
        }
        let _ = writeln!(out);
    }

    if !s.histograms.is_empty() {
        let _ = writeln!(out, "## Histograms\n");
        for (name, buckets) in &s.histograms {
            let total: u64 = buckets.iter().map(|&(_, n)| n).sum();
            let _ = writeln!(out, "### {name} ({total} samples)\n");
            let _ = writeln!(out, "| ≥ | count | |\n|---|---|---|");
            let peak = buckets.iter().map(|&(_, n)| n).max().unwrap_or(1).max(1);
            for &(lo, n) in buckets {
                let bar = "█".repeat(((n * 24).div_ceil(peak)) as usize);
                let _ = writeln!(out, "| {lo} | {n} | {bar} |");
            }
            let _ = writeln!(out);
        }
    }

    out
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render the summary as a self-contained HTML page (the markdown body
/// wrapped with minimal table styling; tables are converted structurally,
/// everything else is preformatted text).
pub fn render_html(s: &TraceSummary) -> String {
    let md = render_markdown(s);
    let mut body = String::with_capacity(md.len() * 2);
    let mut in_table = false;
    for line in md.lines() {
        let is_row = line.starts_with('|') && line.ends_with('|');
        let is_sep = is_row && line.chars().all(|c| matches!(c, '|' | '-' | ' '));
        if is_row && !is_sep {
            let cells: Vec<&str> = line[1..line.len() - 1].split('|').collect();
            let tag = if !in_table { "th" } else { "td" };
            if !in_table {
                body.push_str("<table>\n");
                in_table = true;
            }
            body.push_str("<tr>");
            for c in cells {
                let _ = write!(body, "<{tag}>{}</{tag}>", html_escape(c.trim()));
            }
            body.push_str("</tr>\n");
            continue;
        }
        if in_table && !is_row {
            body.push_str("</table>\n");
            in_table = false;
        }
        if is_sep {
            continue;
        }
        if let Some(h) = line.strip_prefix("### ") {
            let _ = writeln!(body, "<h3>{}</h3>", html_escape(h));
        } else if let Some(h) = line.strip_prefix("## ") {
            let _ = writeln!(body, "<h2>{}</h2>", html_escape(h));
        } else if let Some(h) = line.strip_prefix("# ") {
            let _ = writeln!(body, "<h1>{}</h1>", html_escape(h));
        } else if let Some(item) = line.strip_prefix("- ") {
            let _ = writeln!(body, "<div>• {}</div>", html_escape(item).replace("**", ""));
        } else if !line.is_empty() {
            let _ = writeln!(body, "<p>{}</p>", html_escape(line).replace("**", ""));
        }
    }
    if in_table {
        body.push_str("</table>\n");
    }
    format!(
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\
         <title>minpsid trace report</title>\n<style>\
         body{{font-family:system-ui,sans-serif;margin:2rem auto;max-width:70rem}}\
         table{{border-collapse:collapse;margin:1rem 0}}\
         th,td{{border:1px solid #ccc;padding:0.25rem 0.6rem;text-align:right}}\
         th{{background:#f3f3f3}}td:first-child,th:first-child{{text-align:left}}\
         </style></head><body>\n{body}</body></html>\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CampaignKind, Event};

    fn log_from(events: Vec<Event>) -> String {
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| {
                TimedEvent {
                    ts_us: i as u64 * 10,
                    event,
                }
                .to_line()
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::TraceStart { tool: "t".into() },
            Event::SpanBegin {
                id: 1,
                name: "ref_fi".into(),
            },
            Event::CampaignEnd {
                kind: CampaignKind::PerInst,
                injections: 200,
                elapsed_us: 1000,
                counts: OutcomeTally {
                    benign: 150,
                    sdc: 30,
                    crash: 15,
                    hang: 5,
                    transient_recovered: 4,
                    quarantined: 10,
                    ..OutcomeTally::default()
                },
                steps_executed: 4000,
                steps_skipped: 6000,
                restores: 180,
            },
            Event::FunctionOutcomes {
                func: "main".into(),
                counts: OutcomeTally {
                    benign: 150,
                    sdc: 30,
                    crash: 15,
                    hang: 5,
                    ..OutcomeTally::default()
                },
            },
            Event::SpanEnd {
                id: 1,
                name: "ref_fi".into(),
                dur_us: 500,
            },
            Event::GaGeneration {
                input_index: 0,
                generation: 0,
                best_fitness: 2.0,
                mean_fitness: 1.0,
                population: 6,
                evals: 6,
            },
            Event::GaGeneration {
                input_index: 0,
                generation: 1,
                best_fitness: 3.0,
                mean_fitness: 1.5,
                population: 6,
                evals: 9,
            },
            Event::SearchInput {
                index: 1,
                fitness: 3.0,
                new_incubative: 2,
                total_incubative: 2,
            },
            Event::Knapsack {
                budget: 500,
                total_cycles: 1000,
                eligible: 50,
                selected: 20,
                protected_cycle_fraction: 0.5,
                expected_coverage: 0.9,
            },
            Event::CacheStats {
                hits: 3,
                misses: 1,
                entries: 1,
            },
            Event::JournalRecovery {
                records: 120,
                truncated_bytes: 7,
                dropped_records: 0,
            },
            Event::JournalStats {
                recovered: 150,
                appended: 50,
            },
            Event::RetryAttempt {
                kind: CampaignKind::PerInst,
                site: 3,
                attempt: 0,
                backoff_ms: 1,
                reason: "panic".into(),
            },
            Event::Quarantine {
                kind: CampaignKind::PerInst,
                site: 3,
                failures: 2,
                reason: "panic".into(),
            },
            Event::EarlyStop {
                kind: CampaignKind::PerInst,
                site: 8,
                samples: 40,
                half_width: 0.04,
            },
            Event::DeadlineTruncation {
                kind: CampaignKind::PerInst,
                truncated: 12,
            },
            Event::SchedSummary {
                retries: 6,
                recovered: 4,
                exhausted: 2,
                quarantined_sites: 1,
                quarantined_injections: 10,
                early_stopped_sites: 1,
                early_stop_skipped: 60,
                truncated: 12,
                completeness: 0.89,
            },
            Event::TraceEnd { dur_us: 90 },
        ]
    }

    #[test]
    fn summarize_aggregates_everything() {
        let events = parse_log(&log_from(sample_events())).unwrap();
        let s = summarize(&events);
        assert_eq!(s.tool.as_deref(), Some("t"));
        assert_eq!(s.stages.len(), 1);
        assert_eq!(s.stages[0].name, "ref_fi");
        assert_eq!(s.stages[0].total_us, 500);
        assert_eq!(s.per_inst.injections, 200);
        assert_eq!(s.per_inst.counts.sdc, 30);
        assert!((s.per_inst.savings() - 0.6).abs() < 1e-9);
        assert_eq!(s.program.campaigns, 0);
        assert_eq!(s.functions.len(), 1);
        assert_eq!(s.ga.len(), 2);
        assert_eq!(s.inputs.len(), 1);
        assert_eq!(s.cache.unwrap().hits, 3);
        assert!((s.cache.unwrap().hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(s.knapsack.unwrap().selected, 20);
        let j = s.journal.unwrap();
        assert_eq!(j.recovered_records, 120);
        assert_eq!(j.truncated_bytes, 7);
        assert_eq!(j.served, 150);
        assert_eq!(j.appended, 50);
        assert_eq!(s.open_spans, 0);
        assert_eq!(s.retry_events, 1);
        assert_eq!(s.quarantine_events, 1);
        assert_eq!(s.early_stop_events, 1);
        assert_eq!(s.truncation_events, 1);
        let r = s.sched.unwrap();
        assert_eq!(r.retries, 6);
        assert_eq!(r.quarantined_injections, 10);
        assert!((r.completeness - 0.89).abs() < 1e-9);
    }

    #[test]
    fn parse_log_reports_line_numbers() {
        let mut log = log_from(sample_events());
        log.push_str("\n{broken\n");
        let err = parse_log(&log).unwrap_err();
        assert_eq!(err.0, sample_events().len() + 1);
    }

    #[test]
    fn markdown_report_contains_required_sections() {
        let events = parse_log(&log_from(sample_events())).unwrap();
        let md = render_markdown(&summarize(&events));
        for needle in [
            "# minpsid trace report",
            "## Stage time breakdown",
            "| ref_fi |",
            "Per-instruction campaigns",
            "replay work saved",
            "## Golden-run cache",
            "75.0% hit rate",
            "## GA search: fitness per generation",
            "## Knapsack selection",
            "expected SDC coverage: 90.00%",
            "## Crash-safe journal",
            "150 recovered vs 50 executed fresh",
            "## Resilient scheduling",
            "4 injection(s) recovered via retry",
            "10 skipped by quarantine",
            "campaign completeness: 0.890",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
    }

    #[test]
    fn html_report_is_well_formed_enough() {
        let events = parse_log(&log_from(sample_events())).unwrap();
        let html = render_html(&summarize(&events));
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("<h1>minpsid trace report</h1>"));
        assert_eq!(
            html.matches("<table>").count(),
            html.matches("</table>").count()
        );
        assert!(html.matches("<table>").count() >= 3);
        assert!(html.ends_with("</body></html>\n"));
    }

    #[test]
    fn interp_profile_section_renders_with_fusion_and_snapshot_costs() {
        let events = parse_log(&log_from(vec![Event::InterpProfile {
            sample_every: 1024,
            total_samples: 1000,
            fused_samples: 750,
            fused_sites: 30,
            total_sites: 120,
            encode_ns: 5_000_000,
            encode_ops: 10,
            restore_ns: 900_000,
            restore_ops: 9,
            samples: vec![("LoadBinStoreBr".into(), 700), ("BinII".into(), 300)],
        }]))
        .unwrap();
        let s = summarize(&events);
        let p = s.interp_profile.as_ref().unwrap();
        assert!((p.fused_sample_rate() - 0.75).abs() < 1e-12);
        assert_eq!(
            p.folded(),
            "minpsid;interp;LoadBinStoreBr 700\nminpsid;interp;BinII 300\n"
        );
        let md = render_markdown(&s);
        for needle in [
            "## Interpreter profile",
            "1000 samples, one every 1024 steps",
            "75.0% of dynamic samples in superinstructions",
            "30 of 120 static slots are fused carriers (25.0%)",
            "10 encode(s) at 500.0 µs mean, 9 restore(s) at 100.0 µs mean",
            "| LoadBinStoreBr | 700 | 70.0% |",
            "| BinII | 300 | 30.0% |",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
    }

    #[test]
    fn waterfall_renders_span_pairs_in_begin_order() {
        let log = [
            (
                0,
                Event::SpanBegin {
                    id: 1,
                    name: "plan".into(),
                },
            ),
            (
                100,
                Event::SpanEnd {
                    id: 1,
                    name: "plan".into(),
                    dur_us: 100,
                },
            ),
            (
                100,
                Event::SpanBegin {
                    id: 2,
                    name: "execute".into(),
                },
            ),
            (
                900,
                Event::SpanEnd {
                    id: 2,
                    name: "execute".into(),
                    dur_us: 800,
                },
            ),
            (
                900,
                Event::SpanBegin {
                    id: 3,
                    name: "reduce".into(),
                },
            ),
            (
                1000,
                Event::SpanEnd {
                    id: 3,
                    name: "reduce".into(),
                    dur_us: 100,
                },
            ),
        ]
        .into_iter()
        .map(|(ts_us, event)| TimedEvent { ts_us, event }.to_line())
        .collect::<Vec<_>>()
        .join("\n");
        let s = summarize(&parse_log(&log).unwrap());
        assert_eq!(s.waterfall.len(), 3);
        assert_eq!(s.waterfall[0].name, "plan");
        assert_eq!(s.waterfall[1].name, "execute");
        assert_eq!(s.waterfall[1].start_us, 100);
        assert_eq!(s.waterfall[1].dur_us, 800);
        assert_eq!(s.waterfall_dropped, 0);
        let md = render_markdown(&s);
        assert!(md.contains("## Stage waterfall"), "missing section:\n{md}");
        // execute starts after plan: its bar is offset from the margin
        let exec_row = md
            .lines()
            .find(|l| l.starts_with("| execute |") && l.contains('`'))
            .unwrap_or_else(|| panic!("no execute waterfall row in:\n{md}"));
        assert!(exec_row.contains('·'), "expected offset dots: {exec_row}");
        assert!(exec_row.contains('█'));
    }

    #[test]
    fn waterfall_is_capped_but_stage_totals_are_not() {
        let mut events = Vec::new();
        for i in 0..60u64 {
            events.push(Event::SpanBegin {
                id: i,
                name: "golden_run".into(),
            });
            events.push(Event::SpanEnd {
                id: i,
                name: "golden_run".into(),
                dur_us: 10,
            });
        }
        let s = summarize(&parse_log(&log_from(events)).unwrap());
        assert_eq!(s.waterfall.len(), 48);
        assert_eq!(s.waterfall_dropped, 12);
        assert_eq!(s.stages[0].calls, 60);
        assert!(render_markdown(&s).contains("12 later span(s) omitted"));
    }

    #[test]
    fn unended_spans_are_flagged() {
        let events = parse_log(&log_from(vec![Event::SpanBegin {
            id: 9,
            name: "search".into(),
        }]))
        .unwrap();
        let s = summarize(&events);
        assert_eq!(s.open_spans, 1);
        assert!(render_markdown(&s).contains("never ended"));
    }
}
