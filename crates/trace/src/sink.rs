//! The process-wide event sink.
//!
//! Instrumented code calls [`emit`]/[`span`] unconditionally; when no
//! trace file and no observer is installed, the cost is a single relaxed
//! atomic load ([`active`]) and an immediate return — a disabled trace is
//! a no-op static. When active, events are timestamped against the sink
//! epoch, fanned out to in-process observers (the CLI `--progress` meter),
//! and appended as JSONL to the writer installed by [`init_file`].
//!
//! The sink is `Sync`: writer and observers sit behind one mutex that is
//! only touched on emission, never on hot paths — hot paths (campaign
//! workers) accumulate into lock-free [`CampaignCounters`]/[`Histogram`]
//! atomics that a sampler thread turns into events at a low, fixed rate.

use crate::event::{CampaignKind, Event, OutcomeTally, TimedEvent};
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

type Observer = Box<dyn Fn(&TimedEvent) + Send + Sync>;

struct SinkState {
    writer: Option<Box<dyn Write + Send>>,
    observers: Vec<Observer>,
    epoch: Option<Instant>,
    /// First I/O error encountered while writing, reported at shutdown.
    io_error: Option<io::Error>,
}

/// Global sink: a no-op static until [`init_file`]/[`init_writer`]/
/// [`add_observer`] activates it.
struct Sink {
    active: AtomicBool,
    span_ids: AtomicU64,
    state: Mutex<SinkState>,
}

static SINK: Sink = Sink {
    active: AtomicBool::new(false),
    span_ids: AtomicU64::new(1),
    state: Mutex::new(SinkState {
        writer: None,
        observers: Vec::new(),
        epoch: None,
        io_error: None,
    }),
};

/// Whether any consumer (file or observer) is attached. One relaxed load;
/// this is the only cost tracing adds to a disabled run.
#[inline]
pub fn active() -> bool {
    SINK.active.load(Ordering::Relaxed)
}

fn lock() -> std::sync::MutexGuard<'static, SinkState> {
    SINK.state.lock().unwrap_or_else(|e| e.into_inner())
}

fn activate(st: &mut SinkState) {
    if st.epoch.is_none() {
        st.epoch = Some(Instant::now());
    }
    SINK.active.store(true, Ordering::Relaxed);
}

fn now_us(st: &SinkState) -> u64 {
    st.epoch.map_or(0, |e| e.elapsed().as_micros() as u64)
}

/// Start writing JSONL to `path` (truncating it) and emit the
/// `trace_start` header line.
pub fn init_file(path: &str) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    init_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// [`init_file`] over an arbitrary writer (tests trace into memory).
/// Replaces any previous writer after flushing it.
pub fn init_writer(writer: Box<dyn Write + Send>) {
    let mut st = lock();
    if let Some(mut old) = st.writer.take() {
        let _ = old.flush();
    }
    st.writer = Some(writer);
    activate(&mut st);
    let ev = TimedEvent {
        ts_us: now_us(&st),
        event: Event::TraceStart {
            tool: concat!("minpsid ", env!("CARGO_PKG_VERSION")).to_string(),
        },
    };
    write_line(&mut st, &ev);
}

/// Install an in-process observer that sees every emitted event. Used by
/// the CLI live progress meter; independent of the file writer.
pub fn add_observer(f: impl Fn(&TimedEvent) + Send + Sync + 'static) {
    let mut st = lock();
    st.observers.push(Box::new(f));
    activate(&mut st);
}

fn write_line(st: &mut SinkState, ev: &TimedEvent) {
    for obs in &st.observers {
        obs(ev);
    }
    if let Some(w) = st.writer.as_mut() {
        let mut line = ev.to_line();
        line.push('\n');
        // flush per line: event rates are sampler-bounded (~tens/s), and a
        // crash mid-run then loses at most the line being written, so logs
        // stay analyzable and `tail -f`-able
        if let Err(e) = w.write_all(line.as_bytes()).and_then(|()| w.flush()) {
            if st.io_error.is_none() {
                st.io_error = Some(e);
            }
            st.writer = None;
        }
    }
}

/// Emit one event (timestamped now). No-op when the sink is inactive.
pub fn emit(event: Event) {
    if !active() {
        return;
    }
    let mut st = lock();
    let ev = TimedEvent {
        ts_us: now_us(&st),
        event,
    };
    write_line(&mut st, &ev);
}

/// Flush the underlying writer (e.g. before spawning a subprocess that
/// reads the log).
pub fn flush() -> io::Result<()> {
    let mut st = lock();
    if let Some(e) = st.io_error.take() {
        return Err(e);
    }
    match st.writer.as_mut() {
        Some(w) => w.flush(),
        None => Ok(()),
    }
}

/// Emit `trace_end`, flush and drop the writer, clear observers, and
/// deactivate. Returns the first I/O error seen over the sink's lifetime.
pub fn shutdown() -> io::Result<()> {
    let mut st = lock();
    if st.writer.is_some() || !st.observers.is_empty() {
        let ev = TimedEvent {
            ts_us: now_us(&st),
            event: Event::TraceEnd {
                dur_us: now_us(&st),
            },
        };
        write_line(&mut st, &ev);
    }
    let mut result = match st.io_error.take() {
        Some(e) => Err(e),
        None => Ok(()),
    };
    if let Some(mut w) = st.writer.take() {
        let flushed = w.flush();
        if result.is_ok() {
            result = flushed;
        }
    }
    st.observers.clear();
    st.epoch = None;
    SINK.active.store(false, Ordering::Relaxed);
    result
}

/// RAII stage marker: emits `span_begin` on creation and `span_end` (with
/// the measured duration) on drop. When the sink is inactive the guard is
/// empty and costs nothing.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    inner: Option<(u64, &'static str, Instant)>,
}

/// Open a span named `name`.
pub fn span(name: &'static str) -> Span {
    if !active() {
        return Span { inner: None };
    }
    let id = SINK.span_ids.fetch_add(1, Ordering::Relaxed);
    emit(Event::SpanBegin {
        id,
        name: name.to_string(),
    });
    Span {
        inner: Some((id, name, Instant::now())),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((id, name, start)) = self.inner.take() {
            emit(Event::SpanEnd {
                id,
                name: name.to_string(),
                dur_us: start.elapsed().as_micros() as u64,
            });
        }
    }
}

const HIST_BUCKETS: usize = 65;

/// Lock-free power-of-two-bucketed histogram: bucket `i` counts values
/// whose bit length is `i` (bucket 0 = the value 0). Hot paths `record`
/// with one relaxed `fetch_add`; a snapshot turns it into an event.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub const fn new() -> Self {
        // AtomicU64 is not Copy; the const-item trick arrays it.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HIST_BUCKETS],
        }
    }

    #[inline]
    pub fn record(&self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Non-empty `(bucket_lo, count)` pairs, in increasing bucket order.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        (0..HIST_BUCKETS)
            .filter_map(|i| {
                let n = self.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
            })
            .collect()
    }

    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Emit the current contents as a `histogram` event.
    pub fn emit(&self, name: &str) {
        emit(Event::Histogram {
            name: name.to_string(),
            buckets: self.snapshot(),
        });
    }
}

/// Which outcome a worker observed (mirror of the faultsim taxonomy, kept
/// here so faultsim's hot path can tally without allocating events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    Benign,
    Sdc,
    Crash,
    Hang,
    Detected,
    /// Harness failure (worker panic / wall-clock blowout), not a program
    /// outcome.
    EngineError,
}

/// Lock-free campaign telemetry the parallel workers write and the
/// sampler thread reads: injections done, live outcome tallies, and
/// checkpoint-restore accounting. All relaxed atomics — workers pay a
/// handful of uncontended `fetch_add`s per *injection* (one whole program
/// execution), which is noise.
pub struct CampaignCounters {
    kind: CampaignKind,
    total: u64,
    start: Instant,
    done: AtomicU64,
    benign: AtomicU64,
    sdc: AtomicU64,
    crash: AtomicU64,
    hang: AtomicU64,
    detected: AtomicU64,
    engine_error: AtomicU64,
    steps_executed: AtomicU64,
    steps_skipped: AtomicU64,
    restores: AtomicU64,
    transient_recovered: AtomicU64,
    quarantined: AtomicU64,
}

impl CampaignCounters {
    pub fn new(kind: CampaignKind, total: u64) -> Self {
        CampaignCounters {
            kind,
            total,
            start: Instant::now(),
            done: AtomicU64::new(0),
            benign: AtomicU64::new(0),
            sdc: AtomicU64::new(0),
            crash: AtomicU64::new(0),
            hang: AtomicU64::new(0),
            detected: AtomicU64::new(0),
            engine_error: AtomicU64::new(0),
            steps_executed: AtomicU64::new(0),
            steps_skipped: AtomicU64::new(0),
            restores: AtomicU64::new(0),
            transient_recovered: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// Record one finished injection.
    #[inline]
    pub fn record(&self, outcome: OutcomeKind, steps_executed: u64, steps_skipped: u64) {
        self.done.fetch_add(1, Ordering::Relaxed);
        let slot = match outcome {
            OutcomeKind::Benign => &self.benign,
            OutcomeKind::Sdc => &self.sdc,
            OutcomeKind::Crash => &self.crash,
            OutcomeKind::Hang => &self.hang,
            OutcomeKind::Detected => &self.detected,
            OutcomeKind::EngineError => &self.engine_error,
        };
        slot.fetch_add(1, Ordering::Relaxed);
        self.steps_executed
            .fetch_add(steps_executed, Ordering::Relaxed);
        if steps_skipped > 0 {
            self.steps_skipped
                .fetch_add(steps_skipped, Ordering::Relaxed);
            self.restores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// An injection that failed at least one attempt but then produced a
    /// real outcome. The outcome itself was already (or will be) counted
    /// exactly once via [`CampaignCounters::record`]; this side-tally
    /// never enters `total()`, so retried injections cannot double-count.
    #[inline]
    pub fn record_recovered(&self) {
        self.transient_recovered.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` injections skipped because their site is quarantined.
    #[inline]
    pub fn record_quarantined(&self, n: u64) {
        self.quarantined.fetch_add(n, Ordering::Relaxed);
    }

    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    pub fn tally(&self) -> OutcomeTally {
        OutcomeTally {
            benign: self.benign.load(Ordering::Relaxed),
            sdc: self.sdc.load(Ordering::Relaxed),
            crash: self.crash.load(Ordering::Relaxed),
            hang: self.hang.load(Ordering::Relaxed),
            detected: self.detected.load(Ordering::Relaxed),
            engine_error: self.engine_error.load(Ordering::Relaxed),
            transient_recovered: self.transient_recovered.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    fn progress_event(&self) -> Event {
        Event::CampaignProgress {
            kind: self.kind,
            done: self.done(),
            total: self.total,
            counts: self.tally(),
            elapsed_us: self.start.elapsed().as_micros() as u64,
        }
    }

    fn end_event(&self) -> Event {
        Event::CampaignEnd {
            kind: self.kind,
            injections: self.done(),
            elapsed_us: self.start.elapsed().as_micros() as u64,
            counts: self.tally(),
            steps_executed: self.steps_executed.load(Ordering::Relaxed),
            steps_skipped: self.steps_skipped.load(Ordering::Relaxed),
            restores: self.restores.load(Ordering::Relaxed),
        }
    }
}

/// Run `body` while a sampler thread emits `campaign_progress` events
/// from `counters` every `interval`; a final `campaign_end` summary is
/// emitted when `body` returns. When the sink is inactive no thread is
/// spawned and `body` runs bare — campaigns without tracing pay nothing.
pub fn sample_campaign<T>(
    counters: &CampaignCounters,
    interval: Duration,
    body: impl FnOnce() -> T,
) -> T {
    if !active() {
        return body();
    }
    let stop = AtomicBool::new(false);
    let result = std::thread::scope(|scope| {
        scope.spawn(|| {
            // poll in short slices so the final join is prompt even with a
            // long sampling interval
            let slice = interval.min(Duration::from_millis(10));
            let mut since_sample = Duration::ZERO;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(slice);
                since_sample += slice;
                if since_sample >= interval && !stop.load(Ordering::Relaxed) {
                    emit(counters.progress_event());
                    since_sample = Duration::ZERO;
                }
            }
        });
        let r = body();
        stop.store(true, Ordering::Relaxed);
        r
    });
    emit(counters.end_event());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// Shared in-memory writer for capturing emitted lines.
    #[derive(Clone, Default)]
    struct Buf(Arc<StdMutex<Vec<u8>>>);

    impl Write for Buf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Buf {
        fn lines(&self) -> Vec<TimedEvent> {
            let bytes = self.0.lock().unwrap().clone();
            String::from_utf8(bytes)
                .unwrap()
                .lines()
                .map(|l| TimedEvent::parse_line(l).expect("every emitted line parses"))
                .collect()
        }
    }

    /// The global sink is process-wide state, so everything that touches
    /// it lives in one sequential test.
    #[test]
    fn global_sink_lifecycle() {
        assert!(!active(), "sink starts disabled");
        // disabled: spans and emits are free no-ops
        drop(span("noop"));
        emit(Event::Counter {
            name: "dropped".into(),
            value: 1,
        });

        let buf = Buf::default();
        init_writer(Box::new(buf.clone()));
        assert!(active());

        {
            let _s = span("stage_a");
            emit(Event::Counter {
                name: "k".into(),
                value: 7,
            });
        }

        let counters = CampaignCounters::new(CampaignKind::Program, 4);
        let out = sample_campaign(&counters, Duration::from_millis(5), || {
            for i in 0..4u64 {
                counters.record(OutcomeKind::Sdc, 100 + i, 50);
            }
            // one of those outcomes came after a retry, plus two
            // quarantine-skipped injections: side-tallies only
            counters.record_recovered();
            counters.record_quarantined(2);
            "done"
        });
        assert_eq!(out, "done");

        shutdown().unwrap();
        assert!(!active());

        let events = buf.lines();
        assert!(matches!(events[0].event, Event::TraceStart { .. }));
        assert!(matches!(
            events.last().unwrap().event,
            Event::TraceEnd { .. }
        ));
        // span begin/end pair with matching ids and the right name
        let begin = events
            .iter()
            .find_map(|e| match &e.event {
                Event::SpanBegin { id, name } if name == "stage_a" => Some(*id),
                _ => None,
            })
            .expect("span_begin present");
        assert!(events.iter().any(|e| matches!(
            &e.event,
            Event::SpanEnd { id, name, .. } if *id == begin && name == "stage_a"
        )));
        // campaign summary reflects the workers' atomics
        let end = events
            .iter()
            .find_map(|e| match &e.event {
                Event::CampaignEnd {
                    injections,
                    counts,
                    steps_executed,
                    steps_skipped,
                    restores,
                    ..
                } => Some((
                    *injections,
                    *counts,
                    *steps_executed,
                    *steps_skipped,
                    *restores,
                )),
                _ => None,
            })
            .expect("campaign_end present");
        assert_eq!(end.0, 4);
        assert_eq!(end.1.sdc, 4);
        // retried-then-succeeded injections count once: side-tallies do
        // not inflate the outcome total
        assert_eq!(end.1.transient_recovered, 1);
        assert_eq!(end.1.quarantined, 2);
        assert_eq!(end.1.total(), 4);
        assert_eq!(end.2, 100 + 101 + 102 + 103);
        assert_eq!(end.3, 200);
        assert_eq!(end.4, 4);
        // timestamps are monotone
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));

        // emitting after shutdown is a no-op again
        emit(Event::Counter {
            name: "late".into(),
            value: 1,
        });
        assert_eq!(buf.lines().len(), events.len());
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        h.record(u64::MAX);
        assert_eq!(h.total(), 6);
        let snap = h.snapshot();
        assert!(snap.contains(&(0, 1)), "{snap:?}");
        assert!(snap.contains(&(1, 1)), "{snap:?}");
        assert!(snap.contains(&(2, 2)), "{snap:?}");
        assert!(snap.contains(&(1024, 1)), "{snap:?}");
        assert!(snap.contains(&(1 << 63, 1)), "{snap:?}");
        // increasing bucket order
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
