//! Property round-trip tests for the trace event schema: any event the
//! sink can emit must parse back bit-identically from its JSONL line —
//! the guarantee that `trace report` never silently misparses a log.

use minpsid_trace::{CampaignKind, Event, OutcomeTally, TimedEvent};
use proptest::prelude::*;

fn tally(seed: [u64; 5]) -> OutcomeTally {
    OutcomeTally {
        benign: seed[0],
        sdc: seed[1],
        crash: seed[2],
        hang: seed[3],
        detected: seed[4],
        engine_error: seed[0] ^ seed[4],
        transient_recovered: seed[1] ^ seed[2],
        quarantined: seed[3] ^ seed[0],
    }
}

fn kind(b: bool) -> CampaignKind {
    if b {
        CampaignKind::Program
    } else {
        CampaignKind::PerInst
    }
}

fn assert_roundtrip(ts_us: u64, event: Event) -> Result<(), TestCaseError> {
    let te = TimedEvent { ts_us, event };
    let line = te.to_line();
    prop_assert!(!line.contains('\n'), "JSONL lines must be single lines");
    let back =
        TimedEvent::parse_line(&line).map_err(|e| TestCaseError::fail(format!("{line}: {e}")))?;
    prop_assert_eq!(back, te, "line: {}", line);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spans_and_counters_round_trip(
        ts in 0u64..u64::MAX,
        id in 0u64..u64::MAX,
        // names exercise JSON string escaping: quotes, backslashes,
        // control chars, non-ASCII
        name in ".{0,24}",
        value in 0u64..u64::MAX,
        dur in 0u64..u64::MAX,
        which in 0u8..4,
    ) {
        let event = match which {
            0 => Event::SpanBegin { id, name },
            1 => Event::SpanEnd { id, name, dur_us: dur },
            2 => Event::Counter { name, value },
            _ => Event::TraceStart { tool: name },
        };
        assert_roundtrip(ts, event)?;
    }

    #[test]
    fn campaign_events_round_trip(
        ts in 0u64..u64::MAX,
        seed in proptest::collection::vec(0u64..u64::MAX, 5),
        done in 0u64..u64::MAX,
        total in 0u64..u64::MAX,
        elapsed in 0u64..u64::MAX,
        execd in 0u64..u64::MAX,
        skipped in 0u64..u64::MAX,
        restores in 0u64..u64::MAX,
        is_program in proptest::prelude::any::<bool>(),
        progress in proptest::prelude::any::<bool>(),
    ) {
        let counts = tally([seed[0], seed[1], seed[2], seed[3], seed[4]]);
        let event = if progress {
            Event::CampaignProgress {
                kind: kind(is_program),
                done,
                total,
                counts,
                elapsed_us: elapsed,
            }
        } else {
            Event::CampaignEnd {
                kind: kind(is_program),
                injections: done,
                elapsed_us: elapsed,
                counts,
                steps_executed: execd,
                steps_skipped: skipped,
                restores,
            }
        };
        assert_roundtrip(ts, event)?;
    }

    #[test]
    fn float_carrying_events_round_trip(
        ts in 0u64..u64::MAX,
        index in 0u64..1_000_000,
        generation in 0u64..10_000,
        // mantissa-rich values: quotients exercise shortest-repr printing
        num in -1_000_000i64..1_000_000,
        den in 1i64..10_000,
        counts in proptest::collection::vec(0u64..100_000, 4),
        which in 0u8..3,
    ) {
        let f = num as f64 / den as f64;
        let event = match which {
            0 => Event::GaGeneration {
                input_index: index,
                generation,
                best_fitness: f,
                mean_fitness: f / 3.0,
                population: counts[0],
                evals: counts[1],
            },
            1 => Event::SearchInput {
                index,
                fitness: f,
                new_incubative: counts[0],
                total_incubative: counts[1],
            },
            _ => Event::Knapsack {
                budget: counts[0],
                total_cycles: counts[1],
                eligible: counts[2],
                selected: counts[3],
                protected_cycle_fraction: f.abs().fract(),
                expected_coverage: (f / 7.0).abs().fract(),
            },
        };
        assert_roundtrip(ts, event)?;
    }

    #[test]
    fn histograms_and_functions_round_trip(
        ts in 0u64..u64::MAX,
        name in ".{0,16}",
        buckets in proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..12),
        seed in proptest::collection::vec(0u64..u64::MAX, 5),
        which in 0u8..5,
    ) {
        let event = match which {
            0 => Event::Histogram { name, buckets },
            1 => Event::FunctionOutcomes {
                func: name,
                counts: tally([seed[0], seed[1], seed[2], seed[3], seed[4]]),
            },
            2 => Event::JournalRecovery { records: seed[0], truncated_bytes: seed[1], dropped_records: seed[2] },
            3 => Event::JournalStats { recovered: seed[0], appended: seed[1] },
            _ => Event::CacheStats { hits: seed[0], misses: seed[1], entries: seed[2] },
        };
        assert_roundtrip(ts, event)?;
    }

    /// A whole log of random events survives parse_log + line ordering.
    #[test]
    fn multi_line_logs_parse_in_order(
        values in proptest::collection::vec(0u64..u64::MAX, 1..20),
    ) {
        let log: String = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                TimedEvent {
                    ts_us: i as u64,
                    event: Event::Counter { name: format!("c{i}"), value: v },
                }
                .to_line() + "\n"
            })
            .collect();
        let parsed = minpsid_trace::parse_log(&log)
            .map_err(|(l, e)| TestCaseError::fail(format!("line {l}: {e}")))?;
        prop_assert_eq!(parsed.len(), values.len());
        for (i, (te, &v)) in parsed.iter().zip(&values).enumerate() {
            prop_assert_eq!(te.ts_us, i as u64);
            match &te.event {
                Event::Counter { value, .. } => prop_assert_eq!(*value, v),
                other => return Err(TestCaseError::fail(format!("wrong kind {other:?}"))),
            }
        }
    }
}
