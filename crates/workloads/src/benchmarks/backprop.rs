//! Backprop (Rodinia): one stochastic-gradient training step of a
//! two-layer perceptron. Sigmoid saturation makes error propagation
//! heavily input-dependent: with large weights the derivatives vanish and
//! most flips mask; near the linear regime they reach the output.

use crate::gen::uniform_floats;
use crate::Benchmark;
use minpsid::{InputModel, ParamSpec, ParamValue};
use minpsid_interp::{ProgInput, Scalar, Stream};

pub const SOURCE: &str = r#"
fn sigmoid(z: float) -> float {
    return 1.0 / (1.0 + exp(-z));
}

fn main() {
    let nin = arg_i(0);
    let nh = arg_i(1);
    let lr = arg_f(2);
    let target = arg_f(3);
    let w1: [float] = alloc(nin * nh);
    let w2: [float] = alloc(nh);
    let h: [float] = alloc(nh);
    for i = 0 to nin * nh { w1[i] = data_f(0, i); }
    for j = 0 to nh { w2[j] = data_f(1, j); }

    // forward pass
    for j = 0 to nh {
        let z = 0.0;
        for i = 0 to nin {
            z = z + data_f(2, i) * w1[i * nh + j];
        }
        h[j] = sigmoid(z);
    }
    let zy = 0.0;
    for j = 0 to nh { zy = zy + h[j] * w2[j]; }
    let y = sigmoid(zy);

    // backward pass + weight update
    let dout = (target - y) * y * (1.0 - y);
    for j = 0 to nh {
        let dh = h[j] * (1.0 - h[j]) * w2[j] * dout;
        w2[j] = w2[j] + lr * dout * h[j];
        for i = 0 to nin {
            w1[i * nh + j] = w1[i * nh + j] + lr * dh * data_f(2, i);
        }
    }

    out_f(y);
    let c1 = 0.0;
    for i = 0 to nin * nh { c1 = c1 + w1[i]; }
    let c2 = 0.0;
    for j = 0 to nh { c2 = c2 + w2[j]; }
    out_f(c1);
    out_f(c2);
}
"#;

pub struct Model {
    spec: Vec<ParamSpec>,
}

impl Model {
    pub fn new() -> Self {
        Model {
            spec: vec![
                ParamSpec::int("nin", 8, 64),
                ParamSpec::int("nh", 4, 32),
                ParamSpec::float("lr", 0.01, 0.5),
                ParamSpec::float("target", 0.0, 1.0),
                ParamSpec::float("wscale", 0.1, 4.0),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl InputModel for Model {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let nin = params[0].as_i().max(1);
        let nh = params[1].as_i().max(1);
        let lr = params[2].as_f();
        let target = params[3].as_f();
        let wscale = params[4].as_f().max(1e-3);
        let seed = params[5].as_i() as u64;
        let w1 = uniform_floats(seed, (nin * nh) as usize, -wscale, wscale);
        let w2 = uniform_floats(seed ^ 0xBEEF, nh as usize, -wscale, wscale);
        let x = uniform_floats(seed ^ 0xF00D, nin as usize, -1.0, 1.0);
        ProgInput::new(
            vec![
                Scalar::I(nin),
                Scalar::I(nh),
                Scalar::F(lr),
                Scalar::F(target),
            ],
            vec![Stream::F(w1), Stream::F(w2), Stream::F(x)],
        )
    }

    fn reference(&self) -> Vec<ParamValue> {
        vec![
            ParamValue::I(32),
            ParamValue::I(16),
            ParamValue::F(0.1),
            ParamValue::F(0.8),
            ParamValue::F(1.0),
            ParamValue::I(42),
        ]
    }
}

pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "backprop",
        suite: "Rodinia",
        description: "A machine-learning algorithm that trains the weights of connected nodes on a layered neural network",
        source: SOURCE,
        model: Box::new(Model::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{ExecConfig, Interp, OutputItem};

    #[test]
    fn output_is_a_probability_and_update_moves_toward_target() {
        let b = benchmark();
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert!(r.exited());
        let OutputItem::F(y) = r.output.items[0] else {
            panic!()
        };
        assert!((0.0..=1.0).contains(&y), "sigmoid output: {y}");
        // checksums are finite
        for item in &r.output.items[1..] {
            let OutputItem::F(v) = item else { panic!() };
            assert!(v.is_finite());
        }
    }
}
