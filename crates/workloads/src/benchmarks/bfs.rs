//! BFS (Rodinia): breadth-first search over a CSR graph. Error
//! propagation here is strongly input-dependent — flipping a frontier
//! index on a sparse graph usually crashes or masks, while on a dense,
//! shallow graph it silently corrupts the depth map.

use crate::gen::random_csr;
use crate::Benchmark;
use minpsid::{InputModel, ParamSpec, ParamValue};
use minpsid_interp::{ProgInput, Scalar, Stream};

pub const SOURCE: &str = r#"
fn main() {
    let n = arg_i(0);
    let src = arg_i(1);
    let depth: [int] = alloc(n);
    let queue: [int] = alloc(n);
    for i = 0 to n { depth[i] = -1; }
    depth[src] = 0;
    queue[0] = src;
    let head = 0;
    let tail = 1;
    while head < tail {
        let u = queue[head];
        head = head + 1;
        let first = data_i(0, u);
        let last = data_i(0, u + 1);
        for e = first to last {
            let v = data_i(1, e);
            if depth[v] < 0 {
                depth[v] = depth[u] + 1;
                queue[tail] = v;
                tail = tail + 1;
            }
        }
    }
    let sum = 0;
    let visited = 0;
    let maxd = 0;
    for i = 0 to n {
        if depth[i] >= 0 {
            sum = sum + depth[i];
            visited = visited + 1;
            if depth[i] > maxd { maxd = depth[i]; }
        }
    }
    out_i(visited);
    out_i(sum);
    out_i(maxd);
    for i = 0 to n { out_i(depth[i]); }
}
"#;

pub struct Model {
    spec: Vec<ParamSpec>,
}

impl Model {
    pub fn new() -> Self {
        Model {
            spec: vec![
                ParamSpec::int("n", 64, 400),
                ParamSpec::int("degree", 1, 6),
                // src stays below the minimum n so any combination is valid
                ParamSpec::int("src", 0, 63),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl InputModel for Model {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let n = params[0].as_i().max(64);
        let degree = params[1].as_i().max(1);
        let src = params[2].as_i().clamp(0, n - 1);
        let seed = params[3].as_i() as u64;
        let (offsets, edges) = random_csr(seed, n as usize, degree as usize);
        ProgInput::new(
            vec![Scalar::I(n), Scalar::I(src)],
            vec![Stream::I(offsets), Stream::I(edges)],
        )
    }

    fn reference(&self) -> Vec<ParamValue> {
        vec![
            ParamValue::I(200),
            ParamValue::I(3),
            ParamValue::I(0),
            ParamValue::I(42),
        ]
    }
}

pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "bfs",
        suite: "Rodinia",
        description: "Breadth-first search all connected components in a graph",
        source: SOURCE,
        model: Box::new(Model::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{ExecConfig, Interp, OutputItem};

    fn rust_bfs(n: usize, src: usize, offsets: &[i64], edges: &[i64]) -> Vec<i64> {
        let mut depth = vec![-1i64; n];
        let mut queue = std::collections::VecDeque::new();
        depth[src] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &edge in &edges[offsets[u] as usize..offsets[u + 1] as usize] {
                let v = edge as usize;
                if depth[v] < 0 {
                    depth[v] = depth[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        depth
    }

    #[test]
    fn depths_match_rust_reference() {
        let b = benchmark();
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let (Stream::I(offsets), Stream::I(edges)) = (&input.streams[0], &input.streams[1]) else {
            panic!()
        };
        let expected = rust_bfs(200, 0, offsets, edges);
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert!(r.exited());
        let depths: Vec<i64> = r.output.items[3..]
            .iter()
            .map(|i| match i {
                OutputItem::I(v) => *v,
                _ => panic!(),
            })
            .collect();
        assert_eq!(depths, expected);
        // visited count agrees
        let visited = expected.iter().filter(|&&d| d >= 0).count() as i64;
        assert_eq!(r.output.items[0], OutputItem::I(visited));
    }
}
