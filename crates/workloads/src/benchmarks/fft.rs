//! FFT (SPLASH-2): iterative radix-2 Cooley-Tukey FFT (the scaled-down
//! stand-in for the six-step method — same butterfly data flow and the
//! same kind of size-dependent comparisons that produced the paper's
//! Fig. 3 incubative `icmp`). The transform is function-decomposed —
//! conditioning, bit-reversal, butterflies, output — so each phase is
//! its own *section* for incremental FI.

use crate::gen::uniform_floats;
use crate::Benchmark;
use minpsid::{InputModel, ParamKind, ParamSpec, ParamValue};
use minpsid_interp::{ProgInput, Scalar, Stream};

pub const SOURCE: &str = r#"
fn condition(re: [float], im: [float], clip: float, n: int) {
    for i = 0 to n {
        re[i] = data_f(0, i);
        im[i] = data_f(1, i);
        // input conditioning: samples beyond the clip level saturate
        // (cold under the unit-amplitude reference input — the same
        // threshold-comparison shape as the paper's Fig. 3 icmp)
        if re[i] > clip { re[i] = clip; }
        if re[i] < -clip { re[i] = -clip; }
        if im[i] > clip { im[i] = clip; }
        if im[i] < -clip { im[i] = -clip; }
    }
}

// bit-reversal permutation
fn bitrev(re: [float], im: [float], n: int, logn: int) {
    for i = 0 to n {
        let j = 0;
        let t = i;
        for b = 0 to logn {
            j = j * 2 + t % 2;
            t = t / 2;
        }
        if j > i {
            let tr = re[i]; re[i] = re[j]; re[j] = tr;
            let ti = im[i]; im[i] = im[j]; im[j] = ti;
        }
    }
}

fn butterflies(re: [float], im: [float], n: int) {
    let len = 2;
    while len <= n {
        let ang = -6.283185307179586 / float(len);
        let half = len / 2;
        let base = 0;
        while base < n {
            for j = 0 to half {
                let wr = cos(ang * float(j));
                let wi = sin(ang * float(j));
                let ur = re[base + j];
                let ui = im[base + j];
                let vr = re[base + j + half] * wr - im[base + j + half] * wi;
                let vi = re[base + j + half] * wi + im[base + j + half] * wr;
                re[base + j] = ur + vr;
                im[base + j] = ui + vi;
                re[base + j + half] = ur - vr;
                im[base + j + half] = ui - vi;
            }
            base = base + len;
        }
        len = len * 2;
    }
}

fn emit(re: [float], im: [float], n: int) {
    for i = 0 to n {
        out_f(re[i]);
        out_f(im[i]);
    }
}

fn main() {
    let logn = arg_i(0);
    let clip = arg_f(1);
    let n = 1;
    for b = 0 to logn { n = n * 2; }
    let re: [float] = alloc(n);
    let im: [float] = alloc(n);
    condition(re, im, clip, n);
    bitrev(re, im, n, logn);
    butterflies(re, im, n);
    emit(re, im, n);
}
"#;

/// Multi-"thread" FFT for the §VIII-B discussion. SID's detection is
/// per-thread: every thread runs the same protected code and checks fire
/// before any synchronization point, so a `T`-thread run is behaviourally
/// `T` independent shard transforms over disjoint data. The deterministic
/// interpreter models that as an outer shard loop over a `T × n` buffer —
/// identical protected-instruction set, `T`-fold dynamic replication.
pub const MT_SOURCE: &str = r#"
fn fft_shard(re: [float], im: [float], off: int, n: int, logn: int) {
    for i = 0 to n {
        let j = 0;
        let t = i;
        for b = 0 to logn {
            j = j * 2 + t % 2;
            t = t / 2;
        }
        if j > i {
            let tr = re[off + i]; re[off + i] = re[off + j]; re[off + j] = tr;
            let ti = im[off + i]; im[off + i] = im[off + j]; im[off + j] = ti;
        }
    }
    let len = 2;
    while len <= n {
        let ang = -6.283185307179586 / float(len);
        let half = len / 2;
        let base = 0;
        while base < n {
            for j = 0 to half {
                let wr = cos(ang * float(j));
                let wi = sin(ang * float(j));
                let ur = re[off + base + j];
                let ui = im[off + base + j];
                let vr = re[off + base + j + half] * wr - im[off + base + j + half] * wi;
                let vi = re[off + base + j + half] * wi + im[off + base + j + half] * wr;
                re[off + base + j] = ur + vr;
                im[off + base + j] = ui + vi;
                re[off + base + j + half] = ur - vr;
                im[off + base + j + half] = ui - vi;
            }
            base = base + len;
        }
        len = len * 2;
    }
}

fn main() {
    let logn = arg_i(0);
    let clip = arg_f(1);
    let threads = arg_i(2);
    let n = 1;
    for b = 0 to logn { n = n * 2; }
    let total = n * threads;
    let re: [float] = alloc(total);
    let im: [float] = alloc(total);
    for i = 0 to total {
        re[i] = data_f(0, i);
        im[i] = data_f(1, i);
        if re[i] > clip { re[i] = clip; }
        if re[i] < -clip { re[i] = -clip; }
        if im[i] > clip { im[i] = clip; }
        if im[i] < -clip { im[i] = -clip; }
    }
    for t = 0 to threads {
        fft_shard(re, im, t * n, n, logn);
    }
    for i = 0 to total {
        out_f(re[i]);
        out_f(im[i]);
    }
}
"#;

/// Input model for [`MT_SOURCE`] with a fixed thread count.
pub struct MtModel {
    threads: i64,
    spec: Vec<ParamSpec>,
}

impl MtModel {
    pub fn new(threads: i64) -> Self {
        MtModel {
            threads,
            spec: vec![
                ParamSpec {
                    name: "logn",
                    kind: ParamKind::Choice {
                        options: vec![4, 5, 6],
                    },
                },
                ParamSpec::float("clip", 1.0, 40.0),
                ParamSpec::float("amplitude", 0.1, 50.0),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }
}

impl InputModel for MtModel {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let logn = params[0].as_i().clamp(1, 10);
        let clip = params[1].as_f().max(1e-3);
        let amplitude = params[2].as_f().max(1e-3);
        let seed = params[3].as_i() as u64;
        let total = (1usize << logn) * self.threads as usize;
        let re = uniform_floats(seed, total, -amplitude, amplitude);
        let im = uniform_floats(seed ^ 0x1337, total, -amplitude, amplitude);
        ProgInput::new(
            vec![Scalar::I(logn), Scalar::F(clip), Scalar::I(self.threads)],
            vec![Stream::F(re), Stream::F(im)],
        )
    }

    fn reference(&self) -> Vec<ParamValue> {
        vec![
            ParamValue::I(5),
            ParamValue::F(30.0),
            ParamValue::F(1.0),
            ParamValue::I(42),
        ]
    }
}

/// The multi-threaded FFT benchmark with `threads` ∈ {1, 2, 4} (§VIII-B).
pub fn mt_benchmark(threads: i64) -> Benchmark {
    Benchmark {
        name: "fft-mt",
        suite: "SPLASH-2",
        description:
            "Multi-threaded FFT model: per-thread shard transforms under shared protected code",
        source: MT_SOURCE,
        model: Box::new(MtModel::new(threads)),
    }
}

pub struct Model {
    spec: Vec<ParamSpec>,
}

impl Model {
    pub fn new() -> Self {
        Model {
            spec: vec![
                ParamSpec {
                    name: "logn",
                    kind: ParamKind::Choice {
                        options: vec![4, 5, 6, 7, 8],
                    },
                },
                ParamSpec::float("clip", 1.0, 40.0),
                ParamSpec::float("amplitude", 0.1, 50.0),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl InputModel for Model {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let logn = params[0].as_i().clamp(1, 12);
        let clip = params[1].as_f().max(1e-3);
        let amplitude = params[2].as_f().max(1e-3);
        let seed = params[3].as_i() as u64;
        let n = 1usize << logn;
        let re = uniform_floats(seed, n, -amplitude, amplitude);
        let im = uniform_floats(seed ^ 0x1337, n, -amplitude, amplitude);
        ProgInput::new(
            vec![Scalar::I(logn), Scalar::F(clip)],
            vec![Stream::F(re), Stream::F(im)],
        )
    }

    fn reference(&self) -> Vec<ParamValue> {
        // unit amplitude far below the clip level: the saturation branch
        // never fires under the reference input
        vec![
            ParamValue::I(6),
            ParamValue::F(30.0),
            ParamValue::F(1.0),
            ParamValue::I(42),
        ]
    }
}

pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "fft",
        suite: "SPLASH-2",
        description: "1D fast Fourier transform using six-step FFT method",
        source: SOURCE,
        model: Box::new(Model::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{ExecConfig, Interp, OutputItem};

    /// O(n²) reference DFT.
    fn dft(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let mut or_ = vec![0.0; n];
        let mut oi = vec![0.0; n];
        for k in 0..n {
            for t in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                or_[k] += re[t] * ang.cos() - im[t] * ang.sin();
                oi[k] += re[t] * ang.sin() + im[t] * ang.cos();
            }
        }
        (or_, oi)
    }

    #[test]
    fn fft_matches_reference_dft() {
        let b = benchmark();
        let m = b.compile();
        let params = vec![
            ParamValue::I(5),
            ParamValue::F(30.0),
            ParamValue::F(1.0),
            ParamValue::I(9),
        ];
        let input = b.model.materialize(&params);
        let (Stream::F(re), Stream::F(im)) = (&input.streams[0], &input.streams[1]) else {
            panic!()
        };
        let (er, ei) = dft(re, im);
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert!(r.exited());
        assert_eq!(r.output.len(), 64);
        for k in 0..32 {
            let OutputItem::F(gr) = r.output.items[2 * k] else {
                panic!()
            };
            let OutputItem::F(gi) = r.output.items[2 * k + 1] else {
                panic!()
            };
            assert!((gr - er[k]).abs() < 1e-9, "re[{k}]: {gr} vs {}", er[k]);
            assert!((gi - ei[k]).abs() < 1e-9, "im[{k}]: {gi} vs {}", ei[k]);
        }
    }

    #[test]
    fn mt_variant_matches_single_threaded_shards() {
        // a 2-thread run over [A | B] must equal two 1-thread runs on A, B
        let mt = mt_benchmark(2);
        let m2 = mt.compile();
        let params = vec![
            ParamValue::I(4),
            ParamValue::F(30.0),
            ParamValue::F(1.0),
            ParamValue::I(5),
        ];
        let input2 = mt.model.materialize(&params);
        let r2 = Interp::new(&m2, ExecConfig::default()).run(&input2);
        assert!(r2.exited());

        let st = mt_benchmark(1);
        let m1 = st.compile();
        let (Stream::F(re), Stream::F(im)) = (&input2.streams[0], &input2.streams[1]) else {
            panic!()
        };
        let n = re.len() / 2;
        let mut combined = Vec::new();
        for shard in 0..2 {
            let shard_input = minpsid_interp::ProgInput::new(
                vec![
                    minpsid_interp::Scalar::I(4),
                    minpsid_interp::Scalar::F(30.0),
                    minpsid_interp::Scalar::I(1),
                ],
                vec![
                    Stream::F(re[shard * n..(shard + 1) * n].to_vec()),
                    Stream::F(im[shard * n..(shard + 1) * n].to_vec()),
                ],
            );
            let r1 = Interp::new(&m1, ExecConfig::default()).run(&shard_input);
            assert!(r1.exited());
            combined.extend(r1.output.items);
        }
        // outputs are interleaved per shard in both cases
        assert_eq!(r2.output.items, combined);
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let b = benchmark();
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let (Stream::F(re), Stream::F(im)) = (&input.streams[0], &input.streams[1]) else {
            panic!()
        };
        let n = re.len() as f64;
        let time_energy: f64 = re.iter().zip(im).map(|(r, i)| r * r + i * i).sum::<f64>();
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        let freq_energy: f64 = r
            .output
            .items
            .iter()
            .map(|it| match it {
                OutputItem::F(v) => v * v,
                _ => panic!(),
            })
            .sum::<f64>()
            / n;
        assert!(
            (time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0),
            "Parseval violated: {time_energy} vs {freq_energy}"
        );
    }
}
