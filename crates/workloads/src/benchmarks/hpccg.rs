//! HPCCG (Mantevo): conjugate gradient on a 1D Laplacian-like SPD stencil
//! (matrix-free, as HPCCG's 27-point stencil is — reduced to 3 points for
//! the scaled-down instance). The convergence test `sqrt(rs2) < tol` is
//! the canonical input-dependent branch: which iteration it fires on
//! depends on the right-hand side. The kernel is function-decomposed the
//! way the real HPCCG is (`ddot`/`waxpby`/`sparsemv` + driver): each
//! function is one *section* for incremental FI, so editing one kernel
//! routine re-runs only its own (and the driver's) injections.

use crate::gen::uniform_floats;
use crate::Benchmark;
use minpsid::{InputModel, ParamSpec, ParamValue};
use minpsid_interp::{ProgInput, Scalar, Stream};

pub const SOURCE: &str = r#"
fn matvec(x: [float], y: [float], n: int) {
    for i = 0 to n {
        let v = 2.5 * x[i];
        if i > 0 { v = v - x[i - 1]; }
        if i < n - 1 { v = v - x[i + 1]; }
        y[i] = v;
    }
}

fn dot(a: [float], b: [float], n: int) -> float {
    let s = 0.0;
    for i = 0 to n { s = s + a[i] * b[i]; }
    return s;
}

fn init(x: [float], r: [float], p: [float], n: int) {
    for i = 0 to n {
        x[i] = 0.0;
        r[i] = data_f(0, i);
        p[i] = r[i];
    }
}

fn update(x: [float], r: [float], p: [float], ap: [float], alpha: float, n: int) {
    for i = 0 to n {
        x[i] = x[i] + alpha * p[i];
        r[i] = r[i] - alpha * ap[i];
    }
}

fn advance(p: [float], r: [float], beta: float, n: int) {
    for i = 0 to n { p[i] = r[i] + beta * p[i]; }
}

fn emit(x: [float], r: [float], n: int) {
    out_f(sqrt(dot(r, r, n)));
    for i = 0 to n { out_f(x[i]); }
}

fn main() {
    let n = arg_i(0);
    let iters = arg_i(1);
    let tol = arg_f(2);
    let x: [float] = alloc(n);
    let r: [float] = alloc(n);
    let p: [float] = alloc(n);
    let ap: [float] = alloc(n);
    init(x, r, p, n);
    let rs = dot(r, r, n);
    let it = 0;
    while it < iters {
        matvec(p, ap, n);
        let pap = dot(p, ap, n);
        let alpha = rs / pap;
        update(x, r, p, ap, alpha, n);
        let rs2 = dot(r, r, n);
        if sqrt(rs2) < tol {
            it = iters;
        } else {
            let beta = rs2 / rs;
            advance(p, r, beta, n);
            rs = rs2;
            it = it + 1;
        }
    }
    emit(x, r, n);
}
"#;

pub struct Model {
    spec: Vec<ParamSpec>,
}

impl Model {
    pub fn new() -> Self {
        Model {
            spec: vec![
                ParamSpec::int("n", 64, 384),
                ParamSpec::int("iters", 4, 24),
                ParamSpec::float("tol", 1e-8, 1e-2),
                ParamSpec::float("bmag", 0.5, 20.0),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl InputModel for Model {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let n = params[0].as_i().max(8);
        let iters = params[1].as_i().max(1);
        let tol = params[2].as_f().max(1e-12);
        let bmag = params[3].as_f().max(1e-3);
        let seed = params[4].as_i() as u64;
        let b = uniform_floats(seed, n as usize, -bmag, bmag);
        ProgInput::new(
            vec![Scalar::I(n), Scalar::I(iters), Scalar::F(tol)],
            vec![Stream::F(b)],
        )
    }

    fn reference(&self) -> Vec<ParamValue> {
        vec![
            ParamValue::I(160),
            ParamValue::I(10),
            ParamValue::F(1e-6),
            ParamValue::F(4.0),
            ParamValue::I(42),
        ]
    }
}

pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "hpccg",
        suite: "Mantevo",
        description: "A simple conjugate gradient benchmark code for a 3D chimney domain on an arbitrary number of processors",
        source: SOURCE,
        model: Box::new(Model::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{ExecConfig, Interp, OutputItem};

    #[test]
    fn residual_shrinks_with_cg_iterations() {
        let b = benchmark();
        let m = b.compile();

        let few = b.model.materialize(&[
            ParamValue::I(96),
            ParamValue::I(2),
            ParamValue::F(1e-12),
            ParamValue::F(4.0),
            ParamValue::I(7),
        ]);
        let many = b.model.materialize(&[
            ParamValue::I(96),
            ParamValue::I(20),
            ParamValue::F(1e-12),
            ParamValue::F(4.0),
            ParamValue::I(7),
        ]);
        let res = |input| {
            let r = Interp::new(&m, ExecConfig::default()).run(input);
            assert!(r.exited());
            match r.output.items[0] {
                OutputItem::F(v) => v,
                _ => panic!(),
            }
        };
        let r_few = res(&few);
        let r_many = res(&many);
        assert!(
            r_many < r_few * 0.5,
            "CG must converge: residual {r_few} -> {r_many}"
        );
    }

    #[test]
    fn solution_satisfies_the_system_approximately() {
        let b = benchmark();
        let m = b.compile();
        let input = b.model.materialize(&[
            ParamValue::I(64),
            ParamValue::I(24),
            ParamValue::F(1e-10),
            ParamValue::F(2.0),
            ParamValue::I(3),
        ]);
        let Stream::F(rhs) = &input.streams[0] else {
            panic!()
        };
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        let x: Vec<f64> = r.output.items[1..]
            .iter()
            .map(|i| match i {
                OutputItem::F(v) => *v,
                _ => panic!(),
            })
            .collect();
        let n = x.len();
        // ||Ax - b||_inf should be small after 24 iterations
        let mut worst = 0.0f64;
        for i in 0..n {
            let mut ax = 2.5 * x[i];
            if i > 0 {
                ax -= x[i - 1];
            }
            if i + 1 < n {
                ax -= x[i + 1];
            }
            worst = worst.max((ax - rhs[i]).abs());
        }
        assert!(worst < 0.15, "residual too large: {worst}");
    }
}
