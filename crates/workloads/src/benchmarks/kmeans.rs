//! Kmeans (Rodinia): 2D k-means clustering. The paper's most extreme
//! coverage-loss case (0 %–100 % across inputs): assignment-loop
//! comparisons behave completely differently on well-separated versus
//! overlapping clusters, which the `spread` parameter controls.

use crate::gen::gaussian_mixture_2d;
use crate::Benchmark;
use minpsid::{InputModel, ParamSpec, ParamValue};
use minpsid_interp::{ProgInput, Scalar, Stream};

pub const SOURCE: &str = r#"
fn main() {
    let n = arg_i(0);
    let k = arg_i(1);
    let iters = arg_i(2);
    let cx: [float] = alloc(k);
    let cy: [float] = alloc(k);
    let sx: [float] = alloc(k);
    let sy: [float] = alloc(k);
    let cnt: [int] = alloc(k);
    // init centroids from the first k points
    for c = 0 to k {
        cx[c] = data_f(0, 2 * c);
        cy[c] = data_f(0, 2 * c + 1);
    }
    for it = 0 to iters {
        for c = 0 to k {
            sx[c] = 0.0;
            sy[c] = 0.0;
            cnt[c] = 0;
        }
        for i = 0 to n {
            let px = data_f(0, 2 * i);
            let py = data_f(0, 2 * i + 1);
            let best = 0;
            let bestd = 1.0e300;
            for c = 0 to k {
                let dx = px - cx[c];
                let dy = py - cy[c];
                let d = dx * dx + dy * dy;
                if d < bestd {
                    bestd = d;
                    best = c;
                }
            }
            sx[best] = sx[best] + px;
            sy[best] = sy[best] + py;
            cnt[best] = cnt[best] + 1;
        }
        for c = 0 to k {
            if cnt[c] > 0 {
                cx[c] = sx[c] / float(cnt[c]);
                cy[c] = sy[c] / float(cnt[c]);
            }
        }
    }
    for c = 0 to k {
        out_f(cx[c]);
        out_f(cy[c]);
    }
}
"#;

pub struct Model {
    spec: Vec<ParamSpec>,
}

impl Model {
    pub fn new() -> Self {
        Model {
            spec: vec![
                ParamSpec::int("n", 64, 400),
                ParamSpec::int("k", 2, 8),
                ParamSpec::int("iters", 3, 10),
                ParamSpec::float("spread", 0.5, 20.0),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl InputModel for Model {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let n = params[0].as_i().max(8);
        let k = params[1].as_i().clamp(1, n);
        let iters = params[2].as_i().max(1);
        let spread = params[3].as_f().max(0.01);
        let seed = params[4].as_i() as u64;
        let pts = gaussian_mixture_2d(seed, n as usize, k as usize, spread);
        ProgInput::new(
            vec![Scalar::I(n), Scalar::I(k), Scalar::I(iters)],
            vec![Stream::F(pts)],
        )
    }

    fn reference(&self) -> Vec<ParamValue> {
        vec![
            ParamValue::I(200),
            ParamValue::I(4),
            ParamValue::I(5),
            ParamValue::F(2.0),
            ParamValue::I(42),
        ]
    }
}

pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "kmeans",
        suite: "Rodinia",
        description: "A clustering algorithm used extensively in data-mining and elsewhere",
        source: SOURCE,
        model: Box::new(Model::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{ExecConfig, Interp, OutputItem};

    #[test]
    fn centroids_are_finite_and_within_data_range() {
        let b = benchmark();
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let Stream::F(pts) = &input.streams[0] else {
            panic!()
        };
        let (lo, hi) = pts
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert!(r.exited());
        assert_eq!(r.output.len(), 8); // 4 centroids × (x, y)
        for item in &r.output.items {
            let OutputItem::F(v) = item else { panic!() };
            assert!(v.is_finite());
            assert!(*v >= lo && *v <= hi, "centroid {v} outside [{lo}, {hi}]");
        }
    }
}
