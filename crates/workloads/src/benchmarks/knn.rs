//! kNN (Rodinia): find the k nearest neighbours of a query point in an
//! unstructured 2D point set. The selection loop's comparison
//! (`dist[i] < bestd`) is a classic incubative candidate: its flip
//! sensitivity depends on how tightly the distances cluster, which the
//! point spread parameter controls.

use crate::gen::uniform_floats;
use crate::Benchmark;
use minpsid::{InputModel, ParamSpec, ParamValue};
use minpsid_interp::{ProgInput, Scalar, Stream};

pub const SOURCE: &str = r#"
fn main() {
    let n = arg_i(0);
    let k = arg_i(1);
    let qx = arg_f(2);
    let qy = arg_f(3);
    let radius = arg_f(4);
    let dist: [float] = alloc(n);
    let taken: [int] = alloc(n);
    for i = 0 to n {
        let dx = data_f(0, 2 * i) - qx;
        let dy = data_f(0, 2 * i + 1) - qy;
        dist[i] = sqrt(dx * dx + dy * dy);
        // records outside the search radius are filtered out, like the
        // latitude/longitude record filter of the Rodinia original
        if dist[i] > radius {
            taken[i] = 1;
        } else {
            taken[i] = 0;
        }
    }
    for j = 0 to k {
        let best = -1;
        let bestd = 1.0e300;
        for i = 0 to n {
            if taken[i] == 0 {
                if dist[i] < bestd {
                    bestd = dist[i];
                    best = i;
                }
            }
        }
        if best >= 0 {
            taken[best] = 1;
            out_i(best);
            out_f(bestd);
        } else {
            out_i(-1);
            out_f(0.0);
        }
    }
}
"#;

pub struct Model {
    spec: Vec<ParamSpec>,
}

impl Model {
    pub fn new() -> Self {
        Model {
            spec: vec![
                ParamSpec::int("n", 64, 512),
                ParamSpec::int("k", 1, 8),
                ParamSpec::float("qx", -100.0, 100.0),
                ParamSpec::float("qy", -100.0, 100.0),
                // small radii make the record filter reject most points —
                // the reference input never exercises that regime
                ParamSpec::float("radius", 2.0, 400.0),
                ParamSpec::float("spread", 1.0, 120.0),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl InputModel for Model {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let n = params[0].as_i().max(1);
        let k = params[1].as_i().clamp(1, n);
        let qx = params[2].as_f();
        let qy = params[3].as_f();
        let radius = params[4].as_f().max(1e-3);
        let spread = params[5].as_f().max(1e-3);
        let seed = params[6].as_i() as u64;
        let pts = uniform_floats(seed, 2 * n as usize, -spread, spread);
        ProgInput::new(
            vec![
                Scalar::I(n),
                Scalar::I(k),
                Scalar::F(qx),
                Scalar::F(qy),
                Scalar::F(radius),
            ],
            vec![Stream::F(pts)],
        )
    }

    fn reference(&self) -> Vec<ParamValue> {
        // the reference radius covers the whole point cloud: the filter
        // branch never rejects, so its instructions sit at ~zero benefit
        vec![
            ParamValue::I(256),
            ParamValue::I(4),
            ParamValue::F(0.0),
            ParamValue::F(0.0),
            ParamValue::F(300.0),
            ParamValue::F(50.0),
            ParamValue::I(42),
        ]
    }
}

pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "knn",
        suite: "Rodinia",
        description: "Find the k-nearest neighbours from an unstructured data set",
        source: SOURCE,
        model: Box::new(Model::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{ExecConfig, Interp, OutputItem};

    #[test]
    fn returns_k_neighbours_in_nondecreasing_distance_order() {
        let b = benchmark();
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert!(r.exited());
        // output: k (index, dist) pairs
        assert_eq!(r.output.len(), 8);
        let dists: Vec<f64> = r
            .output
            .items
            .iter()
            .skip(1)
            .step_by(2)
            .map(|i| match i {
                OutputItem::F(v) => *v,
                _ => panic!("expected float"),
            })
            .collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn nearest_matches_brute_force() {
        let b = benchmark();
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let Stream::F(pts) = &input.streams[0] else {
            panic!()
        };
        let (qx, qy) = (0.0, 0.0);
        let nearest = (0..pts.len() / 2)
            .min_by(|&a, &bp| {
                let da = (pts[2 * a] - qx).hypot(pts[2 * a + 1] - qy);
                let db = (pts[2 * bp] - qx).hypot(pts[2 * bp + 1] - qy);
                da.partial_cmp(&db).unwrap()
            })
            .unwrap();
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert_eq!(r.output.items[0], OutputItem::I(nearest as i64));
    }
}
