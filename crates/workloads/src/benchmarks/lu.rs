//! LU (Rodinia): Doolittle LU decomposition without pivoting on a
//! diagonally dominant random matrix. The paper found LU completely
//! stable across inputs (no coverage-loss inputs at any level) — the
//! triple loop executes the same instruction mix regardless of the
//! values, which this reproduction preserves.

use crate::gen::uniform_floats;
use crate::Benchmark;
use minpsid::{InputModel, ParamSpec, ParamValue};
use minpsid_interp::{ProgInput, Scalar, Stream};

pub const SOURCE: &str = r#"
fn main() {
    let n = arg_i(0);
    let a: [float] = alloc(n * n);
    for i = 0 to n * n { a[i] = data_f(0, i); }
    // Doolittle, in place: L below the diagonal, U on and above
    for k = 0 to n {
        for i = k + 1 to n {
            let f = a[i * n + k] / a[k * n + k];
            a[i * n + k] = f;
            for j = k + 1 to n {
                a[i * n + j] = a[i * n + j] - f * a[k * n + j];
            }
        }
    }
    let det = 1.0;
    for i = 0 to n { det = det * a[i * n + i]; }
    out_f(det);
    for i = 0 to n { out_f(a[i * n + i]); }
}
"#;

pub struct Model {
    spec: Vec<ParamSpec>,
}

impl Model {
    pub fn new() -> Self {
        Model {
            spec: vec![
                ParamSpec::int("n", 8, 24),
                ParamSpec::float("mag", 1.0, 10.0),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl InputModel for Model {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let n = params[0].as_i().max(2) as usize;
        let mag = params[1].as_f().max(0.1);
        let seed = params[2].as_i() as u64;
        let mut a = uniform_floats(seed, n * n, -mag, mag);
        // strict diagonal dominance keeps pivot-free elimination stable
        for i in 0..n {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| a[i * n + j].abs()).sum();
            a[i * n + i] = row_sum + mag;
        }
        ProgInput::new(vec![Scalar::I(n as i64)], vec![Stream::F(a)])
    }

    fn reference(&self) -> Vec<ParamValue> {
        vec![ParamValue::I(16), ParamValue::F(4.0), ParamValue::I(42)]
    }
}

pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "lu",
        suite: "Rodinia",
        description: "An algorithm calculating the solutions of a set of linear equations",
        source: SOURCE,
        model: Box::new(Model::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{ExecConfig, Interp, OutputItem};

    /// LU in Rust; returns the determinant (product of U's diagonal).
    fn rust_lu_det(n: usize, a: &[f64]) -> f64 {
        let mut a = a.to_vec();
        for k in 0..n {
            for i in k + 1..n {
                let f = a[i * n + k] / a[k * n + k];
                a[i * n + k] = f;
                for j in k + 1..n {
                    a[i * n + j] -= f * a[k * n + j];
                }
            }
        }
        (0..n).map(|i| a[i * n + i]).product()
    }

    #[test]
    fn determinant_matches_rust_reference_bitwise() {
        let b = benchmark();
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let Stream::F(a) = &input.streams[0] else {
            panic!()
        };
        let expected = rust_lu_det(16, a);
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert!(r.exited());
        let OutputItem::F(det) = r.output.items[0] else {
            panic!()
        };
        // identical operation order -> bit-identical result
        assert_eq!(det.to_bits(), expected.to_bits());
    }

    #[test]
    fn diagonally_dominant_matrix_has_nonzero_pivots() {
        let b = benchmark();
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        for item in &r.output.items[1..] {
            let OutputItem::F(pivot) = item else { panic!() };
            assert!(pivot.abs() > 1e-9, "pivot collapsed: {pivot}");
        }
    }
}
