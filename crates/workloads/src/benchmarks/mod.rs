//! The 11 benchmark kernels (paper Table I), each as a minic source plus
//! an [`minpsid::InputModel`] describing its input space.

pub mod backprop;
pub mod bfs;
pub mod fft;
pub mod hpccg;
pub mod kmeans;
pub mod knn;
pub mod lu;
pub mod needle;
pub mod particlefilter;
pub mod pathfinder;
pub mod xsbench;
