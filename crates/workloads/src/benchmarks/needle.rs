//! Needle (Rodinia): Needleman-Wunsch global DNA-sequence alignment —
//! a full (m+1)×(n+1) DP table with a three-way max recurrence. The paper
//! found Needle to have the largest incubative-instruction share (32 %):
//! which `max` arm wins is a pure function of the sequence content.

use crate::gen::uniform_ints;
use crate::Benchmark;
use minpsid::{InputModel, ParamSpec, ParamValue};
use minpsid_interp::{ProgInput, Scalar, Stream};

pub const SOURCE: &str = r#"
fn main() {
    let m = arg_i(0);
    let n = arg_i(1);
    let penalty = arg_i(2);
    let w = n + 1;
    let dp: [int] = alloc((m + 1) * w);
    for j = 0 to n + 1 { dp[j] = -(j * penalty); }
    for i = 1 to m + 1 { dp[i * w] = -(i * penalty); }
    for i = 1 to m + 1 {
        for j = 1 to n + 1 {
            let a = data_i(0, i - 1);
            let b = data_i(1, j - 1);
            let s = data_i(2, a * 4 + b);
            let diag = dp[(i - 1) * w + j - 1] + s;
            let up = dp[(i - 1) * w + j] - penalty;
            let left = dp[i * w + j - 1] - penalty;
            let best = diag;
            if up > best { best = up; }
            if left > best { best = left; }
            dp[i * w + j] = best;
        }
    }
    out_i(dp[m * w + n]);
    for i = 0 to m + 1 { out_i(dp[i * w + n]); }
}
"#;

pub struct Model {
    spec: Vec<ParamSpec>,
}

impl Model {
    pub fn new() -> Self {
        Model {
            spec: vec![
                ParamSpec::int("m", 16, 64),
                ParamSpec::int("n", 16, 64),
                ParamSpec::int("penalty", 1, 10),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl InputModel for Model {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let m = params[0].as_i().max(1);
        let n = params[1].as_i().max(1);
        let penalty = params[2].as_i().max(1);
        let seed = params[3].as_i() as u64;
        let seq_a = uniform_ints(seed, m as usize, 0, 3);
        let seq_b = uniform_ints(seed ^ 0xAC61, n as usize, 0, 3);
        // BLOSUM-like random similarity matrix: positive diagonal,
        // mildly negative off-diagonal
        let mut sim = uniform_ints(seed ^ 0x5151, 16, -2, 1);
        for d in 0..4 {
            sim[d * 4 + d] = 2 + (seed as i64 % 3);
        }
        ProgInput::new(
            vec![Scalar::I(m), Scalar::I(n), Scalar::I(penalty)],
            vec![Stream::I(seq_a), Stream::I(seq_b), Stream::I(sim)],
        )
    }

    fn reference(&self) -> Vec<ParamValue> {
        vec![
            ParamValue::I(32),
            ParamValue::I(32),
            ParamValue::I(4),
            ParamValue::I(42),
        ]
    }
}

pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "needle",
        suite: "Rodinia",
        description: "A nonlinear global optimization method for DNA sequence alignments",
        source: SOURCE,
        model: Box::new(Model::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{ExecConfig, Interp, OutputItem};

    fn rust_nw(a: &[i64], b: &[i64], sim: &[i64], penalty: i64) -> i64 {
        let (m, n) = (a.len(), b.len());
        let w = n + 1;
        let mut dp = vec![0i64; (m + 1) * w];
        for (j, cell) in dp.iter_mut().enumerate().take(n + 1) {
            *cell = -(j as i64 * penalty);
        }
        for i in 1..=m {
            dp[i * w] = -(i as i64 * penalty);
        }
        for i in 1..=m {
            for j in 1..=n {
                let s = sim[(a[i - 1] * 4 + b[j - 1]) as usize];
                let diag = dp[(i - 1) * w + j - 1] + s;
                let up = dp[(i - 1) * w + j] - penalty;
                let left = dp[i * w + j - 1] - penalty;
                dp[i * w + j] = diag.max(up).max(left);
            }
        }
        dp[m * w + n]
    }

    #[test]
    fn alignment_score_matches_rust_reference() {
        let b = benchmark();
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let (Stream::I(sa), Stream::I(sb), Stream::I(sim)) =
            (&input.streams[0], &input.streams[1], &input.streams[2])
        else {
            panic!()
        };
        let expected = rust_nw(sa, sb, sim, 4);
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert!(r.exited());
        assert_eq!(r.output.items[0], OutputItem::I(expected));
    }
}
