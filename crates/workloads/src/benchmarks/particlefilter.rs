//! Particlefilter (Rodinia): a 1D bootstrap particle filter tracking a
//! noisy target. Likelihood exponentials concentrate or flatten the
//! weight distribution depending on the noise scale, so the resampling
//! loop's trip pattern — and its fault sensitivity — is input-dependent.

use crate::gen::{gaussians, uniform_floats};
use crate::Benchmark;
use minpsid::{InputModel, ParamSpec, ParamValue};
use minpsid_interp::{ProgInput, Scalar, Stream};

pub const SOURCE: &str = r#"
fn main() {
    let np = arg_i(0);
    let steps = arg_i(1);
    let sigma = arg_f(2);
    let p: [float] = alloc(np);
    let w: [float] = alloc(np);
    let resampled: [float] = alloc(np);
    for i = 0 to np {
        p[i] = data_f(0, i);
        w[i] = 1.0 / float(np);
    }
    for t = 0 to steps {
        let obs = data_f(1, t);
        // propagate with process noise, weight by likelihood
        let wsum = 0.0;
        for i = 0 to np {
            p[i] = p[i] + data_f(2, t * np + i);
            let d = p[i] - obs;
            w[i] = w[i] * exp(-(d * d) / (2.0 * sigma * sigma));
            wsum = wsum + w[i];
        }
        if wsum < 1.0e-300 {
            for i = 0 to np { w[i] = 1.0 / float(np); }
            wsum = 1.0;
        }
        let est = 0.0;
        let ess_inv = 0.0;
        for i = 0 to np {
            w[i] = w[i] / wsum;
            est = est + w[i] * p[i];
            ess_inv = ess_inv + w[i] * w[i];
        }
        out_f(est);
        // systematic resampling, but only when the effective sample size
        // degenerates — with a flat likelihood (the reference regime) the
        // whole resampling kernel is cold
        let ess = 1.0 / ess_inv;
        if ess < 0.5 * float(np) {
            let u = data_f(3, t) / float(np);
            let cumulative = 0.0;
            let j = 0;
            for i = 0 to np {
                cumulative = cumulative + w[i];
                while float(j) / float(np) + u < cumulative {
                    if j < np {
                        resampled[j] = p[i];
                        j = j + 1;
                    } else {
                        break;
                    }
                }
            }
            while j < np {
                resampled[j] = p[np - 1];
                j = j + 1;
            }
            for i = 0 to np {
                p[i] = resampled[i];
                w[i] = 1.0 / float(np);
            }
        }
    }
}
"#;

pub struct Model {
    spec: Vec<ParamSpec>,
}

impl Model {
    pub fn new() -> Self {
        Model {
            spec: vec![
                ParamSpec::int("np", 32, 256),
                ParamSpec::int("steps", 4, 16),
                ParamSpec::float("sigma", 0.3, 3.0),
                ParamSpec::float("drift", -1.0, 1.0),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl InputModel for Model {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let np = params[0].as_i().max(4) as usize;
        let steps = params[1].as_i().max(1) as usize;
        let sigma = params[2].as_f().max(0.05);
        let drift = params[3].as_f();
        let seed = params[4].as_i() as u64;

        // initial particle cloud around 0
        let init: Vec<f64> = gaussians(seed, np);
        // the true target drifts; observations are noisy readings of it
        let obs_noise = gaussians(seed ^ 0x0B5, steps);
        let obs: Vec<f64> = (0..steps)
            .map(|t| drift * t as f64 + 0.3 * obs_noise[t])
            .collect();
        // process noise for every particle at every step
        let noise: Vec<f64> = gaussians(seed ^ 0x4015E, steps * np)
            .into_iter()
            .map(|g| 0.2 * g + drift / steps.max(1) as f64)
            .collect();
        // resampling offsets in [0, 1)
        let offsets = uniform_floats(seed ^ 0x0FF5, steps, 0.0, 1.0);

        ProgInput::new(
            vec![
                Scalar::I(np as i64),
                Scalar::I(steps as i64),
                Scalar::F(sigma),
            ],
            vec![
                Stream::F(init),
                Stream::F(obs),
                Stream::F(noise),
                Stream::F(offsets),
            ],
        )
    }

    fn reference(&self) -> Vec<ParamValue> {
        vec![
            ParamValue::I(128),
            ParamValue::I(8),
            ParamValue::F(1.0),
            ParamValue::F(0.2),
            ParamValue::I(42),
        ]
    }
}

pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "particlefilter",
        suite: "Rodinia",
        description: "Statistical estimator of the location of a target object given noisy measurements of that target's location in a Bayesian framework",
        source: SOURCE,
        model: Box::new(Model::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{ExecConfig, Interp, OutputItem};

    #[test]
    fn estimates_track_the_drifting_target() {
        let b = benchmark();
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert!(r.exited(), "{:?}", r.termination);
        assert_eq!(r.output.len(), 8);
        let estimates: Vec<f64> = r
            .output
            .items
            .iter()
            .map(|i| match i {
                OutputItem::F(v) => *v,
                _ => panic!(),
            })
            .collect();
        assert!(estimates.iter().all(|e| e.is_finite()));
        // drift 0.2/step over 8 steps: the last estimate should sit well
        // above the first
        assert!(
            estimates.last().unwrap() > estimates.first().unwrap(),
            "filter failed to follow the drift: {estimates:?}"
        );
    }
}
