//! Pathfinder (Rodinia): dynamic programming over a weight grid — find
//! the cheapest top-to-bottom path moving to the same / adjacent column
//! per row. The rolling-DP structure (Fig. 1 and Fig. 5 of the paper use
//! Pathfinder fragments) gives boundary-column branches whose behaviour
//! depends on the grid width and weight range.

use crate::gen::uniform_ints;
use crate::Benchmark;
use minpsid::{InputModel, ParamSpec, ParamValue};
use minpsid_interp::{ProgInput, Scalar, Stream};

pub const SOURCE: &str = r#"
fn main() {
    let rows = arg_i(0);
    let cols = arg_i(1);
    let dp: [int] = alloc(cols);
    let next: [int] = alloc(cols);
    for c = 0 to cols { dp[c] = data_i(0, c); }
    for r = 1 to rows {
        for c = 0 to cols {
            let best = dp[c];
            if c > 0 {
                if dp[c - 1] < best { best = dp[c - 1]; }
            }
            if c < cols - 1 {
                if dp[c + 1] < best { best = dp[c + 1]; }
            }
            next[c] = data_i(0, r * cols + c) + best;
        }
        for c = 0 to cols { dp[c] = next[c]; }
    }
    let best = dp[0];
    for c = 1 to cols {
        if dp[c] < best { best = dp[c]; }
    }
    out_i(best);
    for c = 0 to cols { out_i(dp[c]); }
}
"#;

pub struct Model {
    spec: Vec<ParamSpec>,
}

impl Model {
    pub fn new() -> Self {
        Model {
            spec: vec![
                ParamSpec::int("rows", 8, 40),
                ParamSpec::int("cols", 16, 64),
                ParamSpec::int("wmax", 1, 100),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl InputModel for Model {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let rows = params[0].as_i().max(1);
        let cols = params[1].as_i().max(2);
        let wmax = params[2].as_i().max(1);
        let seed = params[3].as_i() as u64;
        let grid = uniform_ints(seed, (rows * cols) as usize, 0, wmax);
        ProgInput::new(
            vec![Scalar::I(rows), Scalar::I(cols)],
            vec![Stream::I(grid)],
        )
    }

    fn reference(&self) -> Vec<ParamValue> {
        // a mid-range weight magnitude keeps the reference representative
        // (the paper found Pathfinder nearly loss-free, Table II)
        vec![
            ParamValue::I(24),
            ParamValue::I(40),
            ParamValue::I(50),
            ParamValue::I(42),
        ]
    }
}

pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "pathfinder",
        suite: "Rodinia",
        description: "Use dynamic programming to find a path in grid",
        source: SOURCE,
        model: Box::new(Model::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{ExecConfig, Interp, OutputItem};

    /// Reference implementation of the same DP in Rust.
    fn rust_pathfinder(rows: usize, cols: usize, grid: &[i64]) -> i64 {
        let mut dp: Vec<i64> = grid[..cols].to_vec();
        for r in 1..rows {
            let mut next = vec![0i64; cols];
            for c in 0..cols {
                let mut best = dp[c];
                if c > 0 {
                    best = best.min(dp[c - 1]);
                }
                if c + 1 < cols {
                    best = best.min(dp[c + 1]);
                }
                next[c] = grid[r * cols + c] + best;
            }
            dp = next;
        }
        dp.into_iter().min().unwrap()
    }

    #[test]
    fn matches_rust_reference() {
        let b = benchmark();
        let m = b.compile();
        let params = vec![
            ParamValue::I(12),
            ParamValue::I(20),
            ParamValue::I(9),
            ParamValue::I(7),
        ];
        let input = b.model.materialize(&params);
        let Stream::I(grid) = &input.streams[0] else {
            panic!()
        };
        let expected = rust_pathfinder(12, 20, grid);
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert!(r.exited());
        assert_eq!(r.output.items[0], OutputItem::I(expected));
    }
}
