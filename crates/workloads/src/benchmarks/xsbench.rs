//! XSBench (CESAR): the macroscopic-cross-section lookup kernel of Monte
//! Carlo neutronics — binary search on a sorted energy grid plus linear
//! interpolation over 5 reaction channels. The binary-search comparisons
//! are textbook incubative instructions: their flip sensitivity depends on
//! where the lookup energies fall within the grid. The kernel is
//! function-decomposed (grid search, channel interpolation, driver) so
//! each routine is one *section* for incremental FI.

use crate::gen::{sorted_grid, uniform_floats};
use crate::Benchmark;
use minpsid::{InputModel, ParamSpec, ParamValue};
use minpsid_interp::{ProgInput, Scalar, Stream};

pub const SOURCE: &str = r#"
// resonance-region self-shielding correction (cold under the reference
// input: almost no lookup falls below the reference threshold)
fn resonance(e: float, acc: float) -> float {
    return acc + log(1.0 + e) * 0.5;
}

// binary search: find lo with grid[lo] <= e < grid[lo + 1]
fn search(ngrid: int, e: float) -> int {
    let lo = 0;
    let hi = ngrid - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if data_f(0, mid) > e {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return lo;
}

// interpolate all 5 reaction channels, folding into the accumulator in
// channel order (bitwise-identical to the inline loop it replaced)
fn channels(lo: int, e: float, acc: float) -> float {
    let hi = lo + 1;
    let e0 = data_f(0, lo);
    let e1 = data_f(0, hi);
    let f = (e - e0) / (e1 - e0);
    for c = 0 to 5 {
        let x0 = data_f(1, lo * 5 + c);
        let x1 = data_f(1, hi * 5 + c);
        acc = acc + x0 + f * (x1 - x0);
    }
    return acc;
}

fn main() {
    let ngrid = arg_i(0);
    let nlookups = arg_i(1);
    let eres = arg_f(2);
    let acc = 0.0;
    let resonant = 0;
    for l = 0 to nlookups {
        let e = data_f(2, l);
        // resonance-region handling: low-energy lookups take an extra
        // self-shielding correction path (cold under the reference input)
        if e < eres {
            resonant = resonant + 1;
            acc = resonance(e, acc);
        }
        let lo = search(ngrid, e);
        acc = channels(lo, e, acc);
    }
    out_f(acc);
    out_i(resonant);
}
"#;

pub struct Model {
    spec: Vec<ParamSpec>,
}

impl Model {
    pub fn new() -> Self {
        Model {
            spec: vec![
                ParamSpec::int("ngrid", 64, 512),
                ParamSpec::int("nlookups", 32, 256),
                ParamSpec::float("emax", 1.0, 100.0),
                ParamSpec::float("eres", 0.0, 40.0),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl InputModel for Model {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let ngrid = params[0].as_i().max(4) as usize;
        let nlookups = params[1].as_i().max(1) as usize;
        let emax = params[2].as_f().max(0.1);
        let eres = params[3].as_f().max(0.0);
        let seed = params[4].as_i() as u64;
        let grid = sorted_grid(seed, ngrid, 0.0, emax);
        let xs = uniform_floats(seed ^ 0x5EC, ngrid * 5, 0.0, 10.0);
        // lookup energies strictly inside the grid span
        let span = grid[ngrid - 1] - grid[0];
        let lookups: Vec<f64> = uniform_floats(seed ^ 0x100C, nlookups, 0.0, 1.0)
            .into_iter()
            .map(|u| grid[0] + u * span * 0.999)
            .collect();
        ProgInput::new(
            vec![
                Scalar::I(ngrid as i64),
                Scalar::I(nlookups as i64),
                Scalar::F(eres),
            ],
            vec![Stream::F(grid), Stream::F(xs), Stream::F(lookups)],
        )
    }

    fn reference(&self) -> Vec<ParamValue> {
        // reference resonance threshold below almost the whole grid: the
        // correction path is cold, exactly the Fig. 3 incubative setup
        vec![
            ParamValue::I(256),
            ParamValue::I(128),
            ParamValue::F(20.0),
            ParamValue::F(0.2),
            ParamValue::I(42),
        ]
    }
}

pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "xsbench",
        suite: "CESAR",
        description: "Key computational kernel of the Monte Carlo neutronics application",
        source: SOURCE,
        model: Box::new(Model::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_interp::{ExecConfig, Interp, OutputItem};

    fn rust_xsbench(grid: &[f64], xs: &[f64], lookups: &[f64], eres: f64) -> (f64, i64) {
        let mut acc = 0.0;
        let mut resonant = 0i64;
        for &e in lookups {
            if e < eres {
                resonant += 1;
                acc += (1.0 + e).ln() * 0.5;
            }
            let mut lo = 0usize;
            let mut hi = grid.len() - 1;
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                if grid[mid] > e {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            let f = (e - grid[lo]) / (grid[hi] - grid[lo]);
            for c in 0..5 {
                let x0 = xs[lo * 5 + c];
                let x1 = xs[hi * 5 + c];
                // same association as the minic source: (acc + x0) + f*(x1-x0)
                acc = acc + x0 + f * (x1 - x0);
            }
        }
        (acc, resonant)
    }

    #[test]
    fn accumulated_xs_matches_rust_reference_bitwise() {
        let b = benchmark();
        let m = b.compile();
        // use a mid-range resonance threshold so both paths execute
        let params = vec![
            ParamValue::I(128),
            ParamValue::I(64),
            ParamValue::F(10.0),
            ParamValue::F(5.0),
            ParamValue::I(11),
        ];
        let input = b.model.materialize(&params);
        let (Stream::F(grid), Stream::F(xs), Stream::F(lookups)) =
            (&input.streams[0], &input.streams[1], &input.streams[2])
        else {
            panic!()
        };
        let (expected, resonant) = rust_xsbench(grid, xs, lookups, 5.0);
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert!(r.exited());
        let OutputItem::F(acc) = r.output.items[0] else {
            panic!()
        };
        assert_eq!(acc.to_bits(), expected.to_bits());
        assert_eq!(r.output.items[1], OutputItem::I(resonant));
        assert!(resonant > 0, "resonance path must be exercised");
    }
}
