//! "Real-world" program inputs for the §VII case study.
//!
//! The paper runs BFS on the top-30 KONECT graphs and Kmeans on 10 Kaggle
//! clustering datasets. Those corpora are not redistributable here, so
//! the case study uses synthetic stand-ins drawn from *different
//! distributions* than the benchmarks' random-input generators:
//!
//! * **KONECT-like graphs**: preferential-attachment (scale-free) graphs —
//!   the heavy-tailed degree distribution of real social/citation
//!   networks, versus the uniform-degree random graphs of the generator;
//! * **Kaggle-like tables**: Gaussian-mixture point clouds with outliers
//!   and varied separations, versus uniformly seeded blobs.
//!
//! What matters for the experiment is only that the evaluation inputs are
//! distributionally unlike the inputs the protection was tuned/searched
//! on; the substitution preserves exactly that property.

use crate::gen::{gaussian_mixture_2d, preferential_attachment_csr};
use minpsid::{InputModel, ParamSpec, ParamValue};
use minpsid_interp::{ProgInput, Scalar, Stream};

/// BFS over KONECT-like scale-free graphs. Parameters: node count,
/// attachment degree, source node, seed.
pub struct BfsRealWorld {
    spec: Vec<ParamSpec>,
}

impl BfsRealWorld {
    pub fn new() -> Self {
        BfsRealWorld {
            spec: vec![
                ParamSpec::int("n", 100, 400),
                ParamSpec::int("m", 1, 4),
                ParamSpec::int("src", 0, 99),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }

    /// The fixed "top-30"-style dataset list: 30 graphs of varied size and
    /// attachment density, deterministically seeded.
    pub fn dataset_params(&self) -> Vec<Vec<ParamValue>> {
        (0..30)
            .map(|i| {
                vec![
                    ParamValue::I(120 + 9 * i),
                    ParamValue::I(1 + (i % 4)),
                    ParamValue::I((7 * i) % 100),
                    ParamValue::I(1000 + i),
                ]
            })
            .collect()
    }
}

impl Default for BfsRealWorld {
    fn default() -> Self {
        Self::new()
    }
}

impl InputModel for BfsRealWorld {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let n = params[0].as_i().max(100);
        let m = params[1].as_i().max(1);
        let src = params[2].as_i().clamp(0, n - 1);
        let seed = params[3].as_i() as u64;
        let (offsets, edges) = preferential_attachment_csr(seed, n as usize, m as usize);
        ProgInput::new(
            vec![Scalar::I(n), Scalar::I(src)],
            vec![Stream::I(offsets), Stream::I(edges)],
        )
    }

    fn reference(&self) -> Vec<ParamValue> {
        crate::benchmarks::bfs::Model::new().reference()
    }
}

/// Kmeans over Kaggle-like clustering tables. Parameters: points,
/// clusters, iterations, spread, seed.
pub struct KmeansRealWorld {
    spec: Vec<ParamSpec>,
}

impl KmeansRealWorld {
    pub fn new() -> Self {
        KmeansRealWorld {
            spec: vec![
                ParamSpec::int("n", 100, 400),
                ParamSpec::int("k", 2, 8),
                ParamSpec::int("iters", 3, 10),
                ParamSpec::float("spread", 0.5, 25.0),
                ParamSpec::int("seed", 0, 1_000_000),
            ],
        }
    }

    /// The fixed 10-dataset list of the case study.
    pub fn dataset_params(&self) -> Vec<Vec<ParamValue>> {
        (0..10)
            .map(|i| {
                vec![
                    ParamValue::I(140 + 25 * i),
                    ParamValue::I(2 + (i % 6)),
                    ParamValue::I(4 + (i % 4)),
                    ParamValue::F(1.0 + 2.3 * i as f64),
                    ParamValue::I(2000 + i),
                ]
            })
            .collect()
    }
}

impl Default for KmeansRealWorld {
    fn default() -> Self {
        Self::new()
    }
}

impl InputModel for KmeansRealWorld {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let n = params[0].as_i().max(8);
        let k = params[1].as_i().clamp(1, n);
        let iters = params[2].as_i().max(1);
        let spread = params[3].as_f().max(0.01);
        let seed = params[4].as_i() as u64;
        // mixtures deliberately use *more* blobs than k and stronger
        // outlier structure than the benchmark generator
        let pts = gaussian_mixture_2d(seed, n as usize, (k + 2) as usize, spread);
        ProgInput::new(
            vec![Scalar::I(n), Scalar::I(k), Scalar::I(iters)],
            vec![Stream::F(pts)],
        )
    }

    fn reference(&self) -> Vec<ParamValue> {
        crate::benchmarks::kmeans::Model::new().reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_faultsim::{golden_run, CampaignConfig};

    #[test]
    fn all_konect_like_graphs_run_on_bfs() {
        let b = crate::benchmarks::bfs::benchmark();
        let m = b.compile();
        let model = BfsRealWorld::new();
        let cfg = CampaignConfig::quick(1);
        for params in model.dataset_params() {
            let input = model.materialize(&params);
            golden_run(&m, &input, &cfg).expect("dataset input must be valid");
        }
    }

    #[test]
    fn all_kaggle_like_tables_run_on_kmeans() {
        let b = crate::benchmarks::kmeans::benchmark();
        let m = b.compile();
        let model = KmeansRealWorld::new();
        let cfg = CampaignConfig::quick(2);
        for params in model.dataset_params() {
            let input = model.materialize(&params);
            golden_run(&m, &input, &cfg).expect("dataset input must be valid");
        }
    }

    #[test]
    fn dataset_lists_have_the_papers_sizes() {
        assert_eq!(BfsRealWorld::new().dataset_params().len(), 30);
        assert_eq!(KmeansRealWorld::new().dataset_params().len(), 10);
    }
}
