//! Seeded data generators — the "input-randomizing scripts" of §III-A2.
//!
//! All generators are deterministic functions of their parameters (the
//! seed is itself a search parameter, so the GA can mutate it), and they
//! only produce inputs on which the benchmarks run without errors.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Uniform random integers in `[lo, hi]`.
pub fn uniform_ints(seed: u64, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(lo..=hi)).collect()
}

/// Uniform random floats in `[lo, hi)`.
pub fn uniform_floats(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

/// Strictly increasing sorted floats in `[lo, hi]` (an energy grid):
/// uniform samples, sorted, then nudged apart so adjacent points never
/// coincide (interpolation never divides by zero).
pub fn sorted_grid(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut v = uniform_floats(seed, n, lo, hi);
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let eps = (hi - lo).abs().max(1.0) * 1e-9;
    for i in 1..v.len() {
        if v[i] <= v[i - 1] {
            v[i] = v[i - 1] + eps;
        }
    }
    v
}

/// Standard-normal samples (Box-Muller).
pub fn gaussians(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let t = 2.0 * std::f64::consts::PI * u2;
        out.push(r * t.cos());
        if out.len() < n {
            out.push(r * t.sin());
        }
    }
    out
}

/// A random directed graph in CSR form: `(offsets, edges)` with
/// `offsets.len() == n + 1`. Every node gets `degree` out-edges to
/// uniformly random targets (self-loops allowed — BFS handles them).
pub fn random_csr(seed: u64, n: usize, degree: usize) -> (Vec<i64>, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut edges = Vec::with_capacity(n * degree);
    offsets.push(0);
    for _ in 0..n {
        for _ in 0..degree {
            edges.push(rng.random_range(0..n as i64));
        }
        offsets.push(edges.len() as i64);
    }
    (offsets, edges)
}

/// A KONECT-like scale-free graph via preferential attachment
/// (Barabási–Albert): node `i` attaches `m` edges to earlier nodes,
/// preferring high-degree ones; returned as a symmetric CSR. Real-world
/// social/citation graphs in KONECT have exactly this heavy-tailed degree
/// shape, which is what distinguishes the case-study inputs (§VII) from
/// the uniform random graphs above.
pub fn preferential_attachment_csr(seed: u64, n: usize, m: usize) -> (Vec<i64>, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = m.max(1).min(n.saturating_sub(1)).max(1);
    // adjacency lists; `targets` is the repeated-endpoint pool that makes
    // sampling proportional to degree
    let mut adj: Vec<Vec<i64>> = vec![Vec::new(); n];
    let mut pool: Vec<usize> = Vec::new();
    for v in 0..n.min(m + 1) {
        // small seed clique
        for u in 0..v {
            adj[v].push(u as i64);
            adj[u].push(v as i64);
            pool.push(u);
            pool.push(v);
        }
    }
    for v in (m + 1)..n {
        // Vec + contains (not a HashSet): m is tiny and deterministic
        // iteration order is required for reproducible inputs
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let u = if pool.is_empty() || rng.random_range(0..10) == 0 {
                rng.random_range(0..v)
            } else {
                pool[rng.random_range(0..pool.len())]
            };
            if u != v && !chosen.contains(&u) {
                chosen.push(u);
            }
        }
        for u in chosen {
            adj[v].push(u as i64);
            adj[u].push(v as i64);
            pool.push(u);
            pool.push(v);
        }
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut edges = Vec::new();
    offsets.push(0);
    for a in adj {
        edges.extend(a);
        offsets.push(edges.len() as i64);
    }
    (offsets, edges)
}

/// Kaggle-like 2D clustering data: `k` Gaussian blobs with distinct
/// centers and per-cluster spreads, plus a small fraction of uniform
/// outliers — interleaved as `[x0, y0, x1, y1, …]`.
pub fn gaussian_mixture_2d(seed: u64, n: usize, k: usize, spread: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = k.max(1);
    let centers: Vec<(f64, f64)> = (0..k)
        .map(|_| (rng.random_range(-50.0..50.0), rng.random_range(-50.0..50.0)))
        .collect();
    let noise = gaussians(seed.wrapping_add(1), 2 * n);
    let mut out = Vec::with_capacity(2 * n);
    for i in 0..n {
        if rng.random_range(0..100) < 3 {
            // outlier
            out.push(rng.random_range(-100.0..100.0));
            out.push(rng.random_range(-100.0..100.0));
        } else {
            let (cx, cy) = centers[rng.random_range(0..k)];
            out.push(cx + noise[2 * i] * spread);
            out.push(cy + noise[2 * i + 1] * spread);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_ints(5, 100, 0, 9), uniform_ints(5, 100, 0, 9));
        assert_eq!(
            gaussian_mixture_2d(3, 50, 4, 2.0),
            gaussian_mixture_2d(3, 50, 4, 2.0)
        );
        assert_eq!(
            preferential_attachment_csr(9, 60, 2),
            preferential_attachment_csr(9, 60, 2)
        );
    }

    #[test]
    fn uniform_ints_respect_range() {
        let v = uniform_ints(1, 1000, -5, 5);
        assert!(v.iter().all(|&x| (-5..=5).contains(&x)));
    }

    #[test]
    fn sorted_grid_is_strictly_increasing() {
        let g = sorted_grid(2, 500, 0.0, 1.0);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn gaussians_have_sane_moments() {
        let g = gaussians(4, 10_000);
        let mean: f64 = g.iter().sum::<f64>() / g.len() as f64;
        let var: f64 = g.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / g.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn csr_is_well_formed() {
        let (off, edges) = random_csr(7, 50, 4);
        assert_eq!(off.len(), 51);
        assert_eq!(*off.last().unwrap() as usize, edges.len());
        assert!(off.windows(2).all(|w| w[0] <= w[1]));
        assert!(edges.iter().all(|&e| (0..50).contains(&e)));
    }

    #[test]
    fn preferential_attachment_has_heavy_tail() {
        let n = 300;
        let (off, _) = preferential_attachment_csr(11, n, 2);
        let degrees: Vec<i64> = off.windows(2).map(|w| w[1] - w[0]).collect();
        let max_deg = *degrees.iter().max().unwrap();
        let mean_deg: f64 = degrees.iter().sum::<i64>() as f64 / n as f64;
        assert!(
            max_deg as f64 > 4.0 * mean_deg,
            "hub expected: max {max_deg}, mean {mean_deg}"
        );
    }

    #[test]
    fn mixture_size_and_interleaving() {
        let pts = gaussian_mixture_2d(6, 123, 3, 1.5);
        assert_eq!(pts.len(), 246);
        assert!(pts.iter().all(|x| x.is_finite()));
    }
}
