//! # minpsid-workloads — the paper's 11 HPC benchmarks
//!
//! Table I of the paper, re-implemented in `minic` with parameterized
//! random-input generators following §III-A2:
//!
//! | Benchmark      | Suite    | Kernel                                   |
//! |----------------|----------|------------------------------------------|
//! | XSBench        | CESAR    | MC neutronics macro-XS lookup            |
//! | HPCCG          | Mantevo  | conjugate gradient (sparse SPD stencil)  |
//! | FFT            | SPLASH-2 | radix-2 1D FFT                           |
//! | kNN            | Rodinia  | k nearest neighbours                     |
//! | Pathfinder     | Rodinia  | dynamic-programming grid path            |
//! | Backprop       | Rodinia  | one training step of a layered MLP       |
//! | BFS            | Rodinia  | breadth-first search (CSR)               |
//! | Particlefilter | Rodinia  | 1D Bayesian particle filter              |
//! | Kmeans         | Rodinia  | 2D k-means clustering                    |
//! | LU             | Rodinia  | LU decomposition (Doolittle)             |
//! | Needle         | Rodinia  | Needleman-Wunsch sequence alignment      |
//!
//! Instance sizes are scaled down (10⁴–10⁶ dynamic IR instructions at the
//! reference inputs) because this reproduction runs interpreted; the
//! control structure — the input-dependent branches and loop bounds that
//! make instructions *incubative* — is kept.
//!
//! Every benchmark implements [`minpsid::InputModel`], so the whole suite
//! plugs into both baseline SID and MINPSID. Input-generation rules match
//! the paper: numeric parameters randomize over documented ranges, data
//! streams are produced by seeded generators ("scripts" in the paper's
//! terms), and inputs that would error out are rejected by the pipelines'
//! golden-run filter.

pub mod benchmarks;
pub mod datasets;
pub mod gen;

use minpsid::InputModel;
use minpsid_ir::Module;

/// One registered benchmark.
pub struct Benchmark {
    pub name: &'static str,
    pub suite: &'static str,
    pub description: &'static str,
    /// minic source code.
    pub source: &'static str,
    /// The benchmark's input space.
    pub model: Box<dyn InputModel + Send + Sync>,
}

impl Benchmark {
    /// Compile the benchmark to IR (panics on error: sources are fixtures
    /// of this crate and must always compile).
    pub fn compile(&self) -> Module {
        match minic::compile(self.source, self.name) {
            Ok(m) => m,
            Err(e) => panic!("benchmark `{}` failed to compile: {e}", self.name),
        }
    }
}

/// The full 11-benchmark suite, in the paper's Table I order.
pub fn suite() -> Vec<Benchmark> {
    vec![
        benchmarks::xsbench::benchmark(),
        benchmarks::hpccg::benchmark(),
        benchmarks::fft::benchmark(),
        benchmarks::knn::benchmark(),
        benchmarks::pathfinder::benchmark(),
        benchmarks::backprop::benchmark(),
        benchmarks::bfs::benchmark(),
        benchmarks::particlefilter::benchmark(),
        benchmarks::kmeans::benchmark(),
        benchmarks::lu::benchmark(),
        benchmarks::needle::benchmark(),
    ]
}

/// Look up one benchmark by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minpsid_faultsim::{golden_run, CampaignConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn suite_has_the_papers_eleven_benchmarks() {
        let names: Vec<&str> = suite().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "xsbench",
                "hpccg",
                "fft",
                "knn",
                "pathfinder",
                "backprop",
                "bfs",
                "particlefilter",
                "kmeans",
                "lu",
                "needle"
            ]
        );
    }

    #[test]
    fn every_benchmark_compiles_and_verifies() {
        for b in suite() {
            let m = b.compile();
            assert!(m.num_insts() > 30, "{} is too trivial", b.name);
        }
    }

    #[test]
    fn every_reference_input_runs_cleanly() {
        let cfg = CampaignConfig::quick(1);
        for b in suite() {
            let m = b.compile();
            let input = b.model.materialize(&b.model.reference());
            let g = golden_run(&m, &input, &cfg)
                .unwrap_or_else(|t| panic!("{} reference input failed: {t:?}", b.name));
            assert!(
                g.steps > 3_000,
                "{}: reference run too small ({} steps)",
                b.name,
                g.steps
            );
            assert!(
                g.steps < 3_000_000,
                "{}: reference run too big for FI experiments ({} steps)",
                b.name,
                g.steps
            );
            assert!(!g.output.is_empty(), "{}: no output produced", b.name);
        }
    }

    #[test]
    fn random_inputs_are_mostly_valid_and_vary_execution() {
        let cfg = CampaignConfig::quick(2);
        for b in suite() {
            let m = b.compile();
            let mut rng = StdRng::seed_from_u64(7);
            let mut ok = 0;
            let mut lists = std::collections::HashSet::new();
            for _ in 0..8 {
                let params = b.model.random(&mut rng);
                let input = b.model.materialize(&params);
                if let Ok(g) = golden_run(&m, &input, &cfg) {
                    ok += 1;
                    lists.insert(g.profile.indexed_cfg_list());
                }
            }
            assert!(
                ok >= 6,
                "{}: too many invalid random inputs ({ok}/8)",
                b.name
            );
            assert!(
                lists.len() >= 2,
                "{}: random inputs do not vary the execution shape",
                b.name
            );
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("FFT").is_some());
        assert!(by_name("kmeans").is_some());
        assert!(by_name("nope").is_none());
    }
}
