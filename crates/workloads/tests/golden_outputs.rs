//! Golden-output regression fixtures: each benchmark's reference-input
//! output stream is locked by an FNV-1a hash. Any change to a kernel, a
//! generator, the front end, or the interpreter that alters observable
//! behaviour trips these — deliberate changes update the constants.

use minpsid_interp::{ExecConfig, Interp, OutputItem};

/// FNV-1a over the output stream's bit patterns.
fn output_hash(items: &[OutputItem]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for item in items {
        match item {
            OutputItem::I(v) => {
                eat(b"i");
                eat(&v.to_le_bytes());
            }
            OutputItem::F(v) => {
                eat(b"f");
                eat(&v.to_bits().to_le_bytes());
            }
        }
    }
    h
}

/// `(benchmark, reference-output FNV-1a, output length)` — regenerate with
/// the ignored `print_golden_hashes` test below.
const GOLDEN: &[(&str, u64, usize)] = &[
    ("xsbench", 0x79208f5a7edfc6fe, 2),
    ("hpccg", 0x005e14318fe903be, 161),
    ("fft", 0xb1fe13cb8640a753, 128),
    ("knn", 0x9fa0ac4ca7fc9112, 8),
    ("pathfinder", 0x4293d2202443de26, 41),
    ("backprop", 0x2ebd3c042603d595, 3),
    ("bfs", 0x4fee091ad4b49bc8, 203),
    ("particlefilter", 0x7ab36af244f52f4e, 8),
    ("kmeans", 0x7d3f4b9a7c610532, 8),
    ("lu", 0xc8846a87dcdd206e, 17),
    ("needle", 0xe49ed370615b677d, 34),
];

#[test]
fn reference_outputs_match_locked_hashes() {
    for &(name, expected_hash, expected_len) in GOLDEN {
        let b = minpsid_workloads::by_name(name).unwrap();
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert!(r.exited(), "{name}: {:?}", r.termination);
        assert_eq!(r.output.len(), expected_len, "{name}: output length");
        assert_eq!(
            output_hash(&r.output.items),
            expected_hash,
            "{name}: golden output changed — update GOLDEN if intentional"
        );
    }
}

#[test]
fn golden_table_covers_the_whole_suite() {
    let suite: Vec<&str> = minpsid_workloads::suite().iter().map(|b| b.name).collect();
    let locked: Vec<&str> = GOLDEN.iter().map(|(n, _, _)| *n).collect();
    assert_eq!(suite, locked, "GOLDEN must track the suite");
}

/// `cargo test -p minpsid-workloads --test golden_outputs -- --ignored --nocapture`
#[test]
#[ignore = "generator for the GOLDEN table"]
fn print_golden_hashes() {
    for b in minpsid_workloads::suite() {
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        println!(
            "    (\"{}\", {:#018x}, {}),",
            b.name,
            output_hash(&r.output.items),
            r.output.len()
        );
    }
}
