//! Golden-output regression fixtures: each benchmark's reference-input
//! output stream is locked by an FNV-1a hash. Any change to a kernel, a
//! generator, the front end, or the interpreter that alters observable
//! behaviour trips these — deliberate changes update the constants.

use minpsid_interp::{ExecConfig, Interp, OutputItem};

/// FNV-1a over the output stream's bit patterns.
fn output_hash(items: &[OutputItem]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for item in items {
        match item {
            OutputItem::I(v) => {
                eat(b"i");
                eat(&v.to_le_bytes());
            }
            OutputItem::F(v) => {
                eat(b"f");
                eat(&v.to_bits().to_le_bytes());
            }
        }
    }
    h
}

/// `(benchmark, reference-output FNV-1a, output length)` — regenerate with
/// the ignored `print_golden_hashes` test below.
const GOLDEN: &[(&str, u64, usize)] = &[
    ("xsbench", 0xcb7b3be7ce72c568, 2),
    ("hpccg", 0xe80dfa4f9d268bc4, 161),
    ("fft", 0x00d03f2a73c8d6db, 128),
    ("knn", 0xee1753b132fcee3e, 8),
    ("pathfinder", 0x7a5751559140f0a1, 41),
    ("backprop", 0xfc7d8d6eeb17aaae, 3),
    ("bfs", 0xf196f242f98a7066, 203),
    ("particlefilter", 0x5b71e8f6b81f9fec, 8),
    ("kmeans", 0x15a1a0e31ce86b56, 8),
    ("lu", 0x6aacda1c2f682e73, 17),
    ("needle", 0x280b8b8dfa4a42b7, 34),
];

#[test]
fn reference_outputs_match_locked_hashes() {
    for &(name, expected_hash, expected_len) in GOLDEN {
        let b = minpsid_workloads::by_name(name).unwrap();
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        assert!(r.exited(), "{name}: {:?}", r.termination);
        assert_eq!(r.output.len(), expected_len, "{name}: output length");
        assert_eq!(
            output_hash(&r.output.items),
            expected_hash,
            "{name}: golden output changed — update GOLDEN if intentional"
        );
    }
}

#[test]
fn golden_table_covers_the_whole_suite() {
    let suite: Vec<&str> = minpsid_workloads::suite().iter().map(|b| b.name).collect();
    let locked: Vec<&str> = GOLDEN.iter().map(|(n, _, _)| *n).collect();
    assert_eq!(suite, locked, "GOLDEN must track the suite");
}

/// `cargo test -p minpsid-workloads --test golden_outputs -- --ignored --nocapture`
#[test]
#[ignore = "generator for the GOLDEN table"]
fn print_golden_hashes() {
    for b in minpsid_workloads::suite() {
        let m = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let r = Interp::new(&m, ExecConfig::default()).run(&input);
        println!(
            "    (\"{}\", {:#018x}, {}),",
            b.name,
            output_hash(&r.output.items),
            r.output.len()
        );
    }
}
