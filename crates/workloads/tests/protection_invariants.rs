//! Suite-wide protection invariants, exercised per benchmark:
//! monotonicity of the knapsack in the protection level, coverage of the
//! duplicated set, and stability of the reference profile.

use minpsid_faultsim::{golden_run, per_instruction_campaign, CampaignConfig};
use minpsid_sid::knapsack::selection_weight;
use minpsid_sid::{duplicable, select_and_protect, CostBenefit};
use minpsid_workloads::suite;

fn quick_campaign() -> CampaignConfig {
    CampaignConfig {
        injections: 40,
        per_inst_injections: 4,
        seed: 9,
        ..CampaignConfig::default()
    }
}

fn profile(b: &minpsid_workloads::Benchmark) -> (minpsid_ir::Module, CostBenefit) {
    let m = b.compile();
    let input = b.model.materialize(&b.model.reference());
    let cfg = quick_campaign();
    let golden = golden_run(&m, &input, &cfg).unwrap();
    let per_inst = per_instruction_campaign(&m, &input, &golden, &cfg);
    let cb = CostBenefit::build(&m, &golden, &per_inst);
    (m, cb)
}

#[test]
fn selection_grows_with_protection_level() {
    for b in suite() {
        let (m, cb) = profile(&b);
        let mut prev_value = -1.0;
        let mut prev_weight = 0u64;
        for level in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let (selection, expected, _, _) = select_and_protect(&m, &cb, level, false);
            let weight = selection_weight(&cb.cost, &selection);
            assert!(
                weight <= cb.capacity(level),
                "{}: budget exceeded at {level}",
                b.name
            );
            assert!(
                expected >= prev_value - 1e-9,
                "{}: expected coverage must be monotone in the level",
                b.name
            );
            assert!(
                weight >= prev_weight,
                "{}: selected weight must be monotone in the level",
                b.name
            );
            prev_value = expected;
            prev_weight = weight;
        }
    }
}

#[test]
fn every_selected_instruction_is_duplicable_and_beneficial() {
    for b in suite() {
        let (m, cb) = profile(&b);
        let (selection, _, _, meta) = select_and_protect(&m, &cb, 0.5, false);
        let insts: Vec<_> = m.iter_insts().collect();
        let mut selected_count = 0;
        for (dense, sel) in selection.iter().enumerate() {
            if !*sel {
                continue;
            }
            selected_count += 1;
            let (_, inst) = insts[dense];
            assert!(duplicable(inst), "{}: selected non-duplicable", b.name);
            assert!(
                cb.benefit[dense] > 0.0,
                "{}: selected zero-benefit instruction",
                b.name
            );
        }
        assert_eq!(
            meta.num_dups, selected_count,
            "{}: every selected instruction gets exactly one duplicate",
            b.name
        );
    }
}

#[test]
fn full_protection_covers_all_measured_benefit_of_duplicable_insts() {
    for b in suite() {
        let (m, cb) = profile(&b);
        let (selection, expected, _, _) = select_and_protect(&m, &cb, 1.0, false);
        // at level 1.0 the capacity is the whole program: every duplicable
        // instruction with positive benefit is selected
        for (dense, (_, inst)) in m.iter_insts().enumerate() {
            if duplicable(inst) && cb.benefit[dense] > 0.0 {
                assert!(
                    selection[dense],
                    "{}: inst {dense} left out at 100%",
                    b.name
                );
            }
        }
        // expected coverage equals the duplicable share of total benefit
        let dup_benefit: f64 = m
            .iter_insts()
            .enumerate()
            .filter(|(_, (_, inst))| duplicable(inst))
            .map(|(dense, _)| cb.benefit[dense])
            .sum();
        let total = cb.total_benefit();
        if total > 0.0 {
            assert!((expected - dup_benefit / total).abs() < 1e-9, "{}", b.name);
        }
    }
}
