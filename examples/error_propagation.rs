//! Watch a single bit flip propagate through a dataflow — the analysis
//! behind the paper's §IV root-cause study, made interactive.
//!
//! Sweeps injection sites across a reduction kernel and shows how the
//! corruption footprint differs between a fault that lands in the final
//! output path (small footprint, guaranteed SDC) and one that lands in
//! the accumulator early (everything downstream corrupted). Then runs a
//! whole-program campaign over the same kernel through the
//! `CampaignEngine` to put the hand-picked sweep next to the aggregate
//! SDC probability a real campaign measures.
//!
//! ```text
//! cargo run --release --example error_propagation
//! ```

use minpsid_repro::faultsim::{
    golden_run, trace_fault, CampaignConfigBuilder, CampaignEngine, Outcome,
};
use minpsid_repro::interp::{ExecConfig, FaultSpec, FaultTarget, Interp, ProgInput, Scalar};

fn main() {
    let source = r#"
        fn main() {
            let n = arg_i(0);
            let acc = 0;
            for i = 0 to n {
                let sq = i * i;
                acc = acc + sq;
            }
            out_i(acc);
            out_i(n);
        }
    "#;
    let module = minpsid_repro::minic::compile(source, "propagation").unwrap();
    let input = ProgInput::scalars(vec![Scalar::I(64)]);
    let golden = Interp::new(&module, ExecConfig::default()).run(&input);
    assert!(golden.exited());

    println!(
        "{:>6} {:>4} | {:>9} | {:>11} {:>12} {:>9}",
        "nth", "bit", "outcome", "divergence", "corrupted", "density"
    );
    let mut masked = 0;
    let mut sdc = 0;
    for nth in (0..400).step_by(37) {
        for bit in [1u32, 30, 62] {
            let fault = FaultSpec {
                target: FaultTarget::NthDynamic(nth),
                bit,
            };
            let r = trace_fault(&module, &input, fault, &golden.output, golden.steps * 10);
            match r.outcome {
                Outcome::Benign => masked += 1,
                Outcome::Sdc => sdc += 1,
                _ => {}
            }
            println!(
                "{:>6} {:>4} | {:>9} | {:>11} {:>12} {:>8.2}%",
                nth,
                bit,
                format!("{:?}", r.outcome),
                r.first_divergence
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "-".into()),
                r.corrupted_writes,
                r.corruption_density() * 100.0
            );
        }
    }
    println!("\n{masked} masked, {sdc} SDCs out of {} faults", 11 * 3);
    println!("(a fault's footprint = every register write that differs from the golden run)");

    // The same kernel under a uniform whole-program campaign: the
    // hand-picked sweep above explains *why* individual faults corrupt;
    // the engine measures *how often* a random one does.
    let cfg = CampaignConfigBuilder::new(5)
        .injections(400)
        .expect("positive campaign size")
        .build();
    let g = golden_run(&module, &input, &cfg).expect("golden run");
    let c = CampaignEngine::new(&module, &input, &g, &cfg)
        .run_program()
        .expect("plain campaigns are interrupt-free");
    println!(
        "\nuniform campaign ({} injections): SDC probability {:.1}% (95% CI {:.1}%..{:.1}%)",
        c.counts.total(),
        c.sdc_prob() * 100.0,
        c.sdc_ci.lo * 100.0,
        c.sdc_ci.hi * 100.0
    );
}
