//! Watch a single bit flip propagate through a dataflow — the analysis
//! behind the paper's §IV root-cause study, made interactive.
//!
//! Sweeps injection sites across a reduction kernel and shows how the
//! corruption footprint differs between a fault that lands in the final
//! output path (small footprint, guaranteed SDC) and one that lands in
//! the accumulator early (everything downstream corrupted).
//!
//! ```text
//! cargo run --release --example error_propagation
//! ```

use minpsid_repro::faultsim::{trace_fault, Outcome};
use minpsid_repro::interp::{ExecConfig, FaultSpec, FaultTarget, Interp, ProgInput, Scalar};

fn main() {
    let source = r#"
        fn main() {
            let n = arg_i(0);
            let acc = 0;
            for i = 0 to n {
                let sq = i * i;
                acc = acc + sq;
            }
            out_i(acc);
            out_i(n);
        }
    "#;
    let module = minpsid_repro::minic::compile(source, "propagation").unwrap();
    let input = ProgInput::scalars(vec![Scalar::I(64)]);
    let golden = Interp::new(&module, ExecConfig::default()).run(&input);
    assert!(golden.exited());

    println!(
        "{:>6} {:>4} | {:>9} | {:>11} {:>12} {:>9}",
        "nth", "bit", "outcome", "divergence", "corrupted", "density"
    );
    let mut masked = 0;
    let mut sdc = 0;
    for nth in (0..400).step_by(37) {
        for bit in [1u32, 30, 62] {
            let fault = FaultSpec {
                target: FaultTarget::NthDynamic(nth),
                bit,
            };
            let r = trace_fault(&module, &input, fault, &golden.output, golden.steps * 10);
            match r.outcome {
                Outcome::Benign => masked += 1,
                Outcome::Sdc => sdc += 1,
                _ => {}
            }
            println!(
                "{:>6} {:>4} | {:>9} | {:>11} {:>12} {:>8.2}%",
                nth,
                bit,
                format!("{:?}", r.outcome),
                r.first_divergence
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "-".into()),
                r.corrupted_writes,
                r.corruption_density() * 100.0
            );
        }
    }
    println!("\n{masked} masked, {sdc} SDCs out of {} faults", 11 * 3);
    println!("(a fault's footprint = every register write that differs from the golden run)");
}
