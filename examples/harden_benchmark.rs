//! End-to-end hardening of a real workload: run baseline SID and MINPSID
//! on the Kmeans benchmark (the paper's most extreme coverage-loss case)
//! and compare their worst-case coverage over random inputs.
//!
//! ```text
//! cargo run --release --example harden_benchmark [bench-name]
//! ```

use minpsid_repro::faultsim::CampaignConfigBuilder;
use minpsid_repro::minpsid::{
    run_baseline_sid, run_minpsid, GaConfig, MinpsidConfig, SearchStrategy,
};
use minpsid_repro::sid::measure_coverage;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "kmeans".into());
    let bench = minpsid_repro::workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    let module = bench.compile();
    println!(
        "hardening `{}` ({} static instructions)",
        bench.name,
        module.num_insts()
    );

    let cfg = MinpsidConfig {
        protection_level: 0.5,
        campaign: CampaignConfigBuilder::new(5)
            .injections(300)
            .and_then(|b| b.per_inst_injections(15))
            .expect("positive campaign sizes")
            .build(),
        ga: GaConfig {
            population: 8,
            max_generations: 5,
            seed: 17,
            ..GaConfig::default()
        },
        max_inputs: 8,
        stagnation_patience: 2,
        strategy: SearchStrategy::Genetic,
        use_dp: false,
        ..MinpsidConfig::default()
    };

    println!("running baseline SID (reference input only) ...");
    let baseline = run_baseline_sid(&module, bench.model.as_ref(), &cfg).unwrap();
    println!(
        "  expected coverage {:.1}%, {} duplicates",
        baseline.expected_coverage * 100.0,
        baseline.meta.num_dups
    );

    println!("running MINPSID (GA input search + re-prioritization) ...");
    let hardened = run_minpsid(&module, bench.model.as_ref(), &cfg).unwrap();
    println!(
        "  searched {} inputs, found {} incubative instructions, expected coverage {:.1}%",
        hardened.inputs_searched,
        hardened.incubative.len(),
        hardened.expected_coverage * 100.0
    );

    println!("\nevaluating both over 8 random inputs:");
    println!("{:>4} {:>14} {:>14}", "#", "baseline cov", "minpsid cov");
    let mut rng = StdRng::seed_from_u64(99);
    let mut base_min = f64::INFINITY;
    let mut hard_min = f64::INFINITY;
    let mut shown = 0;
    while shown < 8 {
        let params = bench.model.random(&mut rng);
        let input = bench.model.materialize(&params);
        let Ok(b) = measure_coverage(&module, &baseline.protected, &input, &cfg.campaign) else {
            continue;
        };
        let h = measure_coverage(&module, &hardened.protected, &input, &cfg.campaign).unwrap();
        shown += 1;
        println!(
            "{:>4} {:>13.1}% {:>13.1}%",
            shown,
            b.coverage * 100.0,
            h.coverage * 100.0
        );
        base_min = base_min.min(b.coverage);
        hard_min = hard_min.min(h.coverage);
    }
    println!(
        "\nworst case: baseline {:.1}% vs MINPSID {:.1}%",
        base_min * 100.0,
        hard_min * 100.0
    );
}
