//! The paper's Fig. 3, live: an `icmp` whose SDC probability is ~0 under
//! one input and large under another — an *incubative instruction*.
//!
//! The kernel compares a data-derived value against 50, exactly like the
//! paper's `%11 > 50`. Under the reference input the value is a small
//! *negative* number: flipping any single bit of a negative two's-
//! complement word keeps it negative except the sign bit, so the branch
//! almost never inverts and faults on the operand mask (paper: "it is
//! difficult for a bit-flip to modify it to a positive value greater
//! than 50"). Under the second input the value is a small positive number
//! below 50, where every high-bit flip pushes it across the threshold →
//! SDC. The operand-producing instruction is incubative.
//!
//! ```text
//! cargo run --release --example incubative_instruction
//! ```

use minpsid_repro::faultsim::{golden_run, per_instruction_campaign, CampaignConfig};
use minpsid_repro::interp::{ProgInput, Stream};
use minpsid_repro::ir::printer::print_inst;
use minpsid_repro::ir::InstKind;
use minpsid_repro::minpsid::{incubative_between, IncubativeConfig};
use minpsid_repro::sid::CostBenefit;

fn main() {
    let source = r#"
        fn main() {
            let n = data_len(0);
            let acc = 0;
            for i = 0 to n {
                let v = data_i(0, i);
                if v > 50 {
                    acc = acc + v * 3;
                } else {
                    acc = acc + 1;
                }
            }
            out_i(acc);
        }
    "#;
    let module = minpsid_repro::minic::compile(source, "fig3").expect("compiles");

    // reference input: small negative values — only a sign-bit flip can
    // cross the `> 50` threshold (1 of 64 bits)
    let ref_input = ProgInput::new(
        vec![],
        vec![Stream::I((0..64).map(|i| -30 + i % 10).collect())],
    );
    // a different input: small positive values just below 50 — nearly any
    // high-bit flip crosses the threshold
    let other_input = ProgInput::new(
        vec![],
        vec![Stream::I((0..64).map(|i| 40 + i % 10).collect())],
    );

    let campaign = CampaignConfig {
        per_inst_injections: 200,
        seed: 3,
        ..CampaignConfig::default()
    };

    let profile = |input: &ProgInput| {
        let golden = golden_run(&module, input, &campaign).unwrap();
        let per_inst = per_instruction_campaign(&module, input, &golden, &campaign);
        CostBenefit::build(&module, &golden, &per_inst)
    };
    let ref_cb = profile(&ref_input);
    let oth_cb = profile(&other_input);

    // locate the threshold comparison in the IR
    let numbering = module.numbering();
    println!("per-instruction SDC probability (reference vs other input):\n");
    println!("{:>6} {:>9} {:>9}   instruction", "inst", "ref", "other");
    for (gid, inst) in module.iter_insts() {
        let dense = numbering.index(gid);
        let is_cmp = matches!(inst.kind, InstKind::Cmp { .. });
        let marker = if is_cmp { "  <-- icmp" } else { "" };
        if ref_cb.sdc_prob[dense] > 0.0 || oth_cb.sdc_prob[dense] > 0.0 || is_cmp {
            println!(
                "{:>6} {:>8.1}% {:>8.1}%   {}{}",
                dense,
                ref_cb.sdc_prob[dense] * 100.0,
                oth_cb.sdc_prob[dense] * 100.0,
                print_inst(module.func(gid.func), gid.inst),
                marker
            );
        }
    }

    let incubative = incubative_between(
        &ref_cb.benefit,
        &oth_cb.benefit,
        &IncubativeConfig::default(),
    );
    println!("\nincubative instructions (benefit ~0 under ref, material under other):");
    for dense in &incubative {
        let gid = numbering.id_of(*dense);
        println!(
            "  #{dense}: {}",
            print_inst(module.func(gid.func), gid.inst)
        );
    }
    assert!(
        !incubative.is_empty(),
        "the threshold kernel must expose incubative instructions"
    );
}
