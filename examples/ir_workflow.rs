//! File-based IR workflow: compile a benchmark to the textual IR format,
//! write it to disk, load it back, optimize, protect, and run — the
//! `llvm-dis`-style loop the CLI exposes as `minpsid compile/run`.
//!
//! ```text
//! cargo run --release --example ir_workflow
//! ```

use minpsid_repro::interp::{ExecConfig, Interp};
use minpsid_repro::ir::parser::parse_module;
use minpsid_repro::ir::printer::print_module;
use minpsid_repro::ir::{opt, verify_module};
use minpsid_repro::sid::duplicate_module;

fn main() {
    let bench = minpsid_repro::workloads::by_name("needle").unwrap();
    let module = bench.compile();
    let input = bench.model.materialize(&bench.model.reference());

    // 1. serialize to the textual IR format
    let text = print_module(&module);
    let path = std::env::temp_dir().join("needle.ir");
    std::fs::write(&path, &text).expect("write IR");
    println!(
        "wrote {} ({} bytes, {} instructions)",
        path.display(),
        text.len(),
        module.num_insts()
    );

    // 2. load it back and verify
    let loaded = parse_module(&std::fs::read_to_string(&path).unwrap()).expect("parse IR");
    verify_module(&loaded).expect("verifies");

    // 3. optimize
    let mut optimized = loaded.clone();
    let removed = opt::optimize(&mut optimized);
    println!(
        "optimizer removed {removed} instructions ({} left)",
        optimized.num_insts()
    );

    // 4. protect (full duplication here, for brevity)
    let all = vec![true; optimized.num_insts()];
    let (protected, meta) = duplicate_module(&optimized, &all);
    println!(
        "protected: +{} duplicates, +{} checks",
        meta.num_dups, meta.num_checks
    );

    // 5. all four variants agree on the output
    let run = |m| Interp::new(m, ExecConfig::default()).run(&input);
    let outputs = [
        run(&module).output,
        run(&loaded).output,
        run(&optimized).output,
        run(&protected).output,
    ];
    assert!(outputs.windows(2).all(|w| w[0] == w[1]));
    println!(
        "all four variants agree; alignment score = {}",
        outputs[0].items[0]
    );
    let _ = std::fs::remove_file(&path);
}
