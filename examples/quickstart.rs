//! Quickstart: compile a program, inject faults, protect it with SID,
//! and watch the protection detect what used to be silent corruption.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use minpsid_repro::faultsim::{golden_run, program_campaign, CampaignConfig};
use minpsid_repro::interp::{ExecConfig, Interp, ProgInput, Scalar};
use minpsid_repro::sid::{run_sid, SidConfig};

fn main() {
    // 1. A small HPC-ish kernel in minic: dot product with a reduction.
    let source = r#"
        fn main() {
            let n = arg_i(0);
            let acc = 0.0;
            for i = 0 to n {
                let x = float(i) * 0.5;
                let y = float(n - i);
                acc = acc + x * y;
            }
            out_f(acc);
        }
    "#;
    let module = minpsid_repro::minic::compile(source, "quickstart").expect("compiles");
    println!(
        "compiled `quickstart`: {} static instructions",
        module.num_insts()
    );

    // 2. Run it.
    let input = ProgInput::scalars(vec![Scalar::I(500)]);
    let result = Interp::new(&module, ExecConfig::default()).run(&input);
    println!(
        "golden output: {} ({} dynamic instructions)",
        result.output.items[0], result.steps
    );

    // 3. Fault-injection campaign on the unprotected program.
    let campaign = CampaignConfig {
        injections: 500,
        seed: 1,
        ..CampaignConfig::default()
    };
    let golden = golden_run(&module, &input, &campaign).unwrap();
    let unprotected = program_campaign(&module, &input, &golden, &campaign);
    println!(
        "unprotected: {} SDCs / {} injections (P_sdc = {:.1}%)",
        unprotected.counts.sdc,
        unprotected.counts.total(),
        unprotected.sdc_prob() * 100.0
    );

    // 4. Protect with baseline SID at a 50% budget and re-measure.
    let sid = run_sid(
        &module,
        &input,
        &SidConfig {
            protection_level: 0.5,
            campaign: campaign.clone(),
            use_dp: false,
        },
    )
    .unwrap();
    println!(
        "SID selected {} instructions ({} duplicates, {} checks), expected coverage {:.1}%",
        sid.selection.iter().filter(|&&s| s).count(),
        sid.meta.num_dups,
        sid.meta.num_checks,
        sid.expected_coverage * 100.0
    );

    let golden_p = golden_run(&sid.protected, &input, &campaign).unwrap();
    assert_eq!(
        golden.output, golden_p.output,
        "protection preserves semantics"
    );
    let protected = program_campaign(&sid.protected, &input, &golden_p, &campaign);
    println!(
        "protected:   {} SDCs, {} detected / {} injections (P_sdc = {:.1}%)",
        protected.counts.sdc,
        protected.counts.detected,
        protected.counts.total(),
        protected.sdc_prob() * 100.0
    );
    let coverage = 1.0 - protected.sdc_prob() / unprotected.sdc_prob().max(1e-12);
    println!(
        "measured SDC coverage on this input: {:.1}%",
        coverage * 100.0
    );
}
