//! The paper's Fig. 5, live: constructing the *indexed weighted-CFG list*
//! for a Pathfinder fragment under two inputs, and the Eq. 3 fitness score
//! that drives the GA input search.
//!
//! ```text
//! cargo run --release --example weighted_cfg
//! ```

use minpsid_repro::faultsim::CampaignConfig;
use minpsid_repro::interp::{ProgInput, Scalar, Stream};
use minpsid_repro::minpsid::{fitness_score, indexed_cfg_list, profile_input};

fn main() {
    // the Fig. 5 code shape: a guarded accumulation over a grid row
    let source = r#"
        fn main() {
            let cols = arg_i(0);
            let best = data_i(0, 0);
            for c = 1 to cols {
                let v = data_i(0, c);
                if v < best {
                    best = v;
                }
            }
            out_i(best);
        }
    "#;
    let module = minpsid_repro::minic::compile(source, "fig5").expect("compiles");

    // print the static CFG
    println!("static CFG (shared by all inputs):");
    for (fid, func) in module.iter_funcs() {
        let cfg = minpsid_repro::ir::Cfg::build(func);
        for (bid, block) in func.iter_blocks() {
            let succs: Vec<String> = cfg
                .succs(bid)
                .iter()
                .map(|s| format!("BB{}", s.0))
                .collect();
            println!(
                "  fn{} BB{} ({}) -> [{}]",
                fid.0,
                bid.0,
                block.name.as_deref().unwrap_or("?"),
                succs.join(", ")
            );
        }
    }

    let campaign = CampaignConfig::default();
    let run = |cols: i64, grid: Vec<i64>| {
        let input = ProgInput::new(vec![Scalar::I(cols)], vec![Stream::I(grid)]);
        profile_input(&module, &input, &campaign).unwrap()
    };

    // input A: short row, descending values (the `if` fires every time)
    let a = run(4, vec![9, 7, 5, 3]);
    // input B: long row, ascending values (the `if` never fires)
    let b = run(10, (1..=10).collect());

    let la = indexed_cfg_list(&a);
    let lb = indexed_cfg_list(&b);
    println!("\nindexed weighted-CFG lists (per-block dynamic entry counts):");
    println!("  input A (4 cols, descending): {la:?}");
    println!("  input B (10 cols, ascending): {lb:?}");

    let history = vec![la.clone()];
    println!(
        "\nfitness of B against history {{A}} (Eq. 3): {:.3}",
        fitness_score(&lb, &history)
    );
    println!(
        "fitness of A against history {{A}}:        {:.3}",
        fitness_score(&la, &history)
    );
    println!("\n(a higher score means a more novel execution shape — the GA keeps B)");
}
