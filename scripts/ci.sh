#!/usr/bin/env bash
# CI gate: formatting, lints, the full workspace test suite, and a smoke
# run of the headline experiment binary.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (workspace)"
cargo test -q --workspace --offline

echo "== fig2 smoke (--preset tiny)"
cargo run --release --offline -q -p minpsid-bench --bin fig2_baseline_loss -- \
  --preset tiny --bench pathfinder --seed 42 >/dev/null

echo "CI OK"
