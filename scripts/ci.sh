#!/usr/bin/env bash
# CI gate: formatting, lints, the full workspace test suite, and a smoke
# run of the headline experiment binary.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (workspace)"
cargo test -q --workspace --offline

echo "== fig2 smoke (--preset tiny)"
cargo run --release --offline -q -p minpsid-bench --bin fig2_baseline_loss -- \
  --preset tiny --bench pathfinder --seed 42 >/dev/null

echo "== trace smoke (fig2 --trace-out -> trace check / trace report)"
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
cargo run --release --offline -q -p minpsid-bench --bin fig2_baseline_loss -- \
  --preset tiny --bench pathfinder --seed 42 --trace-out "$TRACE_TMP/fig2.jsonl" >/dev/null
test -s "$TRACE_TMP/fig2.jsonl"
# strict schema validation: `trace check` re-parses every JSONL line and
# fails on the first malformed one
cargo run --release --offline -q -p minpsid-cli -- trace check "$TRACE_TMP/fig2.jsonl"
cargo run --release --offline -q -p minpsid-cli -- trace report "$TRACE_TMP/fig2.jsonl" \
  -o "$TRACE_TMP/report"
test -s "$TRACE_TMP/report/trace_report.md"
test -s "$TRACE_TMP/report/trace_report.html"

echo "== crash-recovery smoke (SIGKILL mid-campaign, resume, diff)"
CLI="target/release/minpsid"
cargo build --release --offline -q -p minpsid-cli
# stdout of the plain (non --json) report is fully deterministic: the
# --json variant embeds wall-clock timings, so it cannot be diffed
SMOKE_ARGS=(minpsid pathfinder --quick --seed 42 --level 0.5 --quiet)
# uninterrupted journaled reference run
"$CLI" "${SMOKE_ARGS[@]}" --journal "$TRACE_TMP/journal-ref" \
  > "$TRACE_TMP/uninterrupted.txt"
# start the same campaign fresh, SIGKILL it mid-flight, then resume; the
# resumed run must produce a byte-identical report
"$CLI" "${SMOKE_ARGS[@]}" --journal "$TRACE_TMP/journal-kill" \
  > /dev/null 2>&1 &
VICTIM=$!
sleep 0.4
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true
test -s "$TRACE_TMP/journal-kill/campaign.wal"
"$CLI" "${SMOKE_ARGS[@]}" --resume "$TRACE_TMP/journal-kill" \
  > "$TRACE_TMP/resumed.txt"
diff "$TRACE_TMP/uninterrupted.txt" "$TRACE_TMP/resumed.txt"

echo "== chaos smoke (worker panics degrade to engine errors)"
# --max-retries 0: with the default retry budget the scheduler would heal
# these injected panics and no engine-err line would ever appear.
# Capture-then-grep, not a pipe: `grep -q` exits at the first match and
# the CLI's next line-buffered println would flakily panic on EPIPE.
CHAOS_OUT="$("$CLI" fi pathfinder --quick --seed 42 --chaos-panic-one-in 40 \
  --max-retries 0 --quiet 2>/dev/null)"
grep -q "engine-err" <<<"$CHAOS_OUT"

echo "== chaos matrix (panic x timeout x deadline: always exit 0 + valid report)"
# every cell must terminate cleanly and print a completeness score; the
# deadline rows additionally exercise graceful truncation
for CHAOS in "--chaos-panic-one-in 50" "--chaos-timeout-one-in 50" \
             "--chaos-panic-one-in 50 --chaos-timeout-one-in 50"; do
  for DEADLINE in "" "--deadline-secs 120"; do
    # shellcheck disable=SC2086
    OUT="$("$CLI" fi pathfinder --quick --seed 42 $CHAOS $DEADLINE --quiet 2>/dev/null)"
    echo "$OUT" | grep -q "^completeness:" \
      || { echo "chaos cell [$CHAOS $DEADLINE] lost its completeness line"; exit 1; }
    echo "$OUT" | grep -q "^SDC probability.*CI" \
      || { echo "chaos cell [$CHAOS $DEADLINE] lost its CI annotation"; exit 1; }
  done
done
# an already-expired deadline still exits 0 with an honest (<1) score
EXPIRED_OUT="$("$CLI" fi pathfinder --quick --seed 42 --chaos-panic-one-in 50 \
  --chaos-timeout-one-in 50 --deadline-secs 0 --quiet 2>/dev/null)"
grep -q "^completeness: 0.0000" <<<"$EXPIRED_OUT"

echo "== quarantine-cap smoke (quarantined sites never exceed the cap)"
# timeouts on every injection + no retries: every site wants quarantine,
# so the report's quarantined count must equal the configured cap
QUARANTINED="$("$CLI" analyze pathfinder --quick --seed 42 --chaos-timeout-one-in 1 \
  --max-retries 0 --quarantine-after 1 --quarantine-cap 5 --quiet 2>/dev/null \
  | awk '/^quarantined sites:/ {print $3}')"
test "$QUARANTINED" = "5" \
  || { echo "quarantine cap violated: got $QUARANTINED quarantined sites, cap 5"; exit 1; }

echo "== engine-equivalence smoke (hpccg: two compositions x two thread counts)"
# every CampaignEngine composition must report identical bytes at any
# thread count: plain+scheduler (fi) and the journaled pipeline
# (minpsid --journal), each at 1 and 4 worker threads
EQ_ARGS=(hpccg --quick --seed 42 --injections 60 --per-inst 4 --quiet)
"$CLI" fi "${EQ_ARGS[@]}" --threads 1 > "$TRACE_TMP/eq-fi-t1.txt" 2>/dev/null
"$CLI" fi "${EQ_ARGS[@]}" --threads 4 > "$TRACE_TMP/eq-fi-t4.txt" 2>/dev/null
diff "$TRACE_TMP/eq-fi-t1.txt" "$TRACE_TMP/eq-fi-t4.txt"
"$CLI" minpsid "${EQ_ARGS[@]}" --level 0.5 --threads 1 \
  --journal "$TRACE_TMP/eq-journal-t1" > "$TRACE_TMP/eq-mp-t1.txt" 2>/dev/null
"$CLI" minpsid "${EQ_ARGS[@]}" --level 0.5 --threads 4 \
  --journal "$TRACE_TMP/eq-journal-t4" > "$TRACE_TMP/eq-mp-t4.txt" 2>/dev/null
diff "$TRACE_TMP/eq-mp-t1.txt" "$TRACE_TMP/eq-mp-t4.txt"

echo "== fleet-identity smoke (--workers vs --threads: reports + WAL byte-identical)"
FLEET_ARGS=(fi fft --injections 300 --seed 42)
"$CLI" "${FLEET_ARGS[@]}" --threads 4 --journal "$TRACE_TMP/fleet-j-threads" \
  > "$TRACE_TMP/fleet-threads.txt" 2>/dev/null
"$CLI" "${FLEET_ARGS[@]}" --workers 4 --journal "$TRACE_TMP/fleet-j-workers" \
  > "$TRACE_TMP/fleet-workers.txt" 2>/dev/null
diff "$TRACE_TMP/fleet-threads.txt" "$TRACE_TMP/fleet-workers.txt"
cmp "$TRACE_TMP/fleet-j-threads/campaign.wal" "$TRACE_TMP/fleet-j-workers/campaign.wal"

echo "== fleet chaos matrix (kill-worker x poison-shard x SIGTERM-resume)"
# cell 1: random SIGKILLs every 20ms must not change a report or WAL byte
"$CLI" "${FLEET_ARGS[@]}" --workers 4 --chaos-kill-worker-ms 20 \
  --journal "$TRACE_TMP/fleet-j-chaos" > "$TRACE_TMP/fleet-chaos.txt" 2>/dev/null
diff "$TRACE_TMP/fleet-threads.txt" "$TRACE_TMP/fleet-chaos.txt"
cmp "$TRACE_TMP/fleet-j-threads/campaign.wal" "$TRACE_TMP/fleet-j-chaos/campaign.wal"
# cell 2: a shard that aborts its worker on every attempt is quarantined
# as poisoned; the campaign exits 0 with an honest (<1) completeness
POISON_OUT="$("$CLI" fi fft --quick --seed 42 --workers 2 \
  --chaos-poison-unit 5 --poison-after 2 2>/dev/null)"
echo "$POISON_OUT" | grep -q "quarantined:" \
  || { echo "poisoned shard not surfaced in the report"; exit 1; }
echo "$POISON_OUT" | grep -q "^completeness: 0\." \
  || { echo "poisoned shard not reflected in completeness"; exit 1; }
# cell 3: SIGTERM a parked fleet run, then resume to an identical report
"$CLI" fi fft --quick --seed 42 --threads 2 > "$TRACE_TMP/fleet-ref.txt" 2>/dev/null
"$CLI" fi fft --quick --seed 42 --workers 2 --chaos-hang-unit 2 \
  --fleet-lease-ms 3600000 --journal "$TRACE_TMP/fleet-j-term" \
  > /dev/null 2>&1 &
FLEET_VICTIM=$!
sleep 1.5
kill -TERM "$FLEET_VICTIM" 2>/dev/null || true
wait "$FLEET_VICTIM" 2>/dev/null || true
test -s "$TRACE_TMP/fleet-j-term/campaign.wal"
"$CLI" fi fft --quick --seed 42 --workers 2 --resume "$TRACE_TMP/fleet-j-term" \
  > "$TRACE_TMP/fleet-resumed.txt" 2>/dev/null
diff "$TRACE_TMP/fleet-ref.txt" "$TRACE_TMP/fleet-resumed.txt"

echo "== store smoke (scrub exit codes, corruption heals, cross-invocation cache hits)"
# first store-backed run populates the store; scrub verifies clean (exit 0)
STORE_ARGS=(minpsid pathfinder --quick --seed 42 --level 0.5)
rm -rf "$TRACE_TMP/store"
"$CLI" "${STORE_ARGS[@]}" --quiet --store "$TRACE_TMP/store" > "$TRACE_TMP/store-run1.txt"
"$CLI" store scrub "$TRACE_TMP/store" >/dev/null
# cross-invocation golden-cache hit: the second run is served verified
# artifacts from disk (no recompute) and prints identical bytes
"$CLI" "${STORE_ARGS[@]}" --store "$TRACE_TMP/store" \
  > "$TRACE_TMP/store-run2.txt" 2> "$TRACE_TMP/store-run2-err.txt"
diff "$TRACE_TMP/store-run1.txt" "$TRACE_TMP/store-run2.txt"
grep -Eq "golden cache +0 hits / [1-9][0-9]* disk hits / 0 misses" \
  "$TRACE_TMP/store-run2-err.txt" \
  || { echo "second run was not served from the store"; exit 1; }
# bit-rot one object: scrub must quarantine it and exit 3 (not 0, not 1)
OBJ="$(find "$TRACE_TMP/store/objects" -name '*.obj' | head -1)"
printf 'X' | dd of="$OBJ" bs=1 seek=3 conv=notrunc 2>/dev/null
set +e
"$CLI" store scrub "$TRACE_TMP/store" >/dev/null
SCRUB_EXIT=$?
set -e
test "$SCRUB_EXIT" = "3" \
  || { echo "scrub on a corrupt store exited $SCRUB_EXIT, want 3"; exit 1; }
# the next campaign recomputes the quarantined artifact: byte-identical
# report, and the store scrubs clean (exit 0) again
"$CLI" "${STORE_ARGS[@]}" --quiet --store "$TRACE_TMP/store" > "$TRACE_TMP/store-run3.txt"
diff "$TRACE_TMP/store-run1.txt" "$TRACE_TMP/store-run3.txt"
"$CLI" store scrub "$TRACE_TMP/store" >/dev/null
# chaos-flip across a journaled fleet run: segments rot between worker
# fsync and merge, shards re-execute, report + WAL stay byte-identical
"$CLI" "${FLEET_ARGS[@]}" --workers 2 --chaos-flip-artifact-one-in 2 \
  --journal "$TRACE_TMP/fleet-j-flip" > "$TRACE_TMP/fleet-flip.txt" 2>/dev/null
diff "$TRACE_TMP/fleet-threads.txt" "$TRACE_TMP/fleet-flip.txt"
cmp "$TRACE_TMP/fleet-j-threads/campaign.wal" "$TRACE_TMP/fleet-j-flip/campaign.wal"

echo "== incremental smoke (cold seal -> edit one fn -> O(diff) re-campaign)"
# compositional FI at the CLI: a cold store-backed campaign seals
# per-section outcome tables; editing one leaf function (same value,
# same instruction count, different fingerprint) and re-running against
# the same store re-executes only the edited section and its caller,
# yet prints the exact bytes a from-scratch campaign of the edited
# program prints
INCR_MC="$TRACE_TMP/incr.mc"
cat > "$INCR_MC" <<'MC'
fn heavy_a(n: int) -> int {
    let acc = 1;
    for i = 0 to n {
        let t = i * 3 + 7;
        let u = t * t - i * 2;
        let v = u + t - 5;
        acc = acc + v - u;
    }
    return acc;
}
fn heavy_b(n: int) -> int {
    let acc = 1;
    for i = 0 to n {
        let t = i * 5 + 7;
        let u = t * t - i * 2;
        let v = u + t - 5;
        acc = acc + v - u;
    }
    return acc;
}
fn tweak(x: int) -> int {
    return x * 2;
}
fn main() {
    let n = arg_i(0);
    let a = heavy_a(n);
    let b = heavy_b(n);
    out_i(tweak(a));
    out_i(tweak(b));
}
MC
INCR_ARGS=(fi "$INCR_MC" --args i:32 --injections 400 --seed 7)
rm -rf "$TRACE_TMP/incr-store"
"$CLI" "${INCR_ARGS[@]}" --store "$TRACE_TMP/incr-store" \
  > "$TRACE_TMP/incr-cold.txt" 2> "$TRACE_TMP/incr-cold-err.txt"
grep -Eq "[1-9][0-9]* tables sealed" "$TRACE_TMP/incr-cold-err.txt" \
  || { echo "cold run sealed no section tables"; exit 1; }
# edit one leaf function in place: x * 2 -> x + x computes the same
# value with the same instruction count, so every untouched section's
# sealed table stays valid while tweak's fingerprint (and its caller's)
# changes
sed -i 's/return x \* 2;/return x + x;/' "$INCR_MC"
grep -q "return x + x;" "$INCR_MC"
# from-scratch reference campaign of the edited program (no store)
"$CLI" "${INCR_ARGS[@]}" > "$TRACE_TMP/incr-scratch.txt" 2>/dev/null
# incremental re-campaign over the sealed store: composed report must
# diff clean against from-scratch
"$CLI" "${INCR_ARGS[@]}" --store "$TRACE_TMP/incr-store" \
  > "$TRACE_TMP/incr-warm.txt" 2> "$TRACE_TMP/incr-warm-err.txt"
diff "$TRACE_TMP/incr-scratch.txt" "$TRACE_TMP/incr-warm.txt"
# only the edited section (plus its caller) re-executed: >5x fewer
# injections than the cold campaign, the rest served from tables
COLD_EXEC="$(sed -n 's/.*tables, \([0-9]*\) executed.*/\1/p' "$TRACE_TMP/incr-cold-err.txt")"
INCR_EXEC="$(sed -n 's/.*tables, \([0-9]*\) executed.*/\1/p' "$TRACE_TMP/incr-warm-err.txt")"
INCR_SERVED="$(sed -n 's/.*; \([0-9]*\) injections served.*/\1/p' "$TRACE_TMP/incr-warm-err.txt")"
test -n "$COLD_EXEC" && test -n "$INCR_EXEC" && test -n "$INCR_SERVED" \
  || { echo "missing sections: diag line on a store-backed run"; exit 1; }
test "$INCR_SERVED" -gt 0 \
  || { echo "incremental re-campaign served nothing from tables"; exit 1; }
test $((INCR_EXEC * 5)) -lt "$COLD_EXEC" \
  || { echo "re-campaign not O(diff): executed $INCR_EXEC of $COLD_EXEC cold injections"; exit 1; }
# --no-incremental is the escape hatch: same store, no table layer
"$CLI" "${INCR_ARGS[@]}" --store "$TRACE_TMP/incr-store" --no-incremental \
  > /dev/null 2> "$TRACE_TMP/incr-off-err.txt"
if grep -q "sections:" "$TRACE_TMP/incr-off-err.txt"; then
  echo "--no-incremental still engaged the table layer"; exit 1
fi
echo "incremental smoke: cold $COLD_EXEC executed; edit re-ran $INCR_EXEC, served $INCR_SERVED"

echo "== incremental-speedup guard (one-function edit >= 1.5x in committed baseline)"
# the committed bench baseline carries the measured one-function-edit
# re-campaign speedup per workload. Skips gracefully when the baseline
# predates the incremental columns.
python3 - <<'EOF'
import json, sys
try:
    d = json.load(open("BENCH_fi_throughput.json"))
    rows = [r for r in d.get("workloads", []) if "incremental_speedup" in r]
except Exception:
    rows = []
if not rows:
    print("incremental guard: baseline lacks incremental_speedup, skipping")
    sys.exit(0)
bad = False
for r in rows:
    sp = r["incremental_speedup"]
    pct = r.get("sections_reused_pct", 0.0)
    print(f"incremental guard: {r['name']} edit {r.get('edited_fn', '?')}: "
          f"{sp:.2f}x speedup, {pct:.1f}% injections reused (floor 1.5x)")
    bad = bad or sp < 1.5
sys.exit(1 if bad else 0)
EOF

echo "== fleet-overhead guard (fleet_overhead_pct <= 5% in committed baseline)"
# process isolation buys crash containment; the committed bench baseline
# carries its measured cost. Skips gracefully when the baseline predates
# the fleet columns.
python3 - <<'EOF'
import json, sys
try:
    d = json.load(open("BENCH_fi_throughput.json"))
    rows = [r for r in d.get("workloads", []) if "fleet_overhead_pct" in r]
except Exception:
    rows = []
if not rows:
    print("fleet guard: baseline lacks fleet_overhead_pct, skipping")
    sys.exit(0)
bad = False
for r in rows:
    pct = r["fleet_overhead_pct"]
    print(f"fleet guard: {r['name']} overhead {pct:+.2f}% (budget 5%)")
    bad = bad or pct > 5.0
sys.exit(1 if bad else 0)
EOF

echo "== interpreter-equivalence smoke (legacy vs decoded dispatch, 11 kernels)"
# the pre-decoded hot loop and the legacy tree-walking loop must produce
# byte-identical campaign reports on every workload in the suite — any
# divergence in step counting, trap order or fault timing shows up here
for K in xsbench hpccg fft knn pathfinder backprop bfs particlefilter kmeans lu needle; do
  IEQ_ARGS=(fi "$K" --quick --seed 42 --injections 60 --per-inst 2 --quiet)
  "$CLI" "${IEQ_ARGS[@]}" --dispatch legacy  > "$TRACE_TMP/ieq-legacy.txt" 2>/dev/null
  "$CLI" "${IEQ_ARGS[@]}" --dispatch decoded > "$TRACE_TMP/ieq-decoded.txt" 2>/dev/null
  diff "$TRACE_TMP/ieq-legacy.txt" "$TRACE_TMP/ieq-decoded.txt" \
    || { echo "dispatch divergence on $K"; exit 1; }
done
# snapshot encodings must not change reports either
"$CLI" fi hpccg --quick --seed 42 --quiet --snapshot-mode full \
  > "$TRACE_TMP/snap-full.txt" 2>/dev/null
"$CLI" fi hpccg --quick --seed 42 --quiet --snapshot-mode delta \
  > "$TRACE_TMP/snap-delta.txt" 2>/dev/null
diff "$TRACE_TMP/snap-full.txt" "$TRACE_TMP/snap-delta.txt"

echo "== perf-regression guard (injections_per_sec vs committed baseline)"
# re-measure one workload's checkpointed campaign throughput and compare
# against the committed BENCH_fi_throughput.json; a >20% drop fails.
# Skips gracefully when the baseline predates the throughput columns.
BASE="$(python3 - <<'EOF'
import json
try:
    d = json.load(open("BENCH_fi_throughput.json"))
    w = [r for r in d.get("workloads", []) if r["name"] == "hpccg"]
    print(w[0]["injections_per_sec"] if w and "injections_per_sec" in w[0] else "")
except Exception:
    print("")
EOF
)"
if [ -n "$BASE" ]; then
  PERF_T0=$(date +%s.%N)
  "$CLI" fi hpccg --seed 42 --injections 2000 --quiet >/dev/null 2>&1
  PERF_T1=$(date +%s.%N)
  python3 - "$BASE" "$PERF_T0" "$PERF_T1" <<'EOF'
import sys
base, t0, t1 = float(sys.argv[1]), float(sys.argv[2]), float(sys.argv[3])
# the timed run includes the golden run + campaign; only guard against
# catastrophic slowdowns (>20% below the committed single-thread rate
# is scaled by a 4x grace factor for golden-run + process overhead)
rate = 2000 / (t1 - t0)
floor = base * 0.8 / 4.0
print(f"perf guard: measured {rate:.0f} inj/s end-to-end, floor {floor:.0f} inj/s")
sys.exit(0 if rate >= floor else 1)
EOF
else
  echo "perf guard: baseline lacks injections_per_sec, skipping"
fi

echo "== observability smoke (--status-addr live endpoints, reports + WAL unchanged)"
# reference: a journaled campaign with no observability at all
OBS_ARGS=(minpsid pathfinder --quick --seed 42 --level 0.5 --quiet)
"$CLI" "${OBS_ARGS[@]}" --journal "$TRACE_TMP/obs-journal-off" \
  > "$TRACE_TMP/obs-off.txt"
# the same campaign with the status server, metrics bridge, and
# interpreter profiler all attached; poll both endpoints mid-run
"$CLI" "${OBS_ARGS[@]}" --journal "$TRACE_TMP/obs-journal-on" \
  --status-addr 127.0.0.1:19464 --profile-interp \
  > "$TRACE_TMP/obs-on.txt" 2>/dev/null &
OBS_PID=$!
python3 - <<'EOF'
import json, time, urllib.request
deadline = time.time() + 30
metrics = status = None
while time.time() < deadline:
    try:
        metrics = urllib.request.urlopen(
            "http://127.0.0.1:19464/metrics", timeout=2).read().decode()
        status = json.loads(urllib.request.urlopen(
            "http://127.0.0.1:19464/status", timeout=2).read().decode())
        if "minpsid_build_info" in metrics and status.get("tool", "").startswith("minpsid"):
            break
    except Exception:
        time.sleep(0.05)
else:
    raise SystemExit("status server never answered on /metrics + /status")
assert "# TYPE minpsid_build_info gauge" in metrics, metrics[:400]
assert "campaigns" in status and "sched" in status, status
print(f"observability smoke: /metrics {len(metrics)} bytes, tool={status['tool']!r}")
EOF
wait "$OBS_PID"
# observability must not change a single report byte...
diff "$TRACE_TMP/obs-off.txt" "$TRACE_TMP/obs-on.txt"
# ...nor a single WAL byte
cmp "$TRACE_TMP/obs-journal-off/campaign.wal" "$TRACE_TMP/obs-journal-on/campaign.wal"

echo "== profiler-overhead guard (profile_overhead_pct <= 2% in committed baseline)"
# the sampling profiler's budget is <2% on every workload; the committed
# bench baseline carries the measured column. Skips gracefully when the
# baseline predates the profiler columns.
python3 - <<'EOF'
import json, sys
try:
    d = json.load(open("BENCH_fi_throughput.json"))
    rows = [r for r in d.get("workloads", []) if "profile_overhead_pct" in r]
except Exception:
    rows = []
if not rows:
    print("profiler guard: baseline lacks profile_overhead_pct, skipping")
    sys.exit(0)
bad = False
for r in rows:
    pct = r["profile_overhead_pct"]
    print(f"profiler guard: {r['name']} overhead {pct:+.2f}% (budget 2%)")
    bad = bad or pct > 2.0
sys.exit(1 if bad else 0)
EOF

echo "== deterministic-report smoke (same seed + chaos knobs => identical bytes)"
"$CLI" analyze pathfinder --quick --seed 42 --chaos-panic-one-in 50 \
  --chaos-timeout-one-in 50 --quiet > "$TRACE_TMP/chaos-a.txt" 2>/dev/null
"$CLI" analyze pathfinder --quick --seed 42 --chaos-panic-one-in 50 \
  --chaos-timeout-one-in 50 --quiet > "$TRACE_TMP/chaos-b.txt" 2>/dev/null
diff "$TRACE_TMP/chaos-a.txt" "$TRACE_TMP/chaos-b.txt"

echo "CI OK"
