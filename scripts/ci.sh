#!/usr/bin/env bash
# CI gate: formatting, lints, the full workspace test suite, and a smoke
# run of the headline experiment binary.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (workspace)"
cargo test -q --workspace --offline

echo "== fig2 smoke (--preset tiny)"
cargo run --release --offline -q -p minpsid-bench --bin fig2_baseline_loss -- \
  --preset tiny --bench pathfinder --seed 42 >/dev/null

echo "== trace smoke (fig2 --trace-out -> trace check / trace report)"
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
cargo run --release --offline -q -p minpsid-bench --bin fig2_baseline_loss -- \
  --preset tiny --bench pathfinder --seed 42 --trace-out "$TRACE_TMP/fig2.jsonl" >/dev/null
test -s "$TRACE_TMP/fig2.jsonl"
# strict schema validation: `trace check` re-parses every JSONL line and
# fails on the first malformed one
cargo run --release --offline -q -p minpsid-cli -- trace check "$TRACE_TMP/fig2.jsonl"
cargo run --release --offline -q -p minpsid-cli -- trace report "$TRACE_TMP/fig2.jsonl" \
  -o "$TRACE_TMP/report"
test -s "$TRACE_TMP/report/trace_report.md"
test -s "$TRACE_TMP/report/trace_report.html"

echo "CI OK"
