#!/usr/bin/env bash
# Build and run every example binary (smoke test for the public API).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --examples
for ex in quickstart incubative_instruction weighted_cfg error_propagation ir_workflow; do
  echo "== example: $ex =="
  "./target/release/examples/$ex"
  echo
done
# harden_benchmark takes minutes; run it on the smallest kernel
echo "== example: harden_benchmark pathfinder =="
"./target/release/examples/harden_benchmark" pathfinder
