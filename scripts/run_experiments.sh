#!/usr/bin/env bash
# Regenerate every table/figure of the paper into results/.
# Usage: scripts/run_experiments.sh [preset] [seed]
set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-tiny}"
seed="${2:-42}"

cargo build --release -p minpsid-bench

bins=(
  fig2_baseline_loss
  fig6_minpsid_mitigation
  fig7_search_efficiency
  sec4_incubative_stats
  fig8_time_breakdown
  fig9_case_study
  sec8_overhead_variance
  sec8_multithread
  ablation_reprioritization
  ablation_search_strategy
  ablation_check_placement
  ablation_knapsack
)

mkdir -p results
for bin in "${bins[@]}"; do
  echo "[experiments] $bin (preset=$preset seed=$seed) $(date +%T)"
  "./target/release/$bin" --preset "$preset" --seed "$seed" \
    > "results/$bin.txt" 2> "results/$bin.log"
done
echo "[experiments] all done $(date +%T)"
