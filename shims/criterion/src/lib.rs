//! Vendored stand-in for the `criterion` crate (offline build). Implements
//! the `Criterion` / `BenchmarkGroup` / `Bencher` surface this workspace
//! uses, with a plain wall-clock measurement loop: warm up, pick a batch
//! size, time `sample_size` batches, report median/mean per-iteration time
//! and optional throughput to stdout.
//!
//! No statistical regression analysis, plots, or baselines — these are
//! wall-clock guards, and the numbers are comparable across runs on the
//! same host.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    /// Marker for wall-clock measurement (the only mode implemented).
    pub struct WallTime;
}

/// Per-iteration timing summary of one benchmark, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    pub median_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub samples: usize,
    pub batch: u64,
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            throughput: None,
            _parent: PhantomData,
            _mode: PhantomData,
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _parent: PhantomData<&'a mut Criterion>,
    _mode: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            summary: None,
        };
        f(&mut bencher);
        match bencher.summary {
            Some(s) => report(&self.name, id, &s, self.throughput),
            None => eprintln!(
                "warning: bench {}/{id} never called Bencher::iter",
                self.name
            ),
        }
        self
    }

    pub fn finish(self) {}
}

fn report(group: &str, id: &str, s: &Summary, throughput: Option<Throughput>) {
    let time = format!(
        "time: [{} .. {} .. {}]",
        fmt_ns(s.min_ns),
        fmt_ns(s.median_ns),
        fmt_ns(s.max_ns)
    );
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) if s.median_ns > 0.0 => {
            format!(
                "  thrpt: {}",
                fmt_rate(n as f64 * 1e9 / s.median_ns, "elem/s")
            )
        }
        Some(Throughput::Bytes(n)) if s.median_ns > 0.0 => {
            format!("  thrpt: {}", fmt_rate(n as f64 * 1e9 / s.median_ns, "B/s"))
        }
        _ => String::new(),
    };
    println!(
        "bench {group}/{id}  {time}{thrpt}  ({} samples x {} iters)",
        s.samples, s.batch
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_rate(per_s: f64, unit: &str) -> String {
    if per_s >= 1e9 {
        format!("{:.3} G{unit}", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.3} M{unit}", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.3} K{unit}", per_s / 1e3)
    } else {
        format!("{per_s:.1} {unit}")
    }
}

/// Passed to the closure given to `bench_function`; `iter` runs the
/// measurement loop.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    summary: Option<Summary>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Batch size so that sample_size batches fill the measurement budget.
        let per_sample_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((per_sample_ns / est_ns) as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.summary = Some(Summary {
            median_ns: samples[samples.len() / 2],
            mean_ns: mean,
            min_ns: samples[0],
            max_ns: *samples.last().unwrap(),
            samples: samples.len(),
            batch,
        });
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` (and optional filters); this
            // harness runs everything regardless.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.throughput(Throughput::Elements(100));
        g.bench_function("spin", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }
}
