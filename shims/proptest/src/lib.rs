//! Vendored stand-in for the `proptest` crate, implementing the subset this
//! workspace uses: the `proptest!` macro family, `Strategy` with
//! `prop_map`/`prop_recursive`/`boxed`, `prop_oneof!`, `Just`, `any`,
//! numeric-range strategies, `prop::collection::vec`, and a `.{a,b}`-style
//! string strategy.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the test name, case index, and
//!   RNG seed; re-running is deterministic, so the counterexample reproduces.
//! * **Deterministic by construction.** Case `i` of test `t` is generated
//!   from `fnv(t) ^ mix(i)`, so failures never flake across runs or hosts.
//! * Generation recursion is depth-bounded eagerly (`prop_recursive` builds a
//!   finite strategy chain), so generated sizes are small but unbounded-depth
//!   recursion is impossible.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub use rand::{RngCore, RngExt, SeedableRng};

/// The RNG handed to strategies. One fresh, seeded instance per test case.
pub type TestRng = rand::rngs::StdRng;

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// Why a test case did not pass: a hard failure or a rejected (skipped) case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive one property: generate and run `config.cases` passing cases,
/// skipping rejected ones (bounded), panicking on the first failure.
/// Called by the expansion of [`proptest!`]; not part of the public API of
/// the real crate, but harmless to expose.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let max_rejects = config.cases.saturating_mul(32).max(1024);
    let mut rejected = 0u32;
    let mut passed = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        let seed = fnv1a(name) ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        attempt += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest '{name}': too many rejected cases ({rejected}) — \
                     strategy or prop_assume! is too restrictive"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {passed} (rng seed {seed:#018x}):\n{msg}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`. Object-safe: only
/// `generate` is dispatchable; combinators require `Sized`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Depth-bounded recursion: builds `depth` alternations of
    /// "leaf or one-level-deeper" eagerly, so generation always terminates.
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }
}

/// A cloneable, type-erased strategy (`Rc`-backed; strategies are
/// single-threaded here).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice between alternatives; result of [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.random_range(0..self.arms.len());
        self.arms[k].generate(rng)
    }
}

// --- numeric range strategies ---

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

// --- any::<T>() ---

/// Types with a full-domain default strategy.
pub trait ArbitraryValue {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // uniform over bit patterns (includes NaN / inf, like the real crate
        // can produce); callers that care filter or use ranges
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy for a type's full domain; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- tuple strategies ---

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

// --- string strategy from a `.{lo,hi}`-style pattern ---

/// `&'static str` acts as a regex-ish strategy. Only the shape `.{lo,hi}`
/// is interpreted (arbitrary chars, length in `lo..=hi`); anything else
/// falls back to 0..=64 arbitrary chars.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 64));
        let len = rng.random_range(lo..=hi);
        (0..len).map(|_| arbitrary_char(rng)).collect()
    }
}

fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
    let rest = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

fn arbitrary_char(rng: &mut TestRng) -> char {
    match rng.random_range(0u32..10) {
        // mostly printable ASCII, which exercises lexers hardest
        0..=6 => char::from_u32(rng.random_range(0x20u32..0x7F)).unwrap(),
        7 => *['\n', '\t', '\r', '\0', ' ']
            .get(rng.random_range(0usize..5))
            .unwrap(),
        8 => char::from_u32(rng.random_range(0x80u32..0x250)).unwrap_or('¤'),
        _ => *['λ', '∑', '🦀', '中', '\u{202E}', 'ß']
            .get(rng.random_range(0usize..6))
            .unwrap(),
    }
}

// --- collections ---

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_property(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __body_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __body_result
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        // callers often parenthesize range arms; don't lint their style
        #[allow(unused_parens)]
        let __arms = vec![$($crate::Strategy::boxed($arm)),+];
        $crate::Union::new(__arms)
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__lhs, __rhs) = (&$a, &$b);
        if !(*__lhs == *__rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __lhs,
                __rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__lhs, __rhs) = (&$a, &$b);
        if !(*__lhs == *__rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+),
                __lhs,
                __rhs
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__lhs, __rhs) = (&$a, &$b);
        if *__lhs == *__rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __lhs
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assume failed: ",
                stringify!($cond)
            )));
        }
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        ArbitraryValue, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds((a, b) in (0i64..10, 5u32..7), s in ".{0,8}") {
            prop_assert!((0..10).contains(&a));
            prop_assert!(b == 5 || b == 6);
            prop_assert!(s.chars().count() <= 8);
        }

        #[test]
        fn vec_and_oneof_compose(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    #[test]
    fn determinism_same_name_same_values() {
        let mut seen = Vec::new();
        for _ in 0..2 {
            let mut vals = Vec::new();
            crate::run_property("det", &ProptestConfig::with_cases(5), |rng| {
                vals.push(Strategy::generate(&(0u64..1_000_000), rng));
                Ok(())
            });
            seen.push(vals);
        }
        assert_eq!(seen[0], seen[1]);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        crate::run_property("boom", &ProptestConfig::with_cases(3), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        use crate::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }
}
