//! Vendored stand-in for the `rand` crate, sized to exactly the surface this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over integer and float ranges.
//!
//! The container this repo builds in has no crates.io access, so external
//! dependencies are provided as in-tree path crates. Determinism matters more
//! than statistical quality here — every campaign, GA search, and workload
//! generator derives its behaviour from seeds that must reproduce bit-exactly
//! across runs and thread schedules — so the generator is a fixed
//! xoshiro256** seeded via SplitMix64, with no platform- or version-dependent
//! behaviour.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeding interface (subset of the real crate's trait).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
///
/// (The real crate spells this `Rng`; the workspace imports it as `RngExt`.)
pub trait RngExt: RngCore {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// A range that knows how to sample a `T` uniformly from an RNG. The
/// element type is a trait parameter (like the real crate) so type
/// inference can flow from the expected output into the range literal.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = rng.next_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = rng.next_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors. Guarantees a non-zero state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.random_range(0u64..3);
            assert!(w < 3);
            let x = rng.random_range(10i64..=10);
            assert_eq!(x, 10);
            let y = rng.random_range(0usize..17);
            assert!(y < 17);
            let b: u32 = rng.random_range(0..64);
            assert!(b < 64);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&v));
            let w = rng.random_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&w));
            let u = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn full_u64_range_is_samplable() {
        let mut rng = StdRng::seed_from_u64(3);
        // span of 0..=u64::MAX is 2^64, which only fits in the u128 path.
        let v = rng.random_range(0u64..=u64::MAX);
        let _ = v;
    }
}
