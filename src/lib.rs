//! # minpsid-repro — reproduction of MINPSID (SC'22)
//!
//! *"Mitigating Silent Data Corruptions in HPC Applications across
//! Multiple Program Inputs"*, Huang, Guo, Di, Li, Cappello — SC 2022.
//!
//! This facade crate re-exports the workspace so examples and integration
//! tests can exercise the full pipeline from one place:
//!
//! * [`ir`] — the typed register IR (LLVM-IR stand-in);
//! * [`minic`] — the C-like front end (clang stand-in);
//! * [`interp`] — deterministic interpreter with profiling and the
//!   fault-injection hook;
//! * [`faultsim`] — LLFI-style single-bit-flip campaigns, all executed
//!   by one composable `CampaignEngine` (parallel by default; the
//!   scheduler, journal, and tracer attach as policy layers);
//! * [`sid`] — baseline selective instruction duplication;
//! * [`minpsid`] — the paper's contribution: GA input search,
//!   incubative-instruction identification, re-prioritized SID;
//! * [`trace`] — structured tracing/metrics sink and the offline
//!   `minpsid trace report` analyzer;
//! * [`journal`] — crash-safe campaign journal: durable WAL,
//!   resume-after-crash, cooperative interrupts;
//! * [`sched`] — resilient campaign scheduler: retry/backoff,
//!   site quarantine, Wilson-interval early stopping, deadlines;
//! * [`fleet`] — process-isolated campaign fleet: supervised workers,
//!   lease-based shard reassignment, poison-shard quarantine;
//! * [`store`] — self-verifying content-addressed artifact store:
//!   digest-verified loads, corruption quarantine, scrub/gc;
//! * [`workloads`] — the 11 benchmarks of Table I.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use minic;
pub use minpsid;
pub use minpsid_faultsim as faultsim;
pub use minpsid_fleet as fleet;
pub use minpsid_interp as interp;
pub use minpsid_ir as ir;
pub use minpsid_journal as journal;
pub use minpsid_metrics as metrics;
pub use minpsid_sched as sched;
pub use minpsid_sid as sid;
pub use minpsid_store as store;
pub use minpsid_trace as trace;
pub use minpsid_workloads as workloads;
