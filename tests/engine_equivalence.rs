//! Engine-equivalence matrix: every composition of the `CampaignEngine`
//! (plain, explicit scheduler, journaled) must produce byte-identical
//! reports at every thread count, because the plan is fixed by the seed
//! and reduction happens in plan order regardless of how workers race.
//! Plus the crash story for the *parallel* journaled path: a campaign
//! SIGKILLed mid-run resumes from its WAL to the same bytes.

use minpsid_repro::faultsim::{
    golden_run, CampaignConfigBuilder, CampaignEngine, CampaignJournal, GoldenRun, Scheduler,
};
use minpsid_repro::interp::ProgInput;
use minpsid_repro::ir::Module;
use minpsid_repro::workloads;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn journal_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("minpsid-engine-eq-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn bench_module(name: &str) -> (Module, ProgInput) {
    let b = workloads::by_name(name).expect("workload exists");
    (b.compile(), b.model.materialize(&b.model.reference()))
}

/// Canonical report bytes for one engine composition: the debug render
/// of both campaign shapes (no timing fields, so fully deterministic).
fn reports(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    threads: usize,
    mode: &str,
) -> (String, String) {
    let cfg = CampaignConfigBuilder::new(7)
        .injections(60)
        .and_then(|b| b.per_inst_injections(4))
        .and_then(|b| b.threads(threads as u64))
        .expect("valid matrix config")
        .build();
    let sched = Scheduler::unbounded(cfg.sched.clone());
    let dir = journal_dir(&format!("matrix-{mode}-t{threads}"));
    let journal;
    let mut engine = CampaignEngine::new(module, input, golden, &cfg);
    match mode {
        "plain" => {}
        "sched" => engine = engine.with_scheduler(&sched),
        "journaled" => {
            journal = CampaignJournal::open(&dir, 0, 0).expect("open journal");
            engine = engine.with_journal(&journal, 1);
        }
        other => panic!("unknown mode {other}"),
    }
    let program = engine.run_program().expect("no interrupt requested");
    let per_inst = engine
        .run_per_instruction()
        .expect("no interrupt requested");
    let _ = std::fs::remove_dir_all(&dir);
    (format!("{program:?}"), format!("{per_inst:?}"))
}

/// The matrix: {plain, scheduled, journaled} × {1, 2, 8} threads, all
/// nine compositions byte-identical for both campaign shapes.
#[test]
fn all_engine_compositions_are_byte_identical_across_thread_counts() {
    let (module, input) = bench_module("hpccg");
    let cfg = CampaignConfigBuilder::new(7)
        .injections(60)
        .and_then(|b| b.per_inst_injections(4))
        .expect("valid matrix config")
        .build();
    let golden = golden_run(&module, &input, &cfg).expect("golden run");

    let reference = reports(&module, &input, &golden, 1, "plain");
    for mode in ["plain", "sched", "journaled"] {
        for threads in [1usize, 2, 8] {
            let got = reports(&module, &input, &golden, threads, mode);
            assert_eq!(
                got, reference,
                "{mode} campaign at {threads} threads diverged from plain serial"
            );
        }
    }
}

/// Observability must be a pure observer: the same campaign run with the
/// interpreter sampling profiler enabled AND the full trace/metrics
/// bridge attached (the `--status-addr` wiring) produces byte-identical
/// reports to a bare run. The bridge sees real events — the campaign is
/// sampled — but none of it may leak into results.
#[test]
fn observability_on_and_off_produce_byte_identical_reports() {
    use minpsid_repro::metrics::{Registry, StatusBoard};
    use minpsid_repro::trace;
    use std::sync::Arc;

    let (module, input) = bench_module("fft");
    let cfg = CampaignConfigBuilder::new(7)
        .injections(60)
        .and_then(|b| b.per_inst_injections(4))
        .expect("valid config")
        .build();
    let golden = golden_run(&module, &input, &cfg).expect("golden run");

    let run = || {
        let program = CampaignEngine::new(&module, &input, &golden, &cfg)
            .run_program()
            .expect("no interrupt requested");
        let per_inst = CampaignEngine::new(&module, &input, &golden, &cfg)
            .run_per_instruction()
            .expect("no interrupt requested");
        (format!("{program:?}"), format!("{per_inst:?}"))
    };

    let bare = run();

    let registry = Arc::new(Registry::new());
    let board = Arc::new(StatusBoard::new());
    trace::bridge::install(registry.clone(), board.clone(), "fft");
    minpsid_repro::interp::opprof::enable(64);
    let observed = run();
    minpsid_repro::interp::opprof::disable();
    minpsid_repro::interp::opprof::reset();
    trace::shutdown().expect("clean trace shutdown");

    assert_eq!(
        observed, bare,
        "campaign reports changed with profiler + metrics bridge enabled"
    );
    // The observers must have actually seen the campaign, or the identity
    // check proved nothing.
    let doc = board.render_json_at(0);
    assert!(
        doc.contains("\"workload\":\"fft\"") && doc.contains("\"finished\":true"),
        "bridge saw no campaign: {doc}"
    );
    assert!(
        registry
            .snapshot()
            .iter()
            .any(|f| f.name == "minpsid_injections_total"),
        "bridge recorded no injections"
    );
}

/// Campaign the SIGKILL child and the resuming parent both run: big
/// enough to survive a few hundred milliseconds on one core, parallel
/// (8 workers) so the kill lands on the multi-threaded journaled path.
fn sigkill_campaign() -> (Module, ProgInput, minpsid_repro::faultsim::CampaignConfig) {
    let (module, input) = bench_module("hpccg");
    let cfg = CampaignConfigBuilder::new(11)
        .per_inst_injections(8)
        .and_then(|b| b.threads(8))
        .expect("valid sigkill config")
        .build();
    (module, input, cfg)
}

const CHILD_ENV: &str = "MINPSID_EQ_CHILD";

/// Child half of the SIGKILL test: re-invoked by `--exact` from the
/// parent with `MINPSID_EQ_CHILD` pointing at the journal directory.
/// A no-op (instant pass) in a normal test run.
#[test]
fn sigkill_resume_child() {
    let Ok(dir) = std::env::var(CHILD_ENV) else {
        return;
    };
    let (module, input, cfg) = sigkill_campaign();
    let golden = golden_run(&module, &input, &cfg).expect("golden run");
    let journal =
        CampaignJournal::open(std::path::Path::new(&dir), 0, 0).expect("open child journal");
    let _ = CampaignEngine::new(&module, &input, &golden, &cfg)
        .with_journal(&journal, 1)
        .run_per_instruction();
}

/// SIGKILL a parallel journaled campaign mid-run (a real child process,
/// killed without warning once its WAL shows progress), then resume from
/// the surviving journal and demand the same bytes a never-crashed
/// campaign produces.
#[test]
fn sigkilled_parallel_journaled_campaign_resumes_bit_identically() {
    let dir = journal_dir("sigkill");
    std::fs::create_dir_all(&dir).expect("create journal dir");
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["sigkill_resume_child", "--exact", "--nocapture"])
        .env(CHILD_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child campaign");

    // Kill once the WAL shows real progress. If the campaign finishes
    // first the resume below simply serves every outcome — still a valid
    // (if weaker) equivalence check, so don't fail on a fast child.
    let wal = dir.join("campaign.wal");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let done = child.try_wait().expect("poll child").is_some();
        let progressed = std::fs::metadata(&wal)
            .map(|m| m.len() > 4096)
            .unwrap_or(false);
        if done || progressed {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "child campaign made no journal progress within 120s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill();
    let _ = child.wait();

    let (module, input, cfg) = sigkill_campaign();
    let golden = golden_run(&module, &input, &cfg).expect("golden run");
    let plain = CampaignEngine::new(&module, &input, &golden, &cfg)
        .run_per_instruction()
        .expect("plain campaign is interrupt-free");

    let journal = CampaignJournal::open(&dir, 0, 0).expect("reopen journal after SIGKILL");
    let (recovered, _truncated) = journal.recovery_stats();
    assert!(
        recovered > 0,
        "the SIGKILLed campaign left no recoverable journal records"
    );
    let resumed = CampaignEngine::new(&module, &input, &golden, &cfg)
        .with_journal(&journal, 1)
        .run_per_instruction()
        .expect("no interrupt requested on resume");
    assert_eq!(
        format!("{resumed:?}"),
        format!("{plain:?}"),
        "resumed campaign diverged from a never-crashed one"
    );
    let (served, _appended) = journal.usage();
    assert!(
        served > 0,
        "resume served nothing from the WAL — the crash recovery path was not exercised"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
