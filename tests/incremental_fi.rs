//! Incremental fault injection end-to-end: section-table composition
//! must be invisible when cold (byte-identical reports), a warm store
//! must serve everything, and an edit to one *leaf* function must
//! re-execute only that section (plus its callers) — the O(diff)
//! re-campaign the table layer exists for — while still producing the
//! exact bytes a from-scratch campaign of the edited program produces,
//! in both the reports and the journal's WAL.

use minpsid_repro::faultsim::{
    golden_run, CampaignConfig, CampaignConfigBuilder, CampaignEngine, CampaignJournal, GoldenRun,
    TableMemo,
};
use minpsid_repro::interp::{ProgInput, Scalar};
use minpsid_repro::ir::Module;
use minpsid_repro::minic;
use minpsid_repro::minpsid::input_fingerprint;
use minpsid_repro::store::ArtifactStore;
use minpsid_repro::workloads;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("minpsid-incr-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn open_store(name: &str) -> Arc<ArtifactStore> {
    Arc::new(ArtifactStore::open(&tmp(name)).expect("open store"))
}

/// Canonical report bytes for both campaign shapes, optionally memoized
/// and optionally journaled (fresh WAL under fingerprints (0, 0)).
fn reports(
    module: &Module,
    input: &ProgInput,
    golden: &GoldenRun,
    cfg: &CampaignConfig,
    memo: Option<&TableMemo>,
    journal: Option<&CampaignJournal>,
) -> (String, String) {
    let mut engine = CampaignEngine::new(module, input, golden, cfg);
    if let Some(j) = journal {
        engine = engine.with_journal(j, 1);
    }
    if let Some(m) = memo {
        engine = engine.with_tables(m);
    }
    let program = engine.run_program().expect("no interrupt requested");
    let per_inst = engine
        .run_per_instruction()
        .expect("no interrupt requested");
    (format!("{program:?}"), format!("{per_inst:?}"))
}

fn campaign(seed: u64, injections: u64, per_inst: u64) -> CampaignConfig {
    CampaignConfigBuilder::new(seed)
        .injections(injections)
        .and_then(|b| b.per_inst_injections(per_inst))
        .expect("valid campaign config")
        .build()
}

/// A program whose work lives in four chunky leaf functions; `main` and
/// the tiny `tweak` leaf are the only sections an edit to `tweak`
/// invalidates (callers mix callee fingerprints, so `main` re-runs too).
/// `TWEAK_V1` and `TWEAK_V2` compute the same value with the same
/// instruction count — the golden output, step count, and every other
/// section's dynamic profile are unchanged, which is exactly the
/// situation where sealed tables must survive the edit.
fn mini_source(tweak_body: &str) -> String {
    let mut heavies = String::new();
    for (name, k) in [
        ("heavy_a", 3),
        ("heavy_b", 5),
        ("heavy_c", 7),
        ("heavy_d", 11),
    ] {
        heavies.push_str(&format!(
            r#"
fn {name}(n: int) -> int {{
    let acc = 1;
    for i = 0 to n {{
        let t = i * {k} + 7;
        let u = t * t - i * 2;
        let v = u + t - 5;
        let w = v * {k} + u;
        let x = w - v + t;
        let y = x * 2 - w;
        acc = acc + y + v - u;
    }}
    return acc;
}}
"#
        ));
    }
    format!(
        r#"{heavies}
fn tweak(x: int) -> int {{
    return {tweak_body};
}}
fn main() {{
    let n = arg_i(0);
    let a = heavy_a(n);
    let b = heavy_b(n);
    let c = heavy_c(n);
    let d = heavy_d(n);
    out_i(tweak(a));
    out_i(tweak(b));
    out_i(tweak(c));
    out_i(tweak(d));
}}
"#
    )
}

const TWEAK_V1: &str = "x * 2";
const TWEAK_V2: &str = "x + x";

fn mini_module(tweak_body: &str) -> (Module, ProgInput) {
    let module = minic::compile(&mini_source(tweak_body), "mini").expect("mini program compiles");
    (module, ProgInput::scalars(vec![Scalar::I(24)]))
}

/// Cold composition is invisible: a memoized engine over an empty store
/// produces byte-identical reports to a bare engine, executes everything
/// itself, and leaves sealed tables behind. A second memoized run over
/// the now-warm store re-executes nothing and still matches.
#[test]
fn cold_and_warm_memoized_campaigns_match_plain_byte_for_byte() {
    let b = workloads::by_name("hpccg").expect("workload exists");
    let (module, input) = (b.compile(), b.model.materialize(&b.model.reference()));
    let cfg = campaign(7, 60, 4);
    let golden = golden_run(&module, &input, &cfg).expect("golden run");
    let store = open_store("cold-warm");
    let input_fp = input_fingerprint(&input);

    let plain = reports(&module, &input, &golden, &cfg, None, None);

    let cold = TableMemo::new(store.clone(), input_fp);
    let got = reports(&module, &input, &golden, &cfg, Some(&cold), None);
    assert_eq!(got, plain, "cold memoized campaign diverged from plain");
    let s = cold.stats();
    assert!(s.injections_executed > 0, "cold run executed nothing");
    assert_eq!(s.injections_served, 0, "cold store served injections");
    assert!(s.tables_sealed > 0, "cold run sealed no tables");

    let warm = TableMemo::new(store, input_fp);
    let got = reports(&module, &input, &golden, &cfg, Some(&warm), None);
    assert_eq!(got, plain, "warm memoized campaign diverged from plain");
    let s = warm.stats();
    assert_eq!(
        s.injections_executed, 0,
        "warm store re-executed injections"
    );
    assert!(s.injections_served > 0, "warm store served nothing");
    assert!(s.sections_hit > 0, "warm store hit no sections");
}

/// The O(diff) acceptance check: seal tables for the v1 program, edit the
/// `tweak` leaf (same value, same instruction count, different
/// fingerprint), and re-campaign v2 against the same store. Only `tweak`
/// and its caller `main` may re-execute — more than 5x fewer injections
/// than the cold campaign — and the composed reports and journal WAL
/// must be byte-identical to a from-scratch campaign of v2.
#[test]
fn editing_one_leaf_function_reexecutes_only_its_sections() {
    let cfg = campaign(5, 120, 6);
    let store = open_store("edit-leaf");

    let (m1, input) = mini_module(TWEAK_V1);
    let g1 = golden_run(&m1, &input, &cfg).expect("v1 golden run");
    let input_fp = input_fingerprint(&input);
    let cold = TableMemo::new(store.clone(), input_fp);
    reports(&m1, &input, &g1, &cfg, Some(&cold), None);
    let cold_stats = cold.stats();
    assert!(cold_stats.tables_sealed > 0, "v1 run sealed no tables");

    let (m2, _) = mini_module(TWEAK_V2);
    let g2 = golden_run(&m2, &input, &cfg).expect("v2 golden run");
    assert_eq!(
        g1.steps, g2.steps,
        "the edit was meant to preserve the dynamic profile; the >5x \
         claim below would be vacuous otherwise"
    );

    let scratch = reports(&m2, &input, &g2, &cfg, None, None);
    let warm = TableMemo::new(store, input_fp);
    let incr = reports(&m2, &input, &g2, &cfg, Some(&warm), None);
    assert_eq!(
        incr, scratch,
        "incremental re-campaign diverged from a from-scratch campaign of the edited program"
    );

    let s = warm.stats();
    assert!(
        s.sections_hit > 0 && s.injections_served > 0,
        "no section survived the edit: {s:?}"
    );
    assert!(
        s.injections_executed > 0,
        "the edited section did not re-run: {s:?}"
    );
    assert!(
        s.injections_executed * 5 < cold_stats.injections_executed,
        "incremental re-campaign executed {} of {} cold injections — not O(diff)",
        s.injections_executed,
        cold_stats.injections_executed,
    );
}

/// Serving outcomes from tables still commits real records: a journaled
/// incremental re-campaign writes the same WAL bytes a journaled
/// from-scratch campaign writes, so crash-resume and incrementality
/// compose instead of conflicting.
#[test]
fn incremental_and_from_scratch_journals_are_byte_identical() {
    let cfg = campaign(9, 80, 4);
    let store = open_store("edit-wal");

    let (m1, input) = mini_module(TWEAK_V1);
    let g1 = golden_run(&m1, &input, &cfg).expect("v1 golden run");
    let input_fp = input_fingerprint(&input);
    let cold = TableMemo::new(store.clone(), input_fp);
    reports(&m1, &input, &g1, &cfg, Some(&cold), None);

    let (m2, _) = mini_module(TWEAK_V2);
    let g2 = golden_run(&m2, &input, &cfg).expect("v2 golden run");

    let scratch_dir = tmp("wal-scratch");
    let scratch_journal = CampaignJournal::open(&scratch_dir, 0, 0).expect("open scratch journal");
    let scratch = reports(&m2, &input, &g2, &cfg, None, Some(&scratch_journal));

    let incr_dir = tmp("wal-incr");
    let incr_journal = CampaignJournal::open(&incr_dir, 0, 0).expect("open incremental journal");
    let warm = TableMemo::new(store, input_fp);
    let incr = reports(&m2, &input, &g2, &cfg, Some(&warm), Some(&incr_journal));

    assert_eq!(incr, scratch, "journaled reports diverged");
    assert!(
        warm.stats().injections_served > 0,
        "the incremental journal test served nothing from tables"
    );
    drop(scratch_journal);
    drop(incr_journal);
    let a = std::fs::read(scratch_dir.join("campaign.wal")).expect("scratch WAL");
    let b = std::fs::read(incr_dir.join("campaign.wal")).expect("incremental WAL");
    assert_eq!(a, b, "incremental WAL bytes diverged from from-scratch WAL");
    let _ = std::fs::remove_dir_all(&scratch_dir);
    let _ = std::fs::remove_dir_all(&incr_dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Composition soundness, property form: for arbitrary campaign seeds
    /// and sizes over a genuinely multi-section program, a cold memoized
    /// campaign's composed reports are byte-identical to a monolithic
    /// (memo-free) campaign's — section planning and sealing must never
    /// perturb results.
    #[test]
    fn composed_reports_equal_monolithic_for_arbitrary_campaigns(
        seed in 0u64..1_000,
        injections in 20u64..90,
        per_inst in 2u64..6,
    ) {
        let (module, input) = mini_module(TWEAK_V1);
        let cfg = campaign(seed, injections, per_inst);
        let golden = golden_run(&module, &input, &cfg).expect("golden run");
        let plain = reports(&module, &input, &golden, &cfg, None, None);
        let store = open_store(&format!("prop-{seed}-{injections}-{per_inst}"));
        let memo = TableMemo::new(store, input_fingerprint(&input));
        let composed = reports(&module, &input, &golden, &cfg, Some(&memo), None);
        prop_assert_eq!(composed, plain, "composed cold campaign diverged from monolithic");
        prop_assert!(memo.stats().tables_sealed > 0);
    }
}
