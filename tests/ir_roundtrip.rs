//! IR text-format round-trip over the whole benchmark suite: the exact
//! modules the experiments run on must survive print → parse → print
//! byte-identically, stay verified, and behave identically.

use minpsid_repro::interp::{ExecConfig, Interp};
use minpsid_repro::ir::parser::parse_module;
use minpsid_repro::ir::printer::print_module;
use minpsid_repro::ir::verify_module;
use minpsid_repro::workloads;

#[test]
fn every_benchmark_roundtrips_through_the_text_format() {
    // the parser renumbers instructions into textual order (minic's arena
    // order interleaves nested blocks), so the invariant is normal-form
    // idempotence: one parse reaches a fixpoint of print ∘ parse
    for b in workloads::suite() {
        let module = b.compile();
        let text = print_module(&module);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        verify_module(&parsed).unwrap_or_else(|e| panic!("{}: {e:?}", b.name));
        let normal = print_module(&parsed);
        let reparsed = parse_module(&normal).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(
            print_module(&reparsed),
            normal,
            "{}: normal form not a fixpoint",
            b.name
        );
        assert_eq!(reparsed, parsed, "{}: structural fixpoint", b.name);
    }
}

#[test]
fn parsed_modules_execute_identically() {
    for b in workloads::suite().into_iter().take(4) {
        let module = b.compile();
        let parsed = parse_module(&print_module(&module)).unwrap();
        let input = b.model.materialize(&b.model.reference());
        let a = Interp::new(&module, ExecConfig::default()).run(&input);
        let c = Interp::new(&parsed, ExecConfig::default()).run(&input);
        assert_eq!(a.termination, c.termination, "{}", b.name);
        assert_eq!(a.output, c.output, "{}", b.name);
        assert_eq!(a.steps, c.steps, "{}", b.name);
    }
}

#[test]
fn protected_modules_roundtrip_too() {
    use minpsid_repro::sid::duplicate_module;
    let b = workloads::by_name("pathfinder").unwrap();
    let module = b.compile();
    let all = vec![true; module.num_insts()];
    let (protected, _) = duplicate_module(&module, &all);
    let parsed = parse_module(&print_module(&protected)).unwrap();
    assert_eq!(parsed, protected);
}
