//! Integration tests for the crash-safe campaign journal: an interrupted
//! MINPSID run resumed from its journal must produce a bit-identical
//! result, and an injected worker panic must degrade to an
//! `EngineError` outcome instead of terminating the campaign.

use minpsid_repro::faultsim::{
    golden_run, interrupt, program_campaign, CampaignConfig, CampaignJournal,
};
use minpsid_repro::minpsid::{
    minpsid_config_fingerprint, module_fingerprint, run_minpsid, run_minpsid_journaled, GaConfig,
    GoldenCache, MinpsidConfig, MinpsidResult, PipelineError, SearchStrategy,
};
use minpsid_repro::workloads;
use std::path::PathBuf;

fn tiny_minpsid(seed: u64) -> MinpsidConfig {
    MinpsidConfig {
        protection_level: 0.6,
        campaign: CampaignConfig {
            injections: 80,
            per_inst_injections: 6,
            seed,
            ..CampaignConfig::default()
        },
        ga: GaConfig {
            population: 5,
            max_generations: 3,
            seed,
            ..GaConfig::default()
        },
        max_inputs: 3,
        stagnation_patience: 2,
        strategy: SearchStrategy::Genetic,
        ..MinpsidConfig::default()
    }
}

fn journal_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "minpsid-integration-journal-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn same_result(a: &MinpsidResult, b: &MinpsidResult) {
    assert_eq!(a.selection, b.selection);
    assert_eq!(a.incubative, b.incubative);
    assert_eq!(a.incubative_history, b.incubative_history);
    assert_eq!(a.inputs_searched, b.inputs_searched);
    assert_eq!(a.expected_coverage, b.expected_coverage);
}

/// The full resume story on a real benchmark, in one test so nothing
/// races the process-wide interrupt flag: fresh-journaled == plain,
/// interrupt → Err(Interrupted) with progress kept, resume == plain.
#[test]
fn interrupted_minpsid_run_resumes_bit_identically() {
    let suite = workloads::suite();
    let b = suite.first().expect("non-empty suite");
    let module = b.compile();
    let cfg = tiny_minpsid(5);
    let plain = run_minpsid(&module, b.model.as_ref(), &cfg).unwrap();

    let mfp = module_fingerprint(&module);
    let cfp = minpsid_config_fingerprint(&cfg);

    // interrupt immediately: the run stops cleanly, journaling whatever
    // completed before the first poll
    let dir = journal_dir("resume");
    {
        let journal = CampaignJournal::open(&dir, mfp, cfp).unwrap();
        interrupt::request();
        let r = run_minpsid_journaled(
            &module,
            b.model.as_ref(),
            &cfg,
            &GoldenCache::new(),
            &journal,
        );
        interrupt::clear();
        assert!(
            matches!(r, Err(PipelineError::Interrupted)),
            "interrupt propagates"
        );
    }

    // resume with a fresh cache and a reopened journal: bit-identical
    let journal = CampaignJournal::open(&dir, mfp, cfp).unwrap();
    let resumed = run_minpsid_journaled(
        &module,
        b.model.as_ref(),
        &cfg,
        &GoldenCache::new(),
        &journal,
    )
    .unwrap();
    same_result(&plain, &resumed);

    // run once more over the now-complete journal: everything is served
    drop(journal);
    let journal = CampaignJournal::open(&dir, mfp, cfp).unwrap();
    let replayed = run_minpsid_journaled(
        &module,
        b.model.as_ref(),
        &cfg,
        &GoldenCache::new(),
        &journal,
    )
    .unwrap();
    same_result(&plain, &replayed);
    let (served, appended) = journal.usage();
    assert!(served > 0, "completed journal serves the injections");
    assert!(
        appended <= 1,
        "replay appends at most the selection record, got {appended}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A panicking injection worker must not take the campaign down: the
/// chaos knob fires deterministic panics that classify as EngineError,
/// excluded from SDC rates, and the run is otherwise unperturbed.
#[test]
fn worker_panics_degrade_to_engine_errors_without_aborting() {
    let suite = workloads::suite();
    let b = suite.first().expect("non-empty suite");
    let module = b.compile();
    let input = b.model.materialize(&b.model.reference());
    let mut cfg = CampaignConfig {
        injections: 90,
        per_inst_injections: 4,
        seed: 9,
        ..CampaignConfig::default()
    };
    let golden = golden_run(&module, &input, &cfg).unwrap();
    let clean = program_campaign(&module, &input, &golden, &cfg);
    assert_eq!(clean.counts.engine_error, 0);

    cfg.chaos_panic_one_in = Some(30);
    let chaotic = program_campaign(&module, &input, &golden, &cfg);
    assert_eq!(
        chaotic.counts.engine_error, 3,
        "every 30th of 90 injections panics"
    );
    assert_eq!(
        chaotic.counts.total(),
        clean.counts.total(),
        "the campaign still runs to completion"
    );
    // rates are computed over valid injections only, so the panics do
    // not silently dilute the SDC probability
    assert_eq!(chaotic.counts.valid_total(), clean.counts.total() - 3);
}
