//! The IR optimizer (constant folding + DCE) must preserve the observable
//! behaviour of every benchmark, and the protection pipeline must work
//! identically on optimized modules.

use minpsid_repro::faultsim::CampaignConfig;
use minpsid_repro::interp::{ExecConfig, Interp};
use minpsid_repro::ir::opt::optimize;
use minpsid_repro::sid::{run_sid, SidConfig};
use minpsid_repro::workloads;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn optimizer_preserves_benchmark_semantics() {
    for b in workloads::suite() {
        let module = b.compile();
        let mut optimized = module.clone();
        let removed = optimize(&mut optimized);
        minpsid_repro::ir::verify_module(&optimized)
            .unwrap_or_else(|e| panic!("{}: {e:?}", b.name));

        let mut rng = StdRng::seed_from_u64(23);
        let mut checked = 0;
        let mut tried = 0;
        while checked < 3 && tried < 20 {
            tried += 1;
            let input = b.model.materialize(&b.model.random(&mut rng));
            let orig = Interp::new(&module, ExecConfig::default()).run(&input);
            if !orig.exited() {
                continue;
            }
            let opt = Interp::new(&optimized, ExecConfig::default()).run(&input);
            assert!(opt.exited(), "{}: optimized run failed", b.name);
            assert_eq!(orig.output, opt.output, "{}: outputs differ", b.name);
            assert!(
                opt.steps <= orig.steps,
                "{}: the optimizer must not add work",
                b.name
            );
            checked += 1;
        }
        assert_eq!(checked, 3, "{}: not enough valid inputs", b.name);
        // front-end output contains foldable patterns in most kernels;
        // removal count is informational, zero is fine for tight kernels
        let _ = removed;
    }
}

#[test]
fn sid_protects_optimized_modules() {
    let b = workloads::by_name("pathfinder").unwrap();
    let mut module = b.compile();
    optimize(&mut module);
    let ref_input = b.model.materialize(&b.model.reference());
    let cfg = SidConfig {
        protection_level: 0.5,
        campaign: CampaignConfig {
            injections: 60,
            per_inst_injections: 5,
            seed: 2,
            ..CampaignConfig::default()
        },
        use_dp: false,
    };
    let sid = run_sid(&module, &ref_input, &cfg).expect("SID on optimized IR");
    assert!(sid.meta.num_dups > 0);
    let orig = Interp::new(&module, ExecConfig::default()).run(&ref_input);
    let prot = Interp::new(&sid.protected, ExecConfig::default()).run(&ref_input);
    assert_eq!(orig.output, prot.output);
}

#[test]
fn optimizer_shrinks_foldable_frontend_output() {
    // the front end lowers naively; a kernel full of literal arithmetic
    // must shrink measurably
    let src = r#"
        fn main() {
            let scale = 4 * 256;
            let bias = 100 / 4 + 3;
            let limit = scale - bias;
            out_i(limit);
            out_i(scale * 2);
        }
    "#;
    let mut module = minic::compile(src, "foldable").unwrap();
    let before = module.num_insts();
    let removed = optimize(&mut module);
    assert!(removed > 0, "literal arithmetic must fold");
    assert!(module.num_insts() < before);
    let r = Interp::new(&module, ExecConfig::default())
        .run(&minpsid_repro::interp::ProgInput::default());
    assert_eq!(
        r.output.items,
        vec![
            minpsid_repro::interp::OutputItem::I(996),
            minpsid_repro::interp::OutputItem::I(2048)
        ]
    );
}
