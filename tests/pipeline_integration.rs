//! Cross-crate integration tests: the full front-end → interpreter →
//! fault-injection → SID → MINPSID pipeline over the real benchmark suite.

use minpsid_repro::faultsim::{golden_run, CampaignConfig};
use minpsid_repro::interp::{ExecConfig, Interp};
use minpsid_repro::minpsid::{
    run_baseline_sid, run_minpsid, GaConfig, MinpsidConfig, SearchStrategy,
};
use minpsid_repro::sid::{measure_coverage, run_sid, SidConfig};
use minpsid_repro::workloads;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_campaign(seed: u64) -> CampaignConfig {
    CampaignConfig {
        injections: 80,
        per_inst_injections: 6,
        seed,
        ..CampaignConfig::default()
    }
}

fn tiny_minpsid(seed: u64) -> MinpsidConfig {
    MinpsidConfig {
        protection_level: 0.6,
        campaign: tiny_campaign(seed),
        ga: GaConfig {
            population: 5,
            max_generations: 3,
            seed,
            ..GaConfig::default()
        },
        max_inputs: 4,
        stagnation_patience: 2,
        strategy: SearchStrategy::Genetic,
        ..MinpsidConfig::default()
    }
}

/// SID's transform must never change program semantics: for every
/// benchmark, the protected binary produces bit-identical output on
/// random inputs it was *not* tuned for.
#[test]
fn protection_preserves_semantics_across_the_whole_suite() {
    for b in workloads::suite() {
        let module = b.compile();
        let ref_input = b.model.materialize(&b.model.reference());
        let sid = run_sid(
            &module,
            &ref_input,
            &SidConfig {
                protection_level: 0.5,
                campaign: tiny_campaign(1),
                use_dp: false,
            },
        )
        .unwrap_or_else(|t| panic!("{}: {t:?}", b.name));

        let mut rng = StdRng::seed_from_u64(7);
        let mut checked = 0;
        while checked < 3 {
            let input = b.model.materialize(&b.model.random(&mut rng));
            let orig = Interp::new(&module, ExecConfig::default()).run(&input);
            if !orig.exited() {
                continue; // invalid random input: skipped, like the paper
            }
            let prot = Interp::new(&sid.protected, ExecConfig::default()).run(&input);
            assert!(prot.exited(), "{}: protected run failed", b.name);
            assert_eq!(
                orig.output, prot.output,
                "{}: protection changed the output",
                b.name
            );
            assert!(
                prot.steps >= orig.steps,
                "{}: duplication adds work",
                b.name
            );
            checked += 1;
        }
    }
}

/// The headline claim on the paper's worst benchmark (Kmeans): MINPSID's
/// worst-case coverage over random inputs is at least the baseline's.
#[test]
fn minpsid_does_not_lose_to_baseline_on_kmeans() {
    let b = workloads::by_name("kmeans").unwrap();
    let module = b.compile();
    let cfg = tiny_minpsid(3);
    let baseline = run_baseline_sid(&module, b.model.as_ref(), &cfg).unwrap();
    let hardened = run_minpsid(&module, b.model.as_ref(), &cfg).unwrap();
    assert!(
        !hardened.incubative.is_empty(),
        "kmeans must show incubative insts"
    );

    let mut rng = StdRng::seed_from_u64(11);
    let mut base_min = f64::INFINITY;
    let mut hard_min = f64::INFINITY;
    let mut n = 0;
    while n < 4 {
        let input = b.model.materialize(&b.model.random(&mut rng));
        let Ok(bm) = measure_coverage(&module, &baseline.protected, &input, &cfg.campaign) else {
            continue;
        };
        let hm = measure_coverage(&module, &hardened.protected, &input, &cfg.campaign).unwrap();
        base_min = base_min.min(bm.coverage);
        hard_min = hard_min.min(hm.coverage);
        n += 1;
    }
    // noise slack: a tiny campaign carries wide error bars
    assert!(
        hard_min >= base_min - 0.10,
        "MINPSID worst-case {hard_min:.3} vs baseline {base_min:.3}"
    );
}

/// Golden runs of all benchmarks are deterministic (the foundation of the
/// whole FI methodology).
#[test]
fn golden_runs_are_deterministic() {
    for b in workloads::suite() {
        let module = b.compile();
        let input = b.model.materialize(&b.model.reference());
        let cfg = tiny_campaign(1);
        let a = golden_run(&module, &input, &cfg).unwrap();
        let g = golden_run(&module, &input, &cfg).unwrap();
        assert_eq!(a.output, g.output, "{}", b.name);
        assert_eq!(a.steps, g.steps, "{}", b.name);
        assert_eq!(
            a.profile.indexed_cfg_list(),
            g.profile.indexed_cfg_list(),
            "{}",
            b.name
        );
    }
}

/// The compile → print → module path stays verified for every benchmark.
#[test]
fn all_benchmarks_print_and_reverify() {
    for b in workloads::suite() {
        let module = b.compile();
        minpsid_repro::ir::verify_module(&module).unwrap_or_else(|e| panic!("{}: {e:?}", b.name));
        let text = minpsid_repro::ir::printer::print_module(&module);
        assert!(text.contains("fn main()"), "{}", b.name);
        assert!(text.len() > 500, "{}: suspiciously short IR", b.name);
    }
}

/// MINPSID's expected coverage is never higher than what full protection
/// would promise, and its conservative profile never *reduces* the
/// benefit of non-incubative instructions.
#[test]
fn reprioritized_profile_is_conservative() {
    let b = workloads::by_name("fft").unwrap();
    let module = b.compile();
    let cfg = tiny_minpsid(5);
    let hardened = run_minpsid(&module, b.model.as_ref(), &cfg).unwrap();
    let baseline = run_baseline_sid(&module, b.model.as_ref(), &cfg).unwrap();
    for i in 0..module.num_insts() {
        assert!(
            hardened.cost_benefit.benefit[i] >= baseline.cost_benefit.benefit[i] - 1e-12,
            "benefit can only be raised by re-prioritization (inst {i})"
        );
    }
}
