//! Property tests over *randomly generated IR modules* (not source
//! programs): the text format round-trips them and the optimizer
//! preserves their observable behaviour.
//!
//! The generator builds verified straight-line modules by folding a
//! random op tape into the builder, tracking per-type value pools so
//! every operand reference is well-typed and dominating.

use minpsid_repro::interp::{ExecConfig, Interp, ProgInput};
use minpsid_repro::ir::inst::{BinOp, CmpOp, UnOp};
use minpsid_repro::ir::parser::parse_module;
use minpsid_repro::ir::printer::print_module;
use minpsid_repro::ir::{opt, verify_module, InstId, Module, ModuleBuilder, Operand, Ty};
use proptest::prelude::*;

/// One step of the random op tape.
#[derive(Debug, Clone)]
enum Op {
    ConstI(i64),
    ConstF(f64),
    IntBin(u8),
    FloatBin(u8),
    IntUn(u8),
    FloatUn(u8),
    Cmp(u8),
    Select,
    CastToF,
    CastToI,
    MinMax(bool),
    OutI,
    OutF,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Op::ConstI),
        (-1.0e6..1.0e6).prop_map(Op::ConstF),
        (0u8..4).prop_map(Op::IntBin),
        (0u8..4).prop_map(Op::FloatBin),
        (0u8..3).prop_map(Op::IntUn),
        (0u8..3).prop_map(Op::FloatUn),
        (0u8..6).prop_map(Op::Cmp),
        Just(Op::Select),
        Just(Op::CastToF),
        Just(Op::CastToI),
        any::<bool>().prop_map(Op::MinMax),
        Just(Op::OutI),
        Just(Op::OutF),
    ]
}

/// Fold an op tape into a verified module. Pools hold the ids of values
/// of each type produced so far; ops that need operands draw the most
/// recent ones (determinism keeps shrinking effective).
fn build_module(tape: &[Op]) -> Module {
    let mut mb = ModuleBuilder::new("gen");
    let main = mb.declare("main", vec![], None);
    let mut fb = mb.body(main);
    let mut ints: Vec<InstId> = Vec::new();
    let mut floats: Vec<InstId> = Vec::new();
    let mut bools: Vec<InstId> = Vec::new();

    // seed the pools so early ops have operands
    ints.push(fb.add(Ty::I64, 3i64, 4i64));
    floats.push(fb.add(Ty::F64, 1.5f64, 0.25f64));
    bools.push(fb.cmp(CmpOp::Lt, 1i64, 2i64));

    let pick =
        |pool: &[InstId], k: usize| -> Operand { pool[pool.len() - 1 - k % pool.len()].into() };

    for (i, op) in tape.iter().enumerate() {
        match op {
            Op::ConstI(v) => ints.push(fb.add(Ty::I64, *v, 0i64)),
            Op::ConstF(v) => floats.push(fb.add(Ty::F64, *v, 0.0f64)),
            Op::IntBin(k) => {
                let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Xor];
                let a = pick(&ints, i);
                let b = pick(&ints, i + 1);
                ints.push(fb.bin(ops[*k as usize % 4], Ty::I64, a, b));
            }
            Op::FloatBin(k) => {
                let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div];
                let a = pick(&floats, i);
                let b = pick(&floats, i + 1);
                floats.push(fb.bin(ops[*k as usize % 4], Ty::F64, a, b));
            }
            Op::IntUn(k) => {
                let ops = [UnOp::Neg, UnOp::Abs, UnOp::Not];
                let a = pick(&ints, i);
                ints.push(fb.un(ops[*k as usize % 3], Ty::I64, a));
            }
            Op::FloatUn(k) => {
                let ops = [UnOp::Neg, UnOp::Abs, UnOp::Floor];
                let a = pick(&floats, i);
                floats.push(fb.un(ops[*k as usize % 3], Ty::F64, a));
            }
            Op::Cmp(k) => {
                let ops = [
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                ];
                let a = pick(&ints, i);
                let b = pick(&ints, i + 2);
                bools.push(fb.cmp(ops[*k as usize % 6], a, b));
            }
            Op::Select => {
                let c = pick(&bools, i);
                let a = pick(&ints, i);
                let b = pick(&ints, i + 1);
                ints.push(fb.select(Ty::I64, c, a, b));
            }
            Op::CastToF => {
                let a = pick(&ints, i);
                floats.push(fb.cast(Ty::F64, a));
            }
            Op::CastToI => {
                let a = pick(&floats, i);
                ints.push(fb.cast(Ty::I64, a));
            }
            Op::MinMax(mx) => {
                let a = pick(&ints, i);
                let b = pick(&ints, i + 3);
                let op = if *mx { BinOp::Max } else { BinOp::Min };
                ints.push(fb.bin(op, Ty::I64, a, b));
            }
            Op::OutI => {
                let a = pick(&ints, i);
                fb.out_i(a);
            }
            Op::OutF => {
                let a = pick(&floats, i);
                fb.out_f(a);
            }
        }
    }
    // always observe something
    let last_i = *ints.last().unwrap();
    let last_f = *floats.last().unwrap();
    fb.out_i(last_i);
    fb.out_f(last_f);
    fb.ret_void();
    mb.define(fb);
    mb.finish()
}

fn outputs_bitwise_equal(
    a: &minpsid_repro::interp::Output,
    b: &minpsid_repro::interp::Output,
) -> bool {
    use minpsid_repro::interp::OutputItem;
    a.items.len() == b.items.len()
        && a.items.iter().zip(&b.items).all(|(x, y)| match (x, y) {
            (OutputItem::I(p), OutputItem::I(q)) => p == q,
            (OutputItem::F(p), OutputItem::F(q)) => p.to_bits() == q.to_bits(),
            _ => false,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated modules always verify.
    #[test]
    fn generated_modules_verify(tape in prop::collection::vec(op_strategy(), 0..80)) {
        let m = build_module(&tape);
        prop_assert!(verify_module(&m).is_ok());
    }

    /// print → parse preserves structure (generated modules are in arena
    /// order, so the round-trip is exact).
    #[test]
    fn text_format_roundtrips_generated_modules(
        tape in prop::collection::vec(op_strategy(), 0..80)
    ) {
        let m = build_module(&tape);
        let text = print_module(&m);
        let parsed = parse_module(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        // NaN literals break Eq; compare the canonical printed form
        prop_assert_eq!(print_module(&parsed), text);
    }

    /// The optimizer preserves observable behaviour bit-for-bit (the
    /// interpreter is deterministic, outputs included).
    #[test]
    fn optimizer_preserves_generated_semantics(
        tape in prop::collection::vec(op_strategy(), 0..80)
    ) {
        let m = build_module(&tape);
        let mut optimized = m.clone();
        opt::optimize(&mut optimized);
        prop_assert!(verify_module(&optimized).is_ok());
        let run = |m: &Module| Interp::new(m, ExecConfig::default()).run(&ProgInput::default());
        let a = run(&m);
        let b = run(&optimized);
        prop_assert_eq!(a.termination, b.termination);
        if a.exited() {
            prop_assert!(
                outputs_bitwise_equal(&a.output, &b.output),
                "outputs diverged:\n{:?}\nvs\n{:?}",
                a.output,
                b.output
            );
        }
        prop_assert!(b.steps <= a.steps, "optimizer added work");
    }
}
