//! Property-based tests over the whole toolchain.
//!
//! The central property: a randomly generated arithmetic program means the
//! same thing to (minic → IR → interpreter) as it does to a direct Rust
//! evaluator with identical semantics (wrapping i64 arithmetic, IEEE-754
//! doubles, same evaluation order).

use minpsid_repro::interp::{ExecConfig, FaultSpec, FaultTarget, Interp, OutputItem, ProgInput};
use minpsid_repro::sid::duplicate_module;
use proptest::prelude::*;

/// A small expression AST we can render to minic and evaluate in Rust.
#[derive(Debug, Clone)]
enum IExpr {
    Lit(i64),
    Add(Box<IExpr>, Box<IExpr>),
    Sub(Box<IExpr>, Box<IExpr>),
    Mul(Box<IExpr>, Box<IExpr>),
    /// Division by a non-zero literal (so generated programs never trap).
    DivC(Box<IExpr>, i64),
    Neg(Box<IExpr>),
    Abs(Box<IExpr>),
    Min(Box<IExpr>, Box<IExpr>),
    Max(Box<IExpr>, Box<IExpr>),
}

impl IExpr {
    fn render(&self) -> String {
        match self {
            IExpr::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(*v as i128))
                } else {
                    v.to_string()
                }
            }
            IExpr::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            IExpr::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            IExpr::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            IExpr::DivC(a, c) => format!("({} / {})", a.render(), c),
            IExpr::Neg(a) => format!("(-{})", a.render()),
            IExpr::Abs(a) => format!("abs({})", a.render()),
            IExpr::Min(a, b) => format!("min({}, {})", a.render(), b.render()),
            IExpr::Max(a, b) => format!("max({}, {})", a.render(), b.render()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            IExpr::Lit(v) => *v,
            IExpr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            IExpr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            IExpr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            IExpr::DivC(a, c) => a.eval().checked_div(*c).unwrap_or(0),
            IExpr::Neg(a) => a.eval().wrapping_neg(),
            IExpr::Abs(a) => a.eval().wrapping_abs(),
            IExpr::Min(a, b) => a.eval().min(b.eval()),
            IExpr::Max(a, b) => a.eval().max(b.eval()),
        }
    }
}

fn iexpr_strategy() -> impl Strategy<Value = IExpr> {
    let leaf = (-1000i64..1000).prop_map(IExpr::Lit);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), prop_oneof![(-9i64..=-1), (1i64..=9)])
                .prop_map(|(a, c)| IExpr::DivC(Box::new(a), c)),
            inner.clone().prop_map(|a| IExpr::Neg(Box::new(a))),
            inner.clone().prop_map(|a| IExpr::Abs(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| IExpr::Max(Box::new(a), Box::new(b))),
        ]
    })
}

/// `i64::MIN / -1` traps in the IR (hardware overflow) but `checked_div`
/// in the reference returns None; exclude the case by construction: the
/// generated dividends can only reach i64::MIN via wrapping, which is
/// possible — so the reference maps None to 0 and we simply skip programs
/// whose golden run traps.
fn run_program(src: &str) -> Option<Vec<OutputItem>> {
    let module = minic::compile(src, "prop").ok()?;
    let r = Interp::new(&module, ExecConfig::default()).run(&ProgInput::default());
    r.exited().then_some(r.output.items)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// minic + interpreter agree with a direct Rust evaluation on random
    /// integer expressions.
    #[test]
    fn random_expressions_evaluate_like_rust(e in iexpr_strategy()) {
        let src = format!("fn main() {{ out_i({}); }}", e.render());
        if let Some(items) = run_program(&src) {
            prop_assert_eq!(items, vec![OutputItem::I(e.eval())]);
        }
    }

    /// Full duplication never changes the output of a random expression
    /// program (transform soundness on arbitrary expression shapes).
    #[test]
    fn full_duplication_is_semantics_preserving(e in iexpr_strategy()) {
        let src = format!("fn main() {{ out_i({}); }}", e.render());
        let Ok(module) = minic::compile(&src, "prop") else { return Ok(()); };
        let orig = Interp::new(&module, ExecConfig::default()).run(&ProgInput::default());
        prop_assume!(orig.exited());
        let all = vec![true; module.num_insts()];
        let (protected, meta) = duplicate_module(&module, &all);
        minpsid_repro::ir::verify_module(&protected).expect("protected verifies");
        let prot = Interp::new(&protected, ExecConfig::default()).run(&ProgInput::default());
        prop_assert!(prot.exited());
        prop_assert_eq!(orig.output, prot.output);
        prop_assert!(meta.num_checks <= meta.num_dups);
    }

    /// A fault either fires deterministically or not at all, and repeated
    /// faulty runs are bit-identical.
    #[test]
    fn faulty_runs_are_deterministic(
        e in iexpr_strategy(),
        nth in 0u64..64,
        bit in 0u32..64,
    ) {
        let src = format!("fn main() {{ out_i({}); }}", e.render());
        let Ok(module) = minic::compile(&src, "prop") else { return Ok(()); };
        let interp = Interp::new(&module, ExecConfig::default());
        let fault = FaultSpec { target: FaultTarget::NthDynamic(nth), bit };
        let a = interp.run_with_fault(&ProgInput::default(), fault);
        let b = interp.run_with_fault(&ProgInput::default(), fault);
        prop_assert_eq!(a.termination, b.termination);
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.fault_applied, b.fault_applied);
    }

    /// Bit flips are involutive at the value level for every scalar type.
    #[test]
    fn flip_bit_is_involutive(v in any::<i64>(), bits in any::<u64>(), bit in 0u32..64) {
        use minpsid_repro::interp::{flip_bit, Value};
        let iv = Value::I(v);
        prop_assert_eq!(flip_bit(flip_bit(iv, bit), bit), iv);
        let fv = Value::F(f64::from_bits(bits));
        let twice = flip_bit(flip_bit(fv, bit), bit);
        // compare by bits: NaN != NaN under PartialEq
        match (twice, fv) {
            (Value::F(a), Value::F(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
            _ => prop_assert!(false),
        }
        let pv = Value::P(bits);
        prop_assert_eq!(flip_bit(flip_bit(pv, bit), bit), pv);
    }
}
