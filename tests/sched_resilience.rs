//! Integration tests for the resilient campaign scheduler: a run whose
//! wall-clock deadline expires still terminates with an honest, annotated
//! report, and resuming its journal under a looser (or absent) budget
//! converges to exactly the result an unbounded run produces.

use minpsid_repro::faultsim::CampaignConfig;
use minpsid_repro::journal::CampaignJournal;
use minpsid_repro::minpsid::{
    minpsid_config_fingerprint, module_fingerprint, run_minpsid, run_minpsid_journaled, GaConfig,
    GoldenCache, MinpsidConfig, MinpsidResult, SearchStrategy,
};
use minpsid_repro::workloads;
use std::path::PathBuf;

fn tiny_minpsid(seed: u64) -> MinpsidConfig {
    MinpsidConfig {
        protection_level: 0.6,
        campaign: CampaignConfig {
            injections: 80,
            per_inst_injections: 6,
            seed,
            ..CampaignConfig::default()
        },
        ga: GaConfig {
            population: 5,
            max_generations: 3,
            seed,
            ..GaConfig::default()
        },
        max_inputs: 3,
        stagnation_patience: 2,
        strategy: SearchStrategy::Genetic,
        ..MinpsidConfig::default()
    }
}

fn journal_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "minpsid-sched-resilience-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn same_result(a: &MinpsidResult, b: &MinpsidResult) {
    assert_eq!(a.selection, b.selection);
    assert_eq!(a.incubative, b.incubative);
    assert_eq!(a.incubative_history, b.incubative_history);
    assert_eq!(a.inputs_searched, b.inputs_searched);
    assert_eq!(a.expected_coverage, b.expected_coverage);
}

/// The satellite acceptance story end to end: an already-expired deadline
/// truncates the whole campaign (completeness < 1, nothing lost, report
/// still produced), its journal resumes under no deadline to the exact
/// full-run result, and the deadline never participates in the journal's
/// config fingerprint.
#[test]
fn deadline_truncated_run_resumes_to_the_full_report() {
    let suite = workloads::suite();
    let b = suite.first().expect("non-empty suite");
    let module = b.compile();
    let cfg = tiny_minpsid(9);
    let full = run_minpsid(&module, b.model.as_ref(), &cfg).unwrap();
    assert_eq!(full.sched.completeness(), 1.0);
    assert_eq!(full.sched.accounted(), full.sched.planned);

    let mut truncated_cfg = cfg.clone();
    truncated_cfg.deadline_secs = Some(0.0); // expired before any work
    assert_eq!(
        minpsid_config_fingerprint(&cfg),
        minpsid_config_fingerprint(&truncated_cfg),
        "the deadline must not re-key the journal"
    );

    let mfp = module_fingerprint(&module);
    let cfp = minpsid_config_fingerprint(&cfg);
    let dir = journal_dir("deadline");

    // phase 1: run out of budget immediately — still Ok, still a report,
    // honestly annotated, with every planned injection accounted for
    {
        let journal = CampaignJournal::open(&dir, mfp, cfp).unwrap();
        let partial = run_minpsid_journaled(
            &module,
            b.model.as_ref(),
            &truncated_cfg,
            &GoldenCache::new(),
            &journal,
        )
        .unwrap();
        assert_eq!(partial.inputs_searched, 0, "no search past the deadline");
        assert!(partial.sched.truncated > 0, "ref FI was truncated");
        assert!(
            partial.sched.completeness() < 1.0,
            "a truncated run must confess: {:?}",
            partial.sched
        );
        assert_eq!(
            partial.sched.accounted(),
            partial.sched.planned,
            "zero lost injections even when the budget is zero"
        );
    }

    // phase 2: resume the same journal with no deadline — converges to
    // the full report, bit-identical to the never-bounded run
    {
        let journal = CampaignJournal::open(&dir, mfp, cfp).unwrap();
        let resumed = run_minpsid_journaled(
            &module,
            b.model.as_ref(),
            &cfg,
            &GoldenCache::new(),
            &journal,
        )
        .unwrap();
        same_result(&full, &resumed);
        assert_eq!(resumed.sched.completeness(), 1.0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Chaos knobs + the default retry budget: transient failures heal, the
/// result matches a chaos-free run, and the accounting invariant holds.
#[test]
fn transient_chaos_is_invisible_in_the_final_report() {
    let suite = workloads::suite();
    let b = suite.first().expect("non-empty suite");
    let module = b.compile();
    let cfg = tiny_minpsid(11);
    let clean = run_minpsid(&module, b.model.as_ref(), &cfg).unwrap();

    let mut chaotic_cfg = cfg.clone();
    chaotic_cfg.campaign.chaos_panic_one_in = Some(50);
    chaotic_cfg.campaign.chaos_timeout_one_in = Some(50);
    // zero backoff keeps the test fast; the chaos plans fail 1–4
    // consecutive attempts, so raise the budget until every site recovers
    chaotic_cfg.campaign.sched.max_retries = 4;
    chaotic_cfg.campaign.sched.backoff_base_ms = 0;
    chaotic_cfg.campaign.sched.backoff_cap_ms = 0;
    let chaotic = run_minpsid(&module, b.model.as_ref(), &chaotic_cfg).unwrap();

    assert!(
        chaotic.sched.recovered > 0,
        "the chaos knobs must actually fire: {:?}",
        chaotic.sched
    );
    assert_eq!(chaotic.sched.quarantined_sites, 0, "everything recovers");
    assert_eq!(chaotic.sched.accounted(), chaotic.sched.planned);
    assert_eq!(chaotic.sched.completeness(), 1.0);
    // recovered-after-retry injections count exactly once: the chaotic
    // run's report is identical to the clean one
    assert_eq!(clean.selection, chaotic.selection);
    assert_eq!(clean.incubative, chaotic.incubative);
    assert_eq!(clean.expected_coverage, chaotic.expected_coverage);
}
