//! Chaos matrix for the self-verifying artifact store: a flipped bit in
//! ANY stored artifact class — golden-run metadata, checkpoint store,
//! fleet spool segment, compacted journal WAL snapshot — must be
//! detected by digest verification, quarantined, and healed by
//! recompute, with the final result identical to an uncorrupted run.
//! Corruption may cost time; it must never change an answer.
//!
//! The `--chaos-flip-artifact-one-in` knob (here the per-store
//! [`ArtifactStore::set_chaos_flip`]) flips one bit in a published
//! object between write and read, at most once per digest — modeling a
//! single at-rest rot event per artifact.

use minpsid_repro::faultsim::{CampaignConfig, CampaignJournal};
use minpsid_repro::fleet::{
    read_segment_verified, segment_ref_name, SegmentWriter, SpooledUnit, VerifiedSegment,
    SPOOL_ARTIFACT,
};
use minpsid_repro::minpsid::{
    minpsid_config_fingerprint, module_fingerprint, run_minpsid, run_minpsid_cached,
    run_minpsid_journaled, GaConfig, GoldenCache, MinpsidConfig, MinpsidResult, SearchStrategy,
};
use minpsid_repro::store::ArtifactStore;
use minpsid_repro::workloads;
use std::path::PathBuf;
use std::sync::Arc;

fn tiny_minpsid(seed: u64) -> MinpsidConfig {
    MinpsidConfig {
        protection_level: 0.6,
        campaign: CampaignConfig {
            injections: 60,
            per_inst_injections: 4,
            seed,
            ..CampaignConfig::default()
        },
        ga: GaConfig {
            population: 4,
            max_generations: 2,
            seed,
            ..GaConfig::default()
        },
        max_inputs: 3,
        stagnation_patience: 2,
        strategy: SearchStrategy::Genetic,
        ..MinpsidConfig::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("minpsid-store-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn same_result(a: &MinpsidResult, b: &MinpsidResult) {
    assert_eq!(a.selection, b.selection);
    assert_eq!(a.incubative, b.incubative);
    assert_eq!(a.inputs_searched, b.inputs_searched);
    assert_eq!(a.expected_coverage, b.expected_coverage);
}

/// Artifact classes `golden` and `ckpt`: every artifact the first run
/// persists rots; the next invocation detects each on load, quarantines
/// it, recomputes, and republishes — and a third invocation is served
/// verified bytes again.
#[test]
fn flipped_golden_and_checkpoint_artifacts_recompute_identically() {
    let suite = workloads::suite();
    let b = suite.first().expect("non-empty suite");
    let module = b.compile();
    let cfg = tiny_minpsid(11);
    let plain = run_minpsid(&module, b.model.as_ref(), &cfg).unwrap();

    let dir = tmpdir("golden");
    let store = Arc::new(ArtifactStore::open(&dir).unwrap());
    store.set_chaos_flip(1); // rot every published artifact once
    let cache = GoldenCache::with_store(0, store.clone());
    let r1 = run_minpsid_cached(&module, b.model.as_ref(), &cfg, &cache).unwrap();
    same_result(&plain, &r1);

    // Second invocation over the rotten store: nothing corrupt is ever
    // served — every load fails verification and recomputes.
    let store2 = Arc::new(ArtifactStore::open(&dir).unwrap());
    let cache2 = GoldenCache::with_store(0, store2.clone());
    let r2 = run_minpsid_cached(&module, b.model.as_ref(), &cfg, &cache2).unwrap();
    same_result(&plain, &r2);
    assert_eq!(
        cache2.disk_hits(),
        0,
        "rotten artifacts never count as hits"
    );
    assert!(cache2.misses() > 0, "corruption degrades to recompute");
    assert!(
        store2.quarantined_count().unwrap() > 0,
        "corrupt objects were quarantined, not deleted or served"
    );

    // Third invocation: the republished artifacts verify; served from disk.
    let store3 = Arc::new(ArtifactStore::open(&dir).unwrap());
    let cache3 = GoldenCache::with_store(0, store3.clone());
    let r3 = run_minpsid_cached(&module, b.model.as_ref(), &cfg, &cache3).unwrap();
    same_result(&plain, &r3);
    assert!(
        cache3.disk_hits() > 0,
        "healed store serves verified artifacts"
    );
    assert!(!store3.scrub().unwrap().found_corruption());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Artifact class `spool`: a sealed fleet segment rots between the
/// worker's fsync and the supervisor's merge. The verified read reports
/// it corrupt (never folding rotten outcomes into the ledger), and the
/// shard's re-execution produces a segment identical to a clean run.
#[test]
fn flipped_spool_segment_is_detected_and_reexecution_matches_clean() {
    let d = tmpdir("spool");
    let store = ArtifactStore::open(&d.join("store")).unwrap();
    store.set_chaos_flip(1);
    let units = [
        SpooledUnit {
            index: 3,
            outcome: 1,
            recovered: false,
        },
        SpooledUnit {
            index: 8,
            outcome: 2,
            recovered: true,
        },
    ];
    let mut w = SegmentWriter::create(&d, 0, 0).unwrap();
    for u in units {
        w.record(u).unwrap();
    }
    w.seal(&store).unwrap(); // published object is flipped by chaos

    assert_eq!(
        read_segment_verified(&store, &d, 0, 0).unwrap(),
        VerifiedSegment::Corrupt,
        "rotten segment is detected at merge time"
    );
    assert!(store.quarantined_count().unwrap() >= 1);
    assert!(
        matches!(
            store.load_named(SPOOL_ARTIFACT, &segment_ref_name(0, 0)),
            Ok(None)
        ),
        "the quarantined object reads as absent, never as its rotten bytes"
    );

    // The supervisor requeues the shard; deterministic re-execution at
    // the next attempt spools identical outcomes. The flip marker
    // guarantees at-most-one rot per digest, so the republished bytes
    // verify and the merged ledger matches a clean run exactly.
    let mut w2 = SegmentWriter::create(&d, 0, 1).unwrap();
    for u in units {
        w2.record(u).unwrap();
    }
    w2.seal(&store).unwrap();
    assert_eq!(
        read_segment_verified(&store, &d, 0, 1).unwrap(),
        VerifiedSegment::Units(units.to_vec())
    );
    let _ = std::fs::remove_dir_all(&d);
}

/// Artifact class `wal`: the compacted journal snapshot rots. Reopening
/// the journal quarantines the snapshot, the live WAL stands alone as
/// the source of truth, and the replayed run is identical; recompaction
/// republishes a verifiable snapshot.
#[test]
fn flipped_wal_snapshot_quarantines_and_live_log_stays_authoritative() {
    let suite = workloads::suite();
    let b = suite.first().expect("non-empty suite");
    let module = b.compile();
    let cfg = tiny_minpsid(13);
    let plain = run_minpsid(&module, b.model.as_ref(), &cfg).unwrap();
    let mfp = module_fingerprint(&module);
    let cfp = minpsid_config_fingerprint(&cfg);

    let dir = tmpdir("wal");
    let store_dir = dir.join("store");
    {
        let store = Arc::new(ArtifactStore::open(&store_dir).unwrap());
        store.set_chaos_flip(1);
        let j = CampaignJournal::open_with_store(&dir, mfp, cfp, Some(store)).unwrap();
        let r1 = run_minpsid_journaled(&module, b.model.as_ref(), &cfg, &GoldenCache::new(), &j)
            .unwrap();
        same_result(&plain, &r1);
        j.compact().unwrap(); // publishes the snapshot — rotted by chaos
    }

    // Reopen: the rotten snapshot is quarantined; the live WAL alone
    // serves the replay, which is bit-identical.
    let store2 = Arc::new(ArtifactStore::open(&store_dir).unwrap());
    let j2 = CampaignJournal::open_with_store(&dir, mfp, cfp, Some(store2.clone())).unwrap();
    assert!(
        store2.quarantined_count().unwrap() >= 1,
        "corrupt snapshot was quarantined on open"
    );
    let r2 =
        run_minpsid_journaled(&module, b.model.as_ref(), &cfg, &GoldenCache::new(), &j2).unwrap();
    same_result(&plain, &r2);

    // Recompaction republishes; the store scrubs clean again.
    j2.compact().unwrap();
    drop(j2);
    let store3 = ArtifactStore::open(&store_dir).unwrap();
    let report = store3.scrub().unwrap();
    assert!(!report.found_corruption());
    assert!(
        report.dangling_refs.is_empty(),
        "recompaction re-pointed the wal ref at a live object"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
