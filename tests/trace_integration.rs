//! End-to-end tracing: run a small MINPSID pipeline with the trace sink
//! attached, then feed the captured log to the offline analyzer and check
//! the report sees the pipeline's structure — stage spans in order,
//! non-zero campaign counts, checkpoint savings, GA curves, knapsack and
//! cache summaries.
//!
//! The sink is process-wide state, so this file holds exactly one test
//! function (integration-test files are separate binaries, which isolates
//! it from the rest of the suite).

use minpsid_repro::faultsim::CampaignConfig;
use minpsid_repro::interp::{ProgInput, Stream};
use minpsid_repro::minpsid::{
    run_minpsid_cached, GaConfig, GoldenCache, InputModel, MinpsidConfig, ParamSpec, ParamValue,
};
use minpsid_repro::trace::{self, Event, TimedEvent};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Shared in-memory writer capturing the JSONL stream.
#[derive(Clone, Default)]
struct Buf(Arc<Mutex<Vec<u8>>>);

impl Write for Buf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct Model {
    spec: Vec<ParamSpec>,
}

impl InputModel for Model {
    fn spec(&self) -> &[ParamSpec] {
        &self.spec
    }

    fn materialize(&self, params: &[ParamValue]) -> ProgInput {
        let n = params[0].as_i().max(1) as usize;
        let base = params[1].as_i();
        let mut rng = StdRng::seed_from_u64(params[2].as_i() as u64);
        let data: Vec<i64> = (0..n).map(|_| base + rng.random_range(0..20i64)).collect();
        ProgInput::new(vec![], vec![Stream::I(data)])
    }

    fn reference(&self) -> Vec<ParamValue> {
        vec![ParamValue::I(24), ParamValue::I(5), ParamValue::I(42)]
    }
}

fn kind_positions(events: &[TimedEvent], want: &str) -> Vec<usize> {
    events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.event.kind() == want)
        .map(|(i, _)| i)
        .collect()
}

#[test]
fn traced_pipeline_round_trips_into_the_analyzer() {
    let module = minic::compile(
        r#"
        fn main() {
            let n = data_len(0);
            let acc = 0;
            for i = 0 to n {
                let v = data_i(0, i);
                if v > 50 { acc = acc + v * 3 + 17; } else { acc = acc + 1; }
            }
            out_i(acc);
        }
        "#,
        "trace-integration",
    )
    .unwrap();
    let model = Model {
        spec: vec![
            ParamSpec::int("n", 16, 48),
            ParamSpec::int("base", 0, 100),
            ParamSpec::int("seed", 0, 1_000_000),
        ],
    };
    let cfg = MinpsidConfig {
        protection_level: 0.5,
        campaign: CampaignConfig {
            injections: 120,
            per_inst_injections: 8,
            seed: 7,
            ..CampaignConfig::default()
        },
        ga: GaConfig {
            population: 5,
            max_generations: 3,
            seed: 11,
            ..GaConfig::default()
        },
        max_inputs: 4,
        stagnation_patience: 2,
        ..MinpsidConfig::default()
    };

    let buf = Buf::default();
    trace::init_writer(Box::new(buf.clone()));
    assert!(trace::active());
    let cache = GoldenCache::new();
    let result = run_minpsid_cached(&module, &model, &cfg, &cache).unwrap();
    trace::shutdown().unwrap();
    assert!(!trace::active());

    // every emitted line deserializes under the strict schema
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let events = trace::parse_log(&text).expect("every line parses");
    assert!(events.len() > 10, "a pipeline emits a real event stream");

    // framing and ordering: trace_start first, trace_end last, monotone
    // timestamps in between
    assert_eq!(events.first().unwrap().event.kind(), "trace_start");
    assert_eq!(events.last().unwrap().event.kind(), "trace_end");
    assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));

    // stage spans appear, and in pipeline order: ref_fi before the first
    // search, search before select_transform
    for stage in [
        "minpsid_pipeline",
        "ref_fi",
        "search",
        "incubative_fi",
        "select_transform",
    ] {
        assert!(
            events.iter().any(|e| matches!(
                &e.event,
                Event::SpanBegin { name, .. } if name == stage
            )),
            "missing span `{stage}`"
        );
    }
    let pos = |stage: &str| {
        events
            .iter()
            .position(|e| matches!(&e.event, Event::SpanBegin { name, .. } if name == stage))
            .unwrap()
    };
    assert!(pos("ref_fi") < pos("search"));
    assert!(pos("search") < pos("incubative_fi"));
    assert!(pos("incubative_fi") < pos("select_transform"));

    // every span that begins also ends
    let begins = kind_positions(&events, "span_begin").len();
    let ends = kind_positions(&events, "span_end").len();
    assert_eq!(begins, ends, "all spans closed");

    // FI campaigns ran and accounted for every injection
    let campaign_ends: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.event {
            Event::CampaignEnd {
                injections, counts, ..
            } => Some((*injections, *counts)),
            _ => None,
        })
        .collect();
    assert!(!campaign_ends.is_empty(), "campaign_end events present");
    let total: u64 = campaign_ends.iter().map(|(n, _)| n).sum();
    assert!(total > 0, "non-zero injections traced");
    for (n, counts) in &campaign_ends {
        assert_eq!(counts.total(), *n, "tally accounts for every injection");
    }

    // the per-input search series matches the pipeline's own accounting
    let inputs = kind_positions(&events, "search_input").len();
    assert_eq!(inputs, result.inputs_searched);
    assert!(
        !kind_positions(&events, "ga_generation").is_empty(),
        "GA generations traced"
    );
    assert_eq!(kind_positions(&events, "knapsack").len(), 1);
    assert_eq!(kind_positions(&events, "cache_stats").len(), 1);

    // the analyzer agrees with the raw stream and renders the report
    let summary = trace::summarize(&events);
    assert_eq!(summary.open_spans, 0);
    assert!(summary.per_inst.injections > 0);
    assert_eq!(summary.per_inst.counts.total(), summary.per_inst.injections);
    assert!(
        summary.per_inst.steps_skipped > 0,
        "checkpointed campaigns skip replay work"
    );
    assert!(summary.cache.is_some());
    assert!(summary.knapsack.is_some());
    assert!(!summary.ga.is_empty());

    let md = trace::render_markdown(&summary);
    for section in [
        "## Stage time breakdown",
        "## FI campaigns",
        "## Golden-run cache",
        "## GA search: fitness per generation",
        "## Knapsack selection",
        "replay work saved",
    ] {
        assert!(md.contains(section), "report missing `{section}`:\n{md}");
    }
    for stage in ["ref_fi", "incubative_fi", "select_transform"] {
        assert!(md.contains(stage), "report missing stage `{stage}`");
    }
    let html = trace::render_html(&summary);
    assert!(html.contains("<table>") && html.contains("Stage time breakdown"));
}
